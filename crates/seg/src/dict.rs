//! The on-disk term dictionary sidecar (`dict.wdx`).
//!
//! Terms are stored **front-coded** in id order: each entry records how
//! many bytes of N-Triples text it shares with its predecessor, then the
//! differing suffix. Ids are implicit — [`wodex_rdf::TermDict`] assigns
//! dense ids in insertion order, so re-interning the terms in file order
//! reproduces exactly the ids the segments were encoded with. The whole
//! payload carries one trailing checksum; a corrupt dictionary is
//! rejected at open, never decoded into garbage terms.
//!
//! The dictionary resides in RAM once opened — the classic HDT trade-off:
//! triple *data* stays on disk and is block-paged, the term *mapping*
//! (a small fraction of the data size after front-coding) loads eagerly.

use std::io::{BufWriter, Read, Write};
use std::path::Path;
use wodex_rdf::ntriples::parse_term;
use wodex_rdf::TermDict;
use wodex_resilience::page_checksum;
use wodex_store::encoded::{read_varint, write_varint};

/// Magic bytes leading a dictionary file.
pub const DICT_MAGIC: &[u8; 8] = b"WDIC0001";

/// File name of the dictionary inside a segment directory.
pub const DICT_FILE: &str = "dict.wdx";

fn shared_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Writes `dict` to `path` (via a `*.tmp` sibling and atomic rename).
/// Terms are serialized in id order as their N-Triples `Display` form.
pub fn write_dict(dict: &TermDict, path: &Path) -> std::io::Result<()> {
    let mut payload = Vec::new();
    write_varint(&mut payload, dict.len() as u64);
    let mut prev = String::new();
    for (_, term) in dict.iter() {
        let text = term.to_string();
        let shared = shared_prefix(prev.as_bytes(), text.as_bytes());
        write_varint(&mut payload, shared as u64);
        write_varint(&mut payload, (text.len() - shared) as u64);
        payload.extend_from_slice(&text.as_bytes()[shared..]);
        prev = text;
    }
    let tmp = path.with_extension("tmp");
    let mut file = BufWriter::new(std::fs::File::create(&tmp)?);
    file.write_all(DICT_MAGIC)?;
    file.write_all(&payload)?;
    file.write_all(&page_checksum(&payload).to_le_bytes())?;
    file.flush()?;
    file.get_ref().sync_all()?;
    std::fs::rename(&tmp, path)
}

/// Reads a dictionary back. Verifies magic and checksum, then re-interns
/// every term in file order so ids match the writing dictionary exactly.
pub fn read_dict(path: &Path) -> Result<TermDict, String> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    if bytes.len() < DICT_MAGIC.len() + 8 || &bytes[..DICT_MAGIC.len()] != DICT_MAGIC {
        return Err("bad dictionary magic".into());
    }
    let payload = &bytes[DICT_MAGIC.len()..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if page_checksum(payload) != stored {
        return Err("dictionary checksum mismatch".into());
    }
    let mut pos = 0usize;
    let count = read_varint(payload, &mut pos).ok_or("truncated dictionary count")? as usize;
    let mut dict = TermDict::with_capacity(count);
    let mut prev = String::new();
    for i in 0..count {
        let shared = read_varint(payload, &mut pos).ok_or("truncated entry")? as usize;
        let suffix_len = read_varint(payload, &mut pos).ok_or("truncated entry")? as usize;
        if shared > prev.len() || pos + suffix_len > payload.len() {
            return Err(format!("entry {i} out of bounds"));
        }
        let suffix = std::str::from_utf8(&payload[pos..pos + suffix_len])
            .map_err(|e| format!("entry {i} not UTF-8: {e}"))?;
        pos += suffix_len;
        let mut text = String::with_capacity(shared + suffix_len);
        text.push_str(&prev[..shared]);
        text.push_str(suffix);
        let term = parse_term(&text).map_err(|e| format!("entry {i} does not parse: {e}"))?;
        let id = dict.intern(term);
        if id.index() != i {
            return Err(format!("duplicate term at entry {i}"));
        }
        prev = text;
    }
    if pos != payload.len() {
        return Err("trailing bytes after last dictionary entry".into());
    }
    Ok(dict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::{Literal, Term};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wodex_seg_dict_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_dict() -> TermDict {
        let mut d = TermDict::new();
        for i in 0..200 {
            d.intern_iri(&format!("http://example.org/resource/{i}"));
        }
        d.intern(Term::blank("b0"));
        d.intern(Term::literal("plain text with \"quotes\" and \\ escapes"));
        d.intern(Term::Literal(Literal::lang_string("hello", "en")));
        d.intern(Term::integer(42));
        d
    }

    #[test]
    fn roundtrip_preserves_ids_and_terms() {
        let d = sample_dict();
        let path = tmp("roundtrip.wdx");
        write_dict(&d, &path).unwrap();
        let back = read_dict(&path).unwrap();
        assert_eq!(back.len(), d.len());
        for (id, term) in d.iter() {
            assert_eq!(back.term(id), term, "id {id:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn front_coding_compresses_shared_iri_prefixes() {
        let d = sample_dict();
        let path = tmp("size.wdx");
        write_dict(&d, &path).unwrap();
        let coded = std::fs::metadata(&path).unwrap().len() as usize;
        let raw: usize = d.iter().map(|(_, t)| t.to_string().len()).sum();
        assert!(
            coded < raw * 2 / 3,
            "front coding should beat raw text: {coded} vs {raw}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_dictionary_is_rejected() {
        let d = sample_dict();
        let path = tmp("corrupt.wdx");
        write_dict(&d, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_dict(&path).unwrap_err().contains("checksum"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_dictionary_is_rejected() {
        let d = sample_dict();
        let path = tmp("trunc.wdx");
        write_dict(&d, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_dict(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
