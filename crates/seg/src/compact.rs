//! Leveled background compaction.
//!
//! Freshly loaded segments sit at level 0; when a level accumulates
//! [`CompactOpts::fanout`] or more segments, one merge streams them into
//! a single segment at the next level. The model is tombstone-free —
//! segments are immutable, deletes live in the `TripleStore` overlay
//! above — so compaction is pure physical reorganization: fewer
//! directories to binary-search, fewer block runs to k-way-merge per
//! scan.
//!
//! **Abort safety is structural.** A merge writes only `*.tmp` files and
//! run files; the manifest — the sole definition of "the store" — is
//! rewritten (atomically) after the output segment is renamed into
//! place. Stopping at any block boundary ([`compact_once`] polls the
//! stop flag between blocks) deletes the temporaries and leaves the
//! store byte-for-byte untouched. Input files are deleted only *after*
//! the new manifest lands; readers that opened them earlier keep valid
//! file handles (POSIX unlink semantics) and their snapshot view.

use crate::loader::SegmentBuilder;
use crate::store::{
    read_manifest, write_manifest, Manifest, ManifestEntry, Segment, SegmentFileBackend,
};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Tuning knobs for compaction.
#[derive(Debug, Clone)]
pub struct CompactOpts {
    /// Minimum segments at one level to trigger a merge of that level.
    pub fanout: usize,
    /// Keys per compressed block in merge output.
    pub block_triples: usize,
    /// Memory cap for the output's POS/OSP section sort buffers.
    pub mem_cap_bytes: u64,
    /// Poll interval of the background thread between idle checks.
    pub interval: Duration,
}

impl Default for CompactOpts {
    fn default() -> CompactOpts {
        CompactOpts {
            fanout: 4,
            block_triples: crate::format::DEFAULT_BLOCK_TRIPLES,
            mem_cap_bytes: 64 * 1024 * 1024,
            interval: Duration::from_secs(5),
        }
    }
}

/// What one [`compact_once`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactOutcome {
    /// No level holds enough segments to merge.
    Idle,
    /// One level was merged into the next.
    Compacted {
        /// The level that was merged (output landed at `level + 1`).
        level: u32,
        /// Input segments consumed.
        inputs: usize,
        /// Triples in the merged output.
        triples: u64,
    },
    /// The stop flag was observed; temporaries deleted, store untouched.
    Aborted,
}

fn store_err(e: wodex_resilience::StoreError) -> std::io::Error {
    std::io::Error::other(format!("segment read during compaction: {e}"))
}

/// Streams one input segment's SPO section block by block.
struct SpoStream<'a> {
    seg: &'a Segment<SegmentFileBackend>,
    block: usize,
    keys: Vec<[u32; 3]>,
    pos: usize,
}

impl<'a> SpoStream<'a> {
    fn new(seg: &'a Segment<SegmentFileBackend>) -> SpoStream<'a> {
        SpoStream {
            seg,
            block: 0,
            keys: Vec::new(),
            pos: 0,
        }
    }

    fn head(&mut self) -> std::io::Result<Option<[u32; 3]>> {
        while self.pos >= self.keys.len() {
            if self.block >= self.seg.meta().sections[0].len() {
                return Ok(None);
            }
            self.keys = self.seg.block_keys(0, self.block).map_err(store_err)?;
            self.block += 1;
            self.pos = 0;
        }
        Ok(Some(self.keys[self.pos]))
    }

    fn pop(&mut self) {
        self.pos += 1;
    }

    /// True when positioned at a block boundary — the abort poll points.
    fn at_block_boundary(&self) -> bool {
        self.pos == 0
    }
}

/// Runs at most one merge: finds the lowest level with ≥ `fanout`
/// segments and merges *all* of that level's segments into one segment
/// at the next level. Public and synchronous so tests (and operators)
/// can drive compaction deterministically; the background thread calls
/// exactly this in a loop.
pub fn compact_once(
    dir: &Path,
    opts: &CompactOpts,
    stop: &AtomicBool,
) -> std::io::Result<CompactOutcome> {
    let manifest = read_manifest(dir).map_err(std::io::Error::other)?;
    let mut levels: Vec<u32> = manifest.entries.iter().map(|e| e.level).collect();
    levels.sort_unstable();
    levels.dedup();
    let Some(&level) = levels
        .iter()
        .find(|&&l| manifest.at_level(l).len() >= opts.fanout.max(2))
    else {
        return Ok(CompactOutcome::Idle);
    };
    if stop.load(Ordering::Relaxed) {
        crate::metrics().compaction_aborts.inc();
        return Ok(CompactOutcome::Aborted);
    }

    let inputs: Vec<ManifestEntry> = manifest.at_level(level).into_iter().cloned().collect();
    let mut segments = Vec::with_capacity(inputs.len());
    for e in &inputs {
        segments.push(Segment::open(&dir.join(&e.file), 8).map_err(store_err)?);
    }

    // Pick an output name not already taken at the target level.
    let out_name = (0..)
        .map(|n| format!("seg_l{}_{n:06}.seg", level + 1))
        .find(|name| !dir.join(name).exists())
        .expect("unbounded name space");
    let mut builder = SegmentBuilder::new(
        &dir.join(&out_name),
        dir,
        &format!("compact_l{}", level + 1),
        opts.block_triples,
        opts.mem_cap_bytes,
    )?;

    // K-way merge of the inputs' SPO streams, deduplicating. The stop
    // flag is polled whenever any stream crosses a block boundary.
    let mut streams: Vec<SpoStream<'_>> = segments.iter().map(SpoStream::new).collect();
    let mut last: Option<[u32; 3]> = None;
    loop {
        let mut best: Option<(usize, [u32; 3])> = None;
        for (i, s) in streams.iter_mut().enumerate() {
            if s.at_block_boundary() && stop.load(Ordering::Relaxed) {
                builder.abort()?;
                crate::metrics().compaction_aborts.inc();
                return Ok(CompactOutcome::Aborted);
            }
            if let Some(k) = s.head()? {
                if best.is_none_or(|(_, b)| k < b) {
                    best = Some((i, k));
                }
            }
        }
        let Some((i, k)) = best else { break };
        streams[i].pop();
        if last != Some(k) {
            builder.push(k)?;
            last = Some(k);
        }
    }
    drop(streams);
    let (triples, _) = builder.finish()?;

    // New manifest: everything except the inputs, plus the merged
    // output. Until this rename the old store is fully intact.
    let mut entries: Vec<ManifestEntry> = manifest
        .entries
        .iter()
        .filter(|e| e.level != level)
        .cloned()
        .collect();
    entries.push(ManifestEntry {
        file: out_name,
        level: level + 1,
        triples,
    });
    let live = entries.len();
    write_manifest(dir, &Manifest { entries })?;

    // Inputs are garbage now; open readers keep their snapshot via
    // still-valid file handles.
    for e in &inputs {
        std::fs::remove_file(dir.join(&e.file)).ok();
    }
    let m = crate::metrics();
    m.compactions.inc();
    m.segments_live.set(live as i64);
    Ok(CompactOutcome::Compacted {
        level,
        inputs: inputs.len(),
        triples,
    })
}

/// A background compaction thread with cooperative shutdown.
///
/// [`CompactorHandle::stop`] takes `&self` and is idempotent, so the
/// handle can sit in an `Arc` shared between a server shutdown hook and
/// a signal handler: whichever fires first sets the flag, wakes the
/// thread out of its sleep, and joins it. An in-flight merge aborts at
/// the next block boundary, leaving the store untouched.
#[derive(Debug)]
pub struct CompactorHandle {
    stop: Arc<AtomicBool>,
    wake: Arc<(Mutex<()>, Condvar)>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl CompactorHandle {
    /// Spawns the compaction loop over `dir`.
    pub fn spawn(dir: &Path, opts: CompactOpts) -> CompactorHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let wake = Arc::new((Mutex::new(()), Condvar::new()));
        let dir = dir.to_path_buf();
        let thread = {
            let stop = Arc::clone(&stop);
            let wake = Arc::clone(&wake);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match compact_once(&dir, &opts, &stop) {
                        Ok(CompactOutcome::Compacted { .. }) => continue, // look again now
                        Ok(CompactOutcome::Aborted) => break,
                        // Idle, or an error worth retrying next tick (a
                        // concurrent load may not have a manifest yet).
                        Ok(CompactOutcome::Idle) | Err(_) => {}
                    }
                    let (lock, cv) = &*wake;
                    let guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
                    let _ = cv
                        .wait_timeout(guard, opts.interval)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            })
        };
        CompactorHandle {
            stop,
            wake,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// The stop flag, for wiring into signal handlers.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Requests shutdown and joins the thread. Idempotent; safe from any
    /// thread.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        let (_, cv) = &*self.wake;
        cv.notify_all();
        let handle = self
            .thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{load_ntriples, LoadConfig};
    use crate::store::SegmentStore;
    use std::io::Cursor;
    use wodex_store::{Pattern, SegmentSource};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wodex_seg_compact_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn loaded_dir(name: &str, triples: usize, seg_max: usize) -> std::path::PathBuf {
        let mut nt = String::new();
        for i in 0..triples {
            nt.push_str(&format!(
                "<http://e.org/s/{}> <http://e.org/p/{}> <http://e.org/o/{}> .\n",
                i % 571,
                i % 11,
                i % 233
            ));
        }
        let dir = tmpdir(name);
        let cfg = LoadConfig {
            segment_max_triples: seg_max,
            ..LoadConfig::default()
        };
        load_ntriples(Cursor::new(&nt), &dir, &cfg).unwrap();
        dir
    }

    #[test]
    fn compaction_merges_a_level_and_preserves_every_scan() {
        let dir = loaded_dir("merge", 8000, 500);
        let (_, before_store) = SegmentStore::open(&dir).unwrap();
        let before = before_store.scan(Pattern::any()).unwrap();
        let level0 = read_manifest(&dir).unwrap().at_level(0).len();
        assert!(level0 >= 4, "need a compactable level, got {level0}");

        let stop = AtomicBool::new(false);
        let outcome = compact_once(&dir, &CompactOpts::default(), &stop).unwrap();
        match outcome {
            CompactOutcome::Compacted {
                level,
                inputs,
                triples,
            } => {
                assert_eq!(level, 0);
                assert_eq!(inputs, level0);
                assert_eq!(triples as usize, before.len());
            }
            other => panic!("expected a merge, got {other:?}"),
        }
        let manifest = read_manifest(&dir).unwrap();
        assert!(manifest.at_level(0).is_empty());
        assert_eq!(manifest.at_level(1).len(), 1);
        // Input files are gone, no temporaries remain.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(
                !name.ends_with(".tmp") && !name.ends_with(".run"),
                "litter: {name}"
            );
        }
        let (_, after_store) = SegmentStore::open(&dir).unwrap();
        assert_eq!(after_store.scan(Pattern::any()).unwrap(), before);
        // A second call finds nothing left to do.
        assert_eq!(
            compact_once(&dir, &CompactOpts::default(), &stop).unwrap(),
            CompactOutcome::Idle
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preset_stop_flag_aborts_before_touching_the_store() {
        let dir = loaded_dir("abort", 4000, 500);
        let before_manifest = read_manifest(&dir).unwrap();
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        let stop = AtomicBool::new(true);
        assert_eq!(
            compact_once(&dir, &CompactOpts::default(), &stop).unwrap(),
            CompactOutcome::Aborted
        );
        assert_eq!(read_manifest(&dir).unwrap(), before_manifest);
        let after: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(after.len(), files.len(), "no files created or deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_reader_survives_compaction_deleting_its_files() {
        let dir = loaded_dir("snapshot", 6000, 500);
        let (_, reader) = SegmentStore::open(&dir).unwrap();
        let before = reader.scan(Pattern::any()).unwrap();
        let stop = AtomicBool::new(false);
        compact_once(&dir, &CompactOpts::default(), &stop).unwrap();
        // The reader's input files were unlinked; its handles still work.
        assert_eq!(reader.scan(Pattern::any()).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_handle_compacts_then_stops_idempotently() {
        let dir = loaded_dir("handle", 6000, 500);
        let handle = CompactorHandle::spawn(
            &dir,
            CompactOpts {
                interval: Duration::from_millis(10),
                ..CompactOpts::default()
            },
        );
        // Wait for the merge to land.
        for _ in 0..500 {
            if read_manifest(&dir).map(|m| m.at_level(1).len()) == Ok(1) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(read_manifest(&dir).unwrap().at_level(1).len(), 1);
        handle.stop();
        handle.stop(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_compaction_climbs_levels() {
        // 8 level-0 segments with fanout 2: level 0 merges to one
        // level-1 segment; further loads are impossible (immutable
        // model), so drive the ladder by compacting twice more after
        // hand-editing levels is NOT possible — instead verify fanout 2
        // collapses 8 segments in one pass and leaves a sound store.
        let dir = loaded_dir("ladder", 8000, 400);
        let opts = CompactOpts {
            fanout: 2,
            ..CompactOpts::default()
        };
        let stop = AtomicBool::new(false);
        let mut merges = 0;
        while let CompactOutcome::Compacted { .. } = compact_once(&dir, &opts, &stop).unwrap() {
            merges += 1;
            assert!(merges < 10, "compaction must terminate");
        }
        assert!(merges >= 1);
        let (_, store) = SegmentStore::open(&dir).unwrap();
        let all = store.scan(Pattern::any()).unwrap();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        std::fs::remove_dir_all(&dir).ok();
    }
}
