//! The on-disk segment format.
//!
//! One segment file holds one immutable, sorted, deduplicated set of
//! triples, stored **three times** — once per permutation index order
//! (SPO, POS, OSP) — as runs of delta-compressed blocks:
//!
//! ```text
//! [magic  "WSEG0002"]
//! [SPO blocks ...][POS blocks ...][OSP blocks ...]
//! [footer][footer checksum u64][footer length u64][magic "WSEG0002"]
//! ```
//!
//! Each **block** is `[checksum u64][count u32][delta-varint key run]`
//! (the checksum is the PR 2 [`page_checksum`] over everything after
//! itself; the key run is [`wodex_store::encoded::encode_key_run`]). The
//! **footer** carries the triple count, per-position distinct counts
//! (planner statistics without a scan), and a per-section block
//! directory — offset, length, first/last key, per-position min/max
//! zone maps, and count per block — so scans binary-search the
//! directory and decode *exactly* the candidate blocks.
//!
//! Format versioning: the magic doubles as the version tag. `WSEG0002`
//! added the zone-map fields (`last_key`, `min`, `max`); readers reject
//! other versions outright rather than guessing — segments are always
//! produced by the same build that reads them (bulk load, delta
//! compaction), so there is no cross-version migration path to keep.
//!
//! Crash safety is by **atomic rename**: a segment is built in a
//! `*.tmp` sibling and renamed into place only after every byte and the
//! footer are flushed; readers never observe a partial segment.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use wodex_resilience::{page_checksum, StoreError};
use wodex_store::encoded::{
    decode_key_run, encode_key_run, read_varint, read_varint_u32, write_varint,
};
use wodex_store::EncodedTriple;

/// Magic bytes framing a segment file at both ends (also the format
/// version: `WSEG0002` = zone-mapped block directory).
pub const SEGMENT_MAGIC: &[u8; 8] = b"WSEG0002";

/// Bytes of block header: u64 checksum + u32 key count.
pub const BLOCK_HEADER: usize = 12;

/// Default keys per block (~a few KiB compressed).
pub const DEFAULT_BLOCK_TRIPLES: usize = 4096;

/// The three sections of a segment, in file order.
pub const SECTIONS: usize = 3;

/// Directory entry for one block, including its zone map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Byte offset of the block in the segment file.
    pub offset: u64,
    /// Byte length of the block (header included).
    pub len: u32,
    /// First key stored in the block.
    pub first_key: [u32; 3],
    /// Last key stored in the block — with `first_key`, brackets the
    /// block's key range so candidate ranges are exact, not the
    /// `first_key`-only over-approximation.
    pub last_key: [u32; 3],
    /// Per-position minimum over the block's keys (`min[i]` = smallest
    /// `key[i]`). `min[0] == first_key[0]` always; positions 1 and 2
    /// carry real pruning power for bound non-leading components.
    pub min: [u32; 3],
    /// Per-position maximum over the block's keys.
    pub max: [u32; 3],
    /// Number of keys in the block.
    pub count: u32,
}

impl BlockMeta {
    /// True when the zone map proves the block holds no key in the
    /// inclusive `[lo, hi]` bracket of [`shape_key_bounds`]-style
    /// bounds. Sound only for such brackets: a leading run of positions
    /// with `lo[i] == hi[i]` (the bound components), then wildcards.
    ///
    /// [`shape_key_bounds`]: wodex_store::segment::shape_key_bounds
    pub fn zone_prunes(&self, lo: [u32; 3], hi: [u32; 3]) -> bool {
        if self.last_key < lo || self.first_key > hi {
            return true;
        }
        for i in 0..3 {
            if lo[i] != hi[i] {
                break;
            }
            if self.min[i] > lo[i] || self.max[i] < lo[i] {
                return true;
            }
        }
        false
    }
}

/// Decoded footer of one segment file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentMeta {
    /// Triples in the segment (each stored once per section).
    pub triples: u64,
    /// Distinct leading components per section (s, p, o) — the planner
    /// statistics, computed at write time so reads never scan for them.
    pub distinct: [u64; 3],
    /// Block directory per section: `[SPO, POS, OSP]`.
    pub sections: [Vec<BlockMeta>; 3],
}

impl SegmentMeta {
    /// Total blocks across all sections — the segment's "page count"
    /// when blocks are read through a [`wodex_store::PageBackend`].
    pub fn block_count(&self) -> u32 {
        self.sections.iter().map(|s| s.len() as u32).sum()
    }

    /// Maps a flat block id to `(section, index)`.
    pub fn locate(&self, block: u32) -> Option<(usize, usize)> {
        let mut rest = block as usize;
        for (sec, blocks) in self.sections.iter().enumerate() {
            if rest < blocks.len() {
                return Some((sec, rest));
            }
            rest -= blocks.len();
        }
        None
    }

    /// Flat block id of `(section, index)`.
    pub fn flat_id(&self, section: usize, index: usize) -> u32 {
        let before: usize = self.sections[..section].iter().map(|s| s.len()).sum();
        (before + index) as u32
    }
}

/// Encodes one block image from a sorted key run.
pub fn encode_block(keys: &[[u32; 3]]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(BLOCK_HEADER + keys.len() * 4);
    buf.extend_from_slice(&[0u8; 8]);
    buf.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    encode_key_run(keys, &mut buf);
    let sum = page_checksum(&buf[8..]);
    buf[..8].copy_from_slice(&sum.to_le_bytes());
    buf
}

/// Validates a block image's checksum and structure without decoding.
/// `page` is the block's flat id, carried into [`StoreError::Corrupt`]
/// so checksum failures surface in the PR 2 taxonomy with the page they
/// struck, not as strings mapped at the call site.
pub fn verify_block(page: u32, data: &[u8]) -> Result<(), StoreError> {
    if data.len() < BLOCK_HEADER {
        return Err(StoreError::Corrupt {
            page,
            detail: format!("short block: {} bytes", data.len()),
        });
    }
    let stored = u64::from_le_bytes(data[..8].try_into().expect("8-byte checksum"));
    let actual = page_checksum(&data[8..]);
    if stored != actual {
        return Err(StoreError::Corrupt {
            page,
            detail: format!("checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"),
        });
    }
    Ok(())
}

/// Validates and decodes a block image back into keys.
pub fn decode_block(page: u32, data: &[u8]) -> Result<Vec<[u32; 3]>, StoreError> {
    verify_block(page, data)?;
    let count = u32::from_le_bytes(data[8..12].try_into().expect("4-byte count")) as usize;
    let mut out = Vec::new();
    let mut pos = BLOCK_HEADER;
    decode_key_run(data, &mut pos, count, &mut out).ok_or_else(|| StoreError::Corrupt {
        page,
        detail: format!("truncated key run: {count} keys claimed"),
    })?;
    if pos != data.len() {
        return Err(StoreError::Corrupt {
            page,
            detail: format!(
                "trailing garbage: {} bytes after {count} keys",
                data.len() - pos
            ),
        });
    }
    Ok(out)
}

fn write_footer_meta(meta: &SegmentMeta, out: &mut Vec<u8>) {
    write_varint(out, meta.triples);
    for d in meta.distinct {
        write_varint(out, d);
    }
    for blocks in &meta.sections {
        write_varint(out, blocks.len() as u64);
        for b in blocks {
            write_varint(out, b.offset);
            write_varint(out, u64::from(b.len));
            for arr in [b.first_key, b.last_key, b.min, b.max] {
                for k in arr {
                    write_varint(out, u64::from(k));
                }
            }
            write_varint(out, u64::from(b.count));
        }
    }
}

fn read_footer_meta(data: &[u8]) -> Option<SegmentMeta> {
    let mut pos = 0usize;
    let mut meta = SegmentMeta {
        triples: read_varint(data, &mut pos)?,
        ..Default::default()
    };
    for d in &mut meta.distinct {
        *d = read_varint(data, &mut pos)?;
    }
    for sec in &mut meta.sections {
        let n = read_varint(data, &mut pos)? as usize;
        sec.reserve(n);
        for _ in 0..n {
            let offset = read_varint(data, &mut pos)?;
            let len = read_varint_u32(data, &mut pos)?;
            let mut arrs = [[0u32; 3]; 4];
            for arr in &mut arrs {
                for k in arr.iter_mut() {
                    *k = read_varint_u32(data, &mut pos)?;
                }
            }
            let [first_key, last_key, min, max] = arrs;
            let count = read_varint_u32(data, &mut pos)?;
            sec.push(BlockMeta {
                offset,
                len,
                first_key,
                last_key,
                min,
                max,
                count,
            });
        }
    }
    (pos == data.len()).then_some(meta)
}

/// Streaming writer: blocks are appended section by section (SPO, then
/// POS, then OSP — keys must arrive sorted within each section), the
/// footer is sealed last, and the file becomes visible only through the
/// final atomic rename.
pub struct SegmentWriter {
    file: std::io::BufWriter<std::fs::File>,
    tmp_path: std::path::PathBuf,
    final_path: std::path::PathBuf,
    offset: u64,
    meta: SegmentMeta,
    section: usize,
    buf: Vec<[u32; 3]>,
    block_triples: usize,
    /// Distinct leading-component tracker for the current section.
    last_lead: Option<u32>,
}

impl SegmentWriter {
    /// Starts writing a segment destined for `path`.
    pub fn create(path: &Path, block_triples: usize) -> std::io::Result<SegmentWriter> {
        let tmp_path = path.with_extension("tmp");
        let mut file = std::io::BufWriter::new(
            std::fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?,
        );
        file.write_all(SEGMENT_MAGIC)?;
        Ok(SegmentWriter {
            file,
            tmp_path,
            final_path: path.to_path_buf(),
            offset: SEGMENT_MAGIC.len() as u64,
            meta: SegmentMeta::default(),
            section: 0,
            buf: Vec::with_capacity(block_triples.max(1)),
            block_triples: block_triples.max(1),
            last_lead: None,
        })
    }

    /// Appends one key to the current section. Keys must arrive in
    /// strictly ascending order within the section.
    pub fn push_key(&mut self, key: [u32; 3]) -> std::io::Result<()> {
        if self.last_lead != Some(key[0]) {
            self.meta.distinct[self.section] += 1;
            self.last_lead = Some(key[0]);
        }
        if self.section == 0 {
            self.meta.triples += 1;
        }
        self.buf.push(key);
        if self.buf.len() >= self.block_triples {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let image = encode_block(&self.buf);
        let mut min = self.buf[0];
        let mut max = self.buf[0];
        for k in &self.buf[1..] {
            for i in 0..3 {
                min[i] = min[i].min(k[i]);
                max[i] = max[i].max(k[i]);
            }
        }
        self.meta.sections[self.section].push(BlockMeta {
            offset: self.offset,
            len: image.len() as u32,
            first_key: self.buf[0],
            last_key: *self.buf.last().expect("non-empty block"),
            min,
            max,
            count: self.buf.len() as u32,
        });
        self.file.write_all(&image)?;
        self.offset += image.len() as u64;
        self.buf.clear();
        crate::metrics().blocks_written.inc();
        Ok(())
    }

    /// Seals the current section and moves to the next (0 → 1 → 2).
    pub fn next_section(&mut self) -> std::io::Result<()> {
        self.flush_block()?;
        assert!(self.section + 1 < SECTIONS, "segment has three sections");
        self.section += 1;
        self.last_lead = None;
        Ok(())
    }

    /// Writes the footer, flushes, and atomically renames the `*.tmp`
    /// file into place. Returns the sealed metadata.
    pub fn finish(mut self) -> std::io::Result<SegmentMeta> {
        self.flush_block()?;
        assert_eq!(self.section, SECTIONS - 1, "all three sections required");
        let mut footer = Vec::new();
        write_footer_meta(&self.meta, &mut footer);
        let sum = page_checksum(&footer);
        self.file.write_all(&footer)?;
        self.file.write_all(&sum.to_le_bytes())?;
        self.file.write_all(&(footer.len() as u64).to_le_bytes())?;
        self.file.write_all(SEGMENT_MAGIC)?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        std::fs::rename(&self.tmp_path, &self.final_path)?;
        Ok(self.meta)
    }

    /// Abandons the segment, deleting the temporary file. Safe at any
    /// point — the final path was never touched.
    pub fn abort(self) -> std::io::Result<()> {
        drop(self.file);
        std::fs::remove_file(&self.tmp_path)
    }
}

/// Reads and validates a segment file's footer.
pub fn read_segment_meta(path: &Path) -> Result<SegmentMeta, String> {
    let mut file = std::fs::File::open(path).map_err(|e| format!("open: {e}"))?;
    let total = file
        .seek(SeekFrom::End(0))
        .map_err(|e| format!("seek: {e}"))?;
    let trailer = (8 + 8 + SEGMENT_MAGIC.len()) as u64;
    if total < SEGMENT_MAGIC.len() as u64 + trailer {
        return Err(format!("file too small for a segment: {total} bytes"));
    }
    file.seek(SeekFrom::Start(0)).map_err(|e| e.to_string())?;
    let mut head = [0u8; 8];
    file.read_exact(&mut head).map_err(|e| e.to_string())?;
    if &head != SEGMENT_MAGIC {
        return Err("bad leading magic".into());
    }
    file.seek(SeekFrom::End(-(trailer as i64)))
        .map_err(|e| e.to_string())?;
    let mut tail = vec![0u8; trailer as usize];
    file.read_exact(&mut tail).map_err(|e| e.to_string())?;
    if &tail[16..] != SEGMENT_MAGIC {
        return Err("bad trailing magic (torn write?)".into());
    }
    let stored_sum = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
    let footer_len = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
    if footer_len > total - trailer {
        return Err(format!("footer length {footer_len} exceeds file"));
    }
    file.seek(SeekFrom::End(-((trailer + footer_len) as i64)))
        .map_err(|e| e.to_string())?;
    let mut footer = vec![0u8; footer_len as usize];
    file.read_exact(&mut footer).map_err(|e| e.to_string())?;
    if page_checksum(&footer) != stored_sum {
        return Err("footer checksum mismatch".into());
    }
    read_footer_meta(&footer).ok_or_else(|| "footer does not parse".into())
}

/// Convenience writer: builds a whole segment from three pre-sorted key
/// iterators (used by tests and the compactor's in-memory paths; the
/// bulk loader streams through [`SegmentWriter`] directly).
pub fn write_segment(
    path: &Path,
    block_triples: usize,
    spo: impl IntoIterator<Item = EncodedTriple>,
    pos: impl IntoIterator<Item = [u32; 3]>,
    osp: impl IntoIterator<Item = [u32; 3]>,
) -> std::io::Result<SegmentMeta> {
    let mut w = SegmentWriter::create(path, block_triples)?;
    for k in spo {
        w.push_key(k)?;
    }
    w.next_section()?;
    for k in pos {
        w.push_key(k)?;
    }
    w.next_section()?;
    for k in osp {
        w.push_key(k)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_store::index::Order;

    fn keys(n: u32) -> Vec<EncodedTriple> {
        let mut v: Vec<EncodedTriple> = (0..n).map(|i| [i / 7, i % 13, i]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn sorted_by(order: Order, ts: &[EncodedTriple]) -> Vec<[u32; 3]> {
        let mut v: Vec<[u32; 3]> = ts.iter().map(|t| order.key(t)).collect();
        v.sort_unstable();
        v
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wodex_seg_fmt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn block_roundtrip_and_corruption_detection() {
        let ks = keys(500);
        let block = encode_block(&ks);
        assert_eq!(decode_block(7, &block).unwrap(), ks);
        let mut bad = block.clone();
        bad[BLOCK_HEADER + 3] ^= 0x40;
        // Corruption is a typed `Corrupt` carrying the page id, not a
        // string the caller has to re-wrap.
        match decode_block(7, &bad).unwrap_err() {
            StoreError::Corrupt { page, detail } => {
                assert_eq!(page, 7);
                assert!(detail.contains("checksum"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        match decode_block(3, &block[..4]).unwrap_err() {
            StoreError::Corrupt { page, detail } => {
                assert_eq!(page, 3);
                assert!(detail.contains("short block"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn segment_write_read_meta_roundtrip() {
        let ts = keys(10_000);
        let path = tmp("roundtrip.seg");
        let meta = write_segment(
            &path,
            512,
            ts.iter().copied(),
            sorted_by(Order::Pos, &ts),
            sorted_by(Order::Osp, &ts),
        )
        .unwrap();
        assert_eq!(meta.triples as usize, ts.len());
        let read = read_segment_meta(&path).unwrap();
        assert_eq!(read, meta);
        // Every section's directory is sorted by first key, block
        // ranges are disjoint ([last of i] < [first of i+1]), and
        // counts sum to the triple count.
        for sec in &read.sections {
            assert!(sec.windows(2).all(|w| w[0].first_key < w[1].first_key));
            assert!(sec.windows(2).all(|w| w[0].last_key < w[1].first_key));
            let total: u64 = sec.iter().map(|b| u64::from(b.count)).sum();
            assert_eq!(total, read.triples);
            for b in sec {
                assert!(b.first_key <= b.last_key);
                for i in 0..3 {
                    assert!(b.min[i] <= b.max[i]);
                    assert!(b.min[i] <= b.first_key[i] && b.first_key[i] <= b.max[i]);
                    assert!(b.min[i] <= b.last_key[i] && b.last_key[i] <= b.max[i]);
                }
            }
        }
        // Distinct leading counts match a direct computation.
        let mut subjects: Vec<u32> = ts.iter().map(|t| t[0]).collect();
        subjects.dedup();
        assert_eq!(read.distinct[0] as usize, subjects.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zone_maps_match_direct_computation_and_prune_soundly() {
        let ts = keys(3000);
        let path = tmp("zones.seg");
        let meta = write_segment(
            &path,
            128,
            ts.iter().copied(),
            sorted_by(Order::Pos, &ts),
            sorted_by(Order::Osp, &ts),
        )
        .unwrap();
        // Reconstruct each SPO block's key slice from the directory
        // counts and compare the recorded zone map against a direct
        // componentwise min/max.
        let mut at = 0usize;
        for b in &meta.sections[0] {
            let slice = &ts[at..at + b.count as usize];
            at += b.count as usize;
            assert_eq!(b.first_key, slice[0]);
            assert_eq!(b.last_key, *slice.last().unwrap());
            for i in 0..3 {
                assert_eq!(b.min[i], slice.iter().map(|k| k[i]).min().unwrap());
                assert_eq!(b.max[i], slice.iter().map(|k| k[i]).max().unwrap());
            }
            // Soundness: a bracket built from any key the block holds
            // is never pruned.
            for k in slice.iter().step_by(17) {
                assert!(!b.zone_prunes(*k, *k));
                assert!(!b.zone_prunes([k[0], 0, 0], [k[0], u32::MAX, u32::MAX]));
                assert!(!b.zone_prunes([k[0], k[1], 0], [k[0], k[1], u32::MAX]));
            }
        }
        assert_eq!(at, ts.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_segment_is_rejected_not_decoded() {
        let ts = keys(2000);
        let path = tmp("torn.seg");
        write_segment(
            &path,
            256,
            ts.iter().copied(),
            sorted_by(Order::Pos, &ts),
            sorted_by(Order::Osp, &ts),
        )
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Chop the tail: simulates a torn write that rename would have
        // prevented from ever being visible under the final name.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(read_segment_meta(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn abort_leaves_no_file_behind() {
        let path = tmp("aborted.seg");
        let mut w = SegmentWriter::create(&path, 64).unwrap();
        for k in keys(100) {
            w.push_key(k).unwrap();
        }
        w.abort().unwrap();
        assert!(!path.exists());
        assert!(!path.with_extension("tmp").exists());
    }
}
