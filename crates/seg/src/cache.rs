//! Decoded-block cache: the segment scan engine's hot tier.
//!
//! PR 8's segment store decodes every candidate block from scratch on
//! every scan — an exploration session that zooms/filters the same
//! region pays full varint-decode cost dozens of times. The survey's §4
//! prescription (caching + prefetching over disk-resident data for
//! interactive latency) lands here: a process-wide, sharded LRU of
//! **decoded** blocks, keyed by `(segment id, section, block index)`
//! and holding `Arc<Vec<[u32; 3]>>` so hot blocks decode once and are
//! shared zero-copy across concurrent readers and MVCC snapshots.
//!
//! **Invalidation is by segment identity, not by mutation.** Segment
//! files are immutable; every (re)open — bulk load, delta compaction,
//! MVCC reopen — constructs fresh [`crate::store::Segment`] values,
//! and each takes a fresh process-unique id from [`next_segment_id`].
//! A new generation therefore caches under new keys and can never
//! observe a stale block; entries for dropped generations simply age
//! out of the LRU. There is no explicit invalidation call to forget.
//!
//! Capacity is bytes-accounted (decoded keys + fixed per-entry
//! overhead) and split evenly across shards; the process-wide instance
//! is sized by `WODEX_SEGCACHE_MB` (`0` disables caching entirely).
//! Metrics follow the [`wodex_store::BufferPool`] conservation law:
//! every lookup counts exactly one hit or one miss, so
//! `wodex_segcache_hits_total + wodex_segcache_misses_total ==
//! wodex_segcache_lookups_total` holds at every instant.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use wodex_obs::{Counter, Gauge};

/// Default process-wide cache capacity when `WODEX_SEGCACHE_MB` is
/// unset.
pub const DEFAULT_CAPACITY_MB: usize = 64;

/// Lock shards — enough to keep 8-thread scan storms off one mutex.
const SHARDS: usize = 16;

/// Accounted bytes per cached key (12 data bytes + amortized `Vec`,
/// `Arc` and map-entry overhead).
const BYTES_PER_KEY: usize = 12;

/// Fixed accounted overhead per cache entry.
const ENTRY_OVERHEAD: usize = 96;

/// A decoded block shared zero-copy between the cache and its readers.
pub type CachedBlock = Arc<Vec<[u32; 3]>>;

/// Cache key: which decoded block of which segment generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// Process-unique segment id from [`next_segment_id`] — the
    /// generation tag that makes invalidation implicit.
    pub segment: u64,
    /// Section (0 = SPO, 1 = POS, 2 = OSP).
    pub section: u8,
    /// Block index within the section.
    pub block: u32,
}

/// Allocates a process-unique id for a newly opened segment. Ids are
/// never reused, so a reopened segment (delta compaction, MVCC reopen)
/// can never collide with cached blocks of its previous generation.
pub fn next_segment_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Global registry series for the decoded-block cache.
struct CacheMetrics {
    lookups: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    bytes: Arc<Gauge>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        CacheMetrics {
            lookups: r.counter(
                "wodex_segcache_lookups_total",
                "Decoded-block cache lookups",
            ),
            hits: r.counter(
                "wodex_segcache_hits_total",
                "Decoded-block cache lookups served from the cache",
            ),
            misses: r.counter(
                "wodex_segcache_misses_total",
                "Decoded-block cache lookups that required a decode",
            ),
            evictions: r.counter(
                "wodex_segcache_evictions_total",
                "Decoded blocks evicted by LRU capacity pressure",
            ),
            bytes: r.gauge(
                "wodex_segcache_bytes",
                "Accounted bytes resident in the decoded-block cache",
            ),
        }
    })
}

/// Per-instance lookup statistics (atomic snapshot, test/bench
/// bookkeeping — the registry carries the process-wide series).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups against this instance.
    pub lookups: AtomicU64,
    /// Lookups served from this instance.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// Entries evicted from this instance.
    pub evictions: AtomicU64,
}

struct Entry {
    keys: CachedBlock,
    bytes: usize,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<BlockKey, Entry>,
    clock: u64,
    bytes: usize,
}

/// Sharded bytes-accounted LRU over decoded blocks.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    stats: CacheStats,
}

impl BlockCache {
    /// A cache holding at most ~`capacity_bytes` accounted bytes.
    pub fn new(capacity_bytes: usize) -> BlockCache {
        BlockCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: (capacity_bytes / SHARDS).max(ENTRY_OVERHEAD),
            stats: CacheStats::default(),
        }
    }

    /// The process-wide instance, sized by `WODEX_SEGCACHE_MB`
    /// (default [`DEFAULT_CAPACITY_MB`]); `None` when the variable is
    /// set to `0` (cache disabled).
    pub fn global() -> Option<&'static Arc<BlockCache>> {
        static GLOBAL: OnceLock<Option<Arc<BlockCache>>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let mb = std::env::var("WODEX_SEGCACHE_MB")
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .unwrap_or(DEFAULT_CAPACITY_MB);
                (mb > 0).then(|| Arc::new(BlockCache::new(mb << 20)))
            })
            .as_ref()
    }

    fn shard(&self, key: &BlockKey) -> MutexGuard<'_, Shard> {
        // Cheap FNV-style mix; BlockKey is tiny and segment ids are
        // sequential, so fold every field in.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for part in [key.segment, u64::from(key.section), u64::from(key.block)] {
            h = (h ^ part).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.shards[(h as usize) % SHARDS]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up one decoded block. Counts exactly one lookup and one
    /// hit or miss — the conservation law the observability suite
    /// asserts under concurrent load.
    pub fn get(&self, key: BlockKey) -> Option<CachedBlock> {
        let m = cache_metrics();
        m.lookups.inc();
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key);
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.map.get_mut(&key) {
            Some(e) => {
                e.stamp = stamp;
                let keys = Arc::clone(&e.keys);
                drop(shard);
                m.hits.inc();
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(keys)
            }
            None => {
                drop(shard);
                m.misses.inc();
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly decoded block, evicting least-recently-used
    /// entries while the shard is over capacity. A racing insert of the
    /// same key (two threads missing concurrently) is accounted once.
    /// Counts no lookup.
    pub fn insert(&self, key: BlockKey, keys: CachedBlock) {
        let bytes = keys.len() * BYTES_PER_KEY + ENTRY_OVERHEAD;
        if bytes > self.shard_capacity {
            return; // pathological block: never let one entry own a shard
        }
        let m = cache_metrics();
        let mut shard = self.shard(&key);
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(e) = shard.map.get_mut(&key) {
            e.stamp = stamp; // racing insert: refresh, account nothing
            return;
        }
        shard.map.insert(key, Entry { keys, bytes, stamp });
        shard.bytes += bytes;
        let mut freed = 0i64;
        let mut evicted = 0u64;
        while shard.bytes > self.shard_capacity {
            let Some(victim) = shard
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            else {
                break;
            };
            let gone = shard.map.remove(&victim).expect("victim resident");
            shard.bytes -= gone.bytes;
            freed += gone.bytes as i64;
            evicted += 1;
        }
        drop(shard);
        m.bytes.add(bytes as i64 - freed);
        if evicted > 0 {
            m.evictions.add(evicted);
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Accounted bytes currently resident across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).bytes)
            .sum()
    }

    /// Per-instance lookup statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(seed: u32, len: usize) -> CachedBlock {
        Arc::new((0..len as u32).map(|i| [seed, i, seed ^ i]).collect())
    }

    fn key(segment: u64, block: u32) -> BlockKey {
        BlockKey {
            segment,
            section: 0,
            block,
        }
    }

    #[test]
    fn get_after_insert_returns_the_same_allocation() {
        let c = BlockCache::new(1 << 20);
        let b = block(1, 100);
        c.insert(key(1, 0), Arc::clone(&b));
        let got = c.get(key(1, 0)).expect("hit");
        assert!(Arc::ptr_eq(&got, &b), "zero-copy: same allocation");
        assert!(c.get(key(2, 0)).is_none(), "other generation is a miss");
        let s = c.stats();
        assert_eq!(s.lookups.load(Ordering::Relaxed), 2);
        assert_eq!(s.hits.load(Ordering::Relaxed), 1);
        assert_eq!(s.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn capacity_pressure_evicts_lru_and_keeps_accounting_consistent() {
        // Tiny cache: each shard holds ~2 entries of 100 keys.
        let c = BlockCache::new(SHARDS * (2 * (100 * BYTES_PER_KEY + ENTRY_OVERHEAD) + 8));
        for i in 0..64 {
            c.insert(key(1, i), block(i, 100));
        }
        assert!(
            c.stats().evictions.load(Ordering::Relaxed) > 0,
            "64 entries into a ~32-entry cache must evict"
        );
        assert!(
            c.resident_bytes() <= SHARDS * c.shard_capacity,
            "resident {} exceeds capacity {}",
            c.resident_bytes(),
            SHARDS * c.shard_capacity
        );
        // Recently touched keys survive over untouched ones within a
        // shard: re-insert a fresh key and confirm the cache still
        // serves it.
        c.insert(key(1, 999), block(999, 100));
        assert!(c.get(key(1, 999)).is_some());
    }

    #[test]
    fn racing_insert_of_same_key_accounts_once() {
        let c = BlockCache::new(1 << 20);
        c.insert(key(3, 7), block(3, 50));
        let before = c.resident_bytes();
        c.insert(key(3, 7), block(3, 50));
        assert_eq!(c.resident_bytes(), before, "double insert, single account");
    }

    #[test]
    fn oversized_entry_is_refused_not_thrashed() {
        let c = BlockCache::new(SHARDS * 256);
        c.insert(key(4, 0), block(4, 10_000));
        assert!(c.get(key(4, 0)).is_none(), "entry larger than a shard");
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn segment_ids_are_unique_across_threads() {
        let ids: Vec<u64> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..100).map(|_| next_segment_id()).collect::<Vec<_>>()))
                .collect();
            hs.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "no id reuse");
    }
}
