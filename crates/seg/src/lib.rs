//! # wodex-seg — persistent compressed segment store
//!
//! The survey's §4 names the gap this crate fills: WoD systems "initially
//! load all the examined objects in main memory", where they should be
//! "integrated with disk structures, retrieving data dynamically during
//! runtime". `wodex-seg` is the disk structure — an HDT-flavoured,
//! LSM-shaped segment store:
//!
//! * **Format** ([`format`]): triples live in immutable *segment files*,
//!   each holding the same sorted, deduplicated triple set three times —
//!   once per permutation order (SPO, POS, OSP) — as runs of
//!   delta-varint-compressed blocks, every block carrying the PR 2 64-bit
//!   checksum. A footer holds the block directory and planner statistics;
//!   files become visible only through an atomic rename.
//! * **Dictionary** ([`dict`]): terms are front-coded into a sidecar
//!   `dict.wdx`, rebuilt into a [`wodex_rdf::TermDict`] at open. The
//!   dictionary resides in RAM (the HDT trade-off); triple data does not.
//! * **Store** ([`store`]): [`store::SegmentStore`] opens a directory of
//!   segments behind `wodex-store`'s `SegmentSource` trait — block reads
//!   go through the PR 2 [`wodex_store::BufferPool`] and retry transient
//!   faults under a [`wodex_resilience::RetryPolicy`]; corrupt blocks
//!   surface as typed [`wodex_resilience::StoreError::Corrupt`], never
//!   panics. A `TripleStore::with_base` on top gives the PR 5 planner,
//!   PR 6 WCO triejoin and PR 7 shard workers the same API they already
//!   speak.
//! * **Loader** ([`loader`]): `wodex load` streams N-Triples through
//!   bounded-memory sorted runs (external merge sort, run budget enforced
//!   by [`wodex_resilience::Budget`]) — the dump never materializes in
//!   RAM.
//! * **Compaction** ([`compact`]): segments form levels; a background
//!   thread merges a full level into the next. Inputs are immutable, the
//!   output appears by rename, so aborting mid-merge (shutdown, SIGTERM)
//!   is always safe.
//! * **Scan engine** ([`cache`] + [`store`]): repeated scans are served
//!   from a process-wide sharded LRU of *decoded* blocks
//!   (`WODEX_SEGCACHE_MB`), candidate block ranges are pruned exactly
//!   by per-block zone maps (`first_key`/`last_key` + per-position
//!   min/max), cache-miss runs decode in parallel with deterministic
//!   reassembly, and `scan_chunks` streams results block-by-block so
//!   consumers never materialize full scans.

pub mod cache;
pub mod compact;
pub mod delta;
pub mod dict;
pub mod format;
pub mod loader;
pub mod store;

pub use cache::{BlockCache, BlockKey, CachedBlock};
pub use compact::{compact_once, CompactOpts, CompactOutcome, CompactorHandle};
pub use delta::{
    compact_deltas, compact_deltas_with, replay, wal_sink, CompactDeltasOutcome, DeltaFaultPlan,
    DeltaLog, DELTA_FILE,
};
pub use dict::{read_dict, write_dict};
pub use format::{read_segment_meta, BlockMeta, SegmentMeta, SegmentWriter};
pub use loader::{load_ntriples, LoadConfig, LoadReport};
pub use store::{Segment, SegmentFileBackend, SegmentStore};

use std::sync::{Arc, OnceLock};
use wodex_obs::{Counter, Gauge};

/// Global registry series for the segment store.
pub struct SegMetrics {
    /// Triples accepted by the bulk loader.
    pub triples_loaded: Arc<Counter>,
    /// Sorted runs spilled to disk by the external sort (≥2 proves the
    /// load ran outside RAM).
    pub runs_spilled: Arc<Counter>,
    /// Compressed blocks written (loader + compactor).
    pub blocks_written: Arc<Counter>,
    /// Compressed blocks fetched from disk (pool misses).
    pub blocks_read: Arc<Counter>,
    /// Block fetches rejected by checksum verification.
    pub checksum_failures: Arc<Counter>,
    /// Completed compaction merges.
    pub compactions: Arc<Counter>,
    /// Compaction merges aborted by shutdown.
    pub compaction_aborts: Arc<Counter>,
    /// Live segment files across open stores.
    pub segments_live: Arc<Gauge>,
    /// Delta frames appended durably to write-ahead logs.
    pub delta_appends: Arc<Counter>,
    /// Delta frames replayed at log open.
    pub delta_frames_replayed: Arc<Counter>,
    /// Torn log tails truncated at open.
    pub delta_torn_tails: Arc<Counter>,
    /// Delta logs folded into base segments.
    pub delta_compactions: Arc<Counter>,
}

/// The process-wide [`SegMetrics`] instance.
pub fn metrics() -> &'static SegMetrics {
    static METRICS: OnceLock<SegMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        SegMetrics {
            triples_loaded: r.counter(
                "wodex_seg_triples_loaded_total",
                "Triples accepted by the segment bulk loader",
            ),
            runs_spilled: r.counter(
                "wodex_seg_runs_spilled_total",
                "Sorted runs spilled to disk by the external merge sort",
            ),
            blocks_written: r.counter(
                "wodex_seg_blocks_written_total",
                "Compressed segment blocks written",
            ),
            blocks_read: r.counter(
                "wodex_seg_blocks_read_total",
                "Compressed segment blocks fetched from backends",
            ),
            checksum_failures: r.counter(
                "wodex_seg_block_checksum_failures_total",
                "Segment block fetches rejected by checksum verification",
            ),
            compactions: r.counter(
                "wodex_seg_compactions_total",
                "Completed segment compaction merges",
            ),
            compaction_aborts: r.counter(
                "wodex_seg_compaction_aborts_total",
                "Segment compaction merges aborted by shutdown",
            ),
            segments_live: r.gauge(
                "wodex_seg_segments_live",
                "Live segment files across open segment stores",
            ),
            delta_appends: r.counter(
                "wodex_seg_delta_appends_total",
                "Delta frames appended durably to write-ahead logs",
            ),
            delta_frames_replayed: r.counter(
                "wodex_seg_delta_frames_replayed_total",
                "Delta frames replayed at write-ahead log open",
            ),
            delta_torn_tails: r.counter(
                "wodex_seg_delta_torn_tails_total",
                "Torn write-ahead log tails truncated at open",
            ),
            delta_compactions: r.counter(
                "wodex_seg_delta_compactions_total",
                "Delta logs folded into base segments",
            ),
        }
    })
}
