//! Opening and scanning segment directories.
//!
//! A segment directory holds a `MANIFEST`, a `dict.wdx` sidecar
//! ([`crate::dict`]) and one or more immutable segment files
//! ([`crate::format`]) arranged in compaction levels. [`SegmentStore`]
//! opens the directory and implements `wodex-store`'s
//! [`SegmentSource`] trait, so a [`wodex_store::TripleStore::with_base`]
//! on top runs the PR 5 planner, the PR 6 WCO triejoin and the PR 7
//! shard workers against disk-resident data without any engine changes.
//!
//! The read path replicates the PR 2 discipline: every block fetch goes
//! through a [`BufferPool`] (bounded residency), is checksum-verified on
//! entry (a corrupt block is a typed [`StoreError::Corrupt`], never a
//! panic), and transient faults are retried under a [`RetryPolicy`].
//!
//! On top of that sits the PR 10 **scan engine**: candidate block
//! ranges are computed *exactly* from the zone-mapped directory
//! (`first_key`/`last_key` bracketing plus per-position min/max
//! pruning), decoded blocks are shared through the process-wide
//! [`BlockCache`] keyed by segment generation, cache-miss batches
//! decode in parallel with deterministic reassembly, and
//! [`SegmentSource::scan_chunks`] streams block-sized slices so
//! consumers never materialize a full scan.

use crate::cache::{BlockCache, BlockKey, CachedBlock};
use crate::format::{self, BlockMeta, SegmentMeta};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use wodex_rdf::TermDict;
use wodex_resilience::{RetryPolicy, RetrySnapshot, RetryStats, StoreError};
use wodex_store::encoded::{decode_key_run, EncodedTriple, Pattern};
use wodex_store::index::Order;
use wodex_store::memstore::StoreStats;
use wodex_store::{shape_key_bounds, BufferPool, PageBackend, SegmentSource};

/// Manifest file name inside a segment directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Default resident blocks per open segment.
pub const DEFAULT_POOL_BLOCKS: usize = 64;

/// One `seg` line of the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Segment file name (relative to the directory).
    pub file: String,
    /// Compaction level (0 = freshly loaded).
    pub level: u32,
    /// Triples in the segment.
    pub triples: u64,
}

/// The decoded manifest of a segment directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Segment entries, in manifest order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Segments at one compaction level, in manifest order.
    pub fn at_level(&self, level: u32) -> Vec<&ManifestEntry> {
        self.entries.iter().filter(|e| e.level == level).collect()
    }
}

/// Reads and parses `dir/MANIFEST`.
pub fn read_manifest(dir: &Path) -> Result<Manifest, String> {
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    match lines.next() {
        Some("wodex-seg 1") => {}
        other => return Err(format!("bad manifest header: {other:?}")),
    }
    let mut m = Manifest::default();
    for (no, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["dict", _file] => {}
            ["seg", file, "level", level, "triples", triples] => {
                m.entries.push(ManifestEntry {
                    file: (*file).to_string(),
                    level: level.parse().map_err(|e| format!("line {no}: {e}"))?,
                    triples: triples.parse().map_err(|e| format!("line {no}: {e}"))?,
                });
            }
            _ => return Err(format!("unrecognized manifest line {no}: {line:?}")),
        }
    }
    Ok(m)
}

/// Writes `dir/MANIFEST` atomically (tmp + rename).
pub fn write_manifest(dir: &Path, m: &Manifest) -> std::io::Result<()> {
    let mut text = String::from("wodex-seg 1\n");
    text.push_str(&format!("dict {}\n", crate::dict::DICT_FILE));
    for e in &m.entries {
        text.push_str(&format!(
            "seg {} level {} triples {}\n",
            e.file, e.level, e.triples
        ));
    }
    let tmp = dir.join("MANIFEST.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE))
}

/// A segment file exposed as a [`PageBackend`]: page id = flat block
/// index across the three sections (SPO blocks, then POS, then OSP).
/// Blocks are variable-length; offsets come from the footer directory.
/// Append is unsupported — segments are written by [`format::SegmentWriter`]
/// and immutable afterwards.
pub struct SegmentFileBackend {
    file: Mutex<std::fs::File>,
    /// `(offset, len)` per flat block id.
    blocks: Vec<(u64, u32)>,
    reads: AtomicU64,
}

impl SegmentFileBackend {
    /// Opens `path` with the directory decoded from `meta`.
    pub fn open(path: &Path, meta: &SegmentMeta) -> std::io::Result<SegmentFileBackend> {
        let file = std::fs::File::open(path)?;
        let blocks = meta
            .sections
            .iter()
            .flatten()
            .map(|b| (b.offset, b.len))
            .collect();
        Ok(SegmentFileBackend {
            file: Mutex::new(file),
            blocks,
            reads: AtomicU64::new(0),
        })
    }
}

impl PageBackend for SegmentFileBackend {
    fn read_page(&self, id: u32) -> Result<Vec<u8>, StoreError> {
        let &(offset, len) = self.blocks.get(id as usize).ok_or(StoreError::NoSuchPage {
            page: id,
            pages: self.blocks.len() as u32,
        })?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut buf = vec![0u8; len as usize];
        let mut f = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::Io {
                op: "seek",
                detail: e.to_string(),
            })?;
        f.read_exact(&mut buf).map_err(|e| match e.kind() {
            // A short read of a block we know exists is a torn read —
            // worth retrying, like the paged store's page reads.
            std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::Interrupted => {
                StoreError::Transient {
                    op: "read_block",
                    detail: e.to_string(),
                }
            }
            _ => StoreError::Io {
                op: "read_block",
                detail: e.to_string(),
            },
        })?;
        Ok(buf)
    }

    fn append_page(&mut self, _data: &[u8]) -> Result<u32, StoreError> {
        Err(StoreError::Io {
            op: "append_page",
            detail: "segment files are immutable".into(),
        })
    }

    fn page_count(&self) -> u32 {
        self.blocks.len() as u32
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

fn section_of(order: Order) -> usize {
    match order {
        Order::Spo => 0,
        Order::Pos => 1,
        Order::Osp => 2,
    }
}

/// Cache-missing blocks dispatched to the coarse parallel decoder per
/// batch. Bounds the decoded bytes in flight and the distance between
/// two chunk emissions, so budget-aware consumers stop within one
/// batch of where the budget tripped.
const DECODE_BATCH: usize = 32;

/// One open segment file: footer metadata, a block backend, a buffer
/// pool bounding resident blocks, and a retry policy for transient
/// faults. Generic over the backend so the chaos tests can splice a
/// [`wodex_store::FaultBackend`] underneath.
///
/// Every segment carries a process-unique `cache_id` taken at
/// construction — the decoded-block cache's generation tag. Reopens
/// (delta compaction, MVCC snapshot reloads) build fresh `Segment`
/// values and therefore fresh ids, so stale cached blocks are
/// unreachable by construction.
pub struct Segment<B: PageBackend> {
    meta: SegmentMeta,
    backend: B,
    pool: BufferPool,
    policy: RetryPolicy,
    retry_stats: RetryStats,
    cache_id: u64,
    cache: Option<Arc<BlockCache>>,
}

impl<B: PageBackend> std::fmt::Debug for Segment<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("triples", &self.meta.triples)
            .field("blocks", &self.meta.block_count())
            .finish()
    }
}

impl Segment<SegmentFileBackend> {
    /// Opens the segment file at `path`.
    pub fn open(
        path: &Path,
        pool_blocks: usize,
    ) -> Result<Segment<SegmentFileBackend>, StoreError> {
        let meta = format::read_segment_meta(path).map_err(|detail| StoreError::Io {
            op: "read_segment_meta",
            detail: format!("{}: {detail}", path.display()),
        })?;
        let backend = SegmentFileBackend::open(path, &meta).map_err(|e| StoreError::Io {
            op: "open_segment",
            detail: format!("{}: {e}", path.display()),
        })?;
        Ok(Segment::from_parts(meta, backend, pool_blocks))
    }
}

impl<B: PageBackend> Segment<B> {
    /// Assembles a segment from parts — the test seam for fault-injecting
    /// backends.
    pub fn from_parts(meta: SegmentMeta, backend: B, pool_blocks: usize) -> Segment<B> {
        Segment {
            meta,
            backend,
            pool: BufferPool::new(pool_blocks),
            policy: RetryPolicy::default(),
            retry_stats: RetryStats::new(),
            cache_id: crate::cache::next_segment_id(),
            cache: BlockCache::global().cloned(),
        }
    }

    /// The segment's generation tag in the decoded-block cache.
    pub fn cache_id(&self) -> u64 {
        self.cache_id
    }

    /// Attaches, swaps, or detaches (`None`) the decoded-block cache —
    /// the seam bench and tests use to run a cache-off oracle in the
    /// same process.
    pub fn set_block_cache(&mut self, cache: Option<Arc<BlockCache>>) {
        self.cache = cache;
    }

    /// Footer metadata.
    pub fn meta(&self) -> &SegmentMeta {
        &self.meta
    }

    /// The backend, for fault/I-O inspection in tests.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Retry counters accumulated across block reads.
    pub fn retry_stats(&self) -> RetrySnapshot {
        self.retry_stats.snapshot()
    }

    /// Triples stored (each section holds all of them).
    pub fn len(&self) -> usize {
        self.meta.triples as usize
    }

    /// True if the segment holds no triples.
    pub fn is_empty(&self) -> bool {
        self.meta.triples == 0
    }

    /// Reads one block from the backend and checksum-verifies it — the
    /// only route by which bytes enter the pool.
    fn fetch_verified(&self, id: u32) -> Result<Vec<u8>, StoreError> {
        let m = crate::metrics();
        m.blocks_read.inc();
        let data = self.backend.read_page(id)?;
        format::verify_block(id, &data).inspect_err(|_| {
            m.checksum_failures.inc();
        })?;
        Ok(data)
    }

    fn block_bytes(&self, id: u32) -> Result<Arc<Vec<u8>>, StoreError> {
        self.policy.run(
            &self.retry_stats,
            StoreError::is_transient,
            |_attempt| self.pool.get(id, || self.fetch_verified(id)),
            |attempts, last| StoreError::RetriesExhausted {
                op: "read_block",
                attempts,
                last: last.to_string(),
            },
        )
    }

    /// Decodes one block of a section into keys, bypassing the decoded
    /// cache — the compactor's streaming path uses this deliberately: a
    /// compaction touches every block exactly once, and routing it
    /// through the cache would only evict hot scan blocks. Bytes from
    /// the pool were verified on entry, so a decode failure here means
    /// the image is structurally corrupt despite the checksum — still a
    /// typed error.
    pub fn block_keys(&self, section: usize, index: usize) -> Result<Vec<[u32; 3]>, StoreError> {
        let id = self.meta.flat_id(section, index);
        let data = self.block_bytes(id)?;
        decode_pool_block(id, &data)
    }

    /// Decodes the given blocks of one section, cache first. Misses are
    /// fetched through the pool/retry discipline and decoded by the
    /// coarse parallel decoder with deterministic ordered reassembly;
    /// results line up with `indexes`.
    fn decoded_batch(
        &self,
        section: usize,
        indexes: &[usize],
    ) -> Result<Vec<CachedBlock>, StoreError> {
        let Some(cache) = &self.cache else {
            return indexes
                .iter()
                .map(|&i| Ok(Arc::new(self.block_keys(section, i)?)))
                .collect();
        };
        let mut out: Vec<Option<CachedBlock>> = Vec::with_capacity(indexes.len());
        let mut misses: Vec<(usize, usize)> = Vec::new();
        for (slot, &index) in indexes.iter().enumerate() {
            let key = BlockKey {
                segment: self.cache_id,
                section: section as u8,
                block: index as u32,
            };
            match cache.get(key) {
                Some(hit) => out.push(Some(hit)),
                None => {
                    out.push(None);
                    misses.push((slot, index));
                }
            }
        }
        // Fetch serially (the pool and the backend file handle are the
        // serialization points anyway), decode in parallel.
        let fetched: Vec<(usize, u32, Arc<Vec<u8>>)> = misses
            .iter()
            .map(|&(slot, index)| {
                let id = self.meta.flat_id(section, index);
                Ok((slot, id, self.block_bytes(id)?))
            })
            .collect::<Result<_, StoreError>>()?;
        let decoded =
            wodex_exec::par_map_coarse(&fetched, |(_, id, data)| decode_pool_block(*id, data));
        for (&(slot, index), keys) in misses.iter().zip(decoded) {
            let keys = Arc::new(keys?);
            cache.insert(
                BlockKey {
                    segment: self.cache_id,
                    section: section as u8,
                    block: index as u32,
                },
                Arc::clone(&keys),
            );
            out[slot] = Some(keys);
        }
        Ok(out.into_iter().map(|b| b.expect("slot filled")).collect())
    }

    /// Streams the in-bounds slice of every candidate block of `pat`,
    /// in the shape's key order. `emit` returns `false` to stop early;
    /// the scan then returns `Ok(false)` without decoding further
    /// batches — budget-aware consumers degrade at block granularity.
    fn for_each_key_chunk(
        &self,
        pat: Pattern,
        emit: &mut dyn FnMut(&[[u32; 3]]) -> bool,
    ) -> Result<bool, StoreError> {
        let (order, lo, hi) = shape_key_bounds(pat);
        let section = section_of(order);
        let blocks = &self.meta.sections[section];
        let candidates: Vec<usize> = candidate_range(blocks, lo, hi)
            .filter(|&i| !blocks[i].zone_prunes(lo, hi))
            .collect();
        for batch in candidates.chunks(DECODE_BATCH) {
            let decoded = self.decoded_batch(section, batch)?;
            for (&index, keys) in batch.iter().zip(&decoded) {
                let b = &blocks[index];
                // Interior blocks lie wholly inside the bracket; only
                // boundary blocks pay a binary-search trim.
                let s = if b.first_key >= lo {
                    0
                } else {
                    keys.partition_point(|k| *k < lo)
                };
                let e = if b.last_key <= hi {
                    keys.len()
                } else {
                    keys.partition_point(|k| *k <= hi)
                };
                if s < e && !emit(&keys[s..e]) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// All keys of `pat`'s matches, in the shape's index key order —
    /// decoding exactly the blocks whose zone maps intersect the
    /// pattern's key bounds.
    pub fn scan_keys(&self, pat: Pattern) -> Result<Vec<[u32; 3]>, StoreError> {
        let mut out = Vec::new();
        self.for_each_key_chunk(pat, &mut |chunk| {
            out.extend_from_slice(chunk);
            true
        })?;
        Ok(out)
    }

    /// Keys a scan of `pat` would decode — the metadata-only cardinality
    /// bound behind [`SegmentSource::estimate`]. Exact at the block
    /// level: zone-pruned blocks no longer inflate the estimate.
    fn candidate_count(&self, pat: Pattern) -> usize {
        let (order, lo, hi) = shape_key_bounds(pat);
        let blocks = &self.meta.sections[section_of(order)];
        candidate_range(blocks, lo, hi)
            .filter(|&i| !blocks[i].zone_prunes(lo, hi))
            .map(|i| blocks[i].count as usize)
            .sum()
    }
}

/// Decodes a pool-resident (already checksum-verified) block image.
fn decode_pool_block(id: u32, data: &[u8]) -> Result<Vec<[u32; 3]>, StoreError> {
    let count = u32::from_le_bytes(
        data[8..format::BLOCK_HEADER]
            .try_into()
            .expect("4-byte count"),
    ) as usize;
    let mut out = Vec::with_capacity(count);
    let mut pos = format::BLOCK_HEADER;
    decode_key_run(data, &mut pos, count, &mut out).ok_or_else(|| StoreError::Corrupt {
        page: id,
        detail: format!("key run does not decode: {count} keys claimed"),
    })?;
    Ok(out)
}

/// Exact candidate block range for the inclusive bracket `[lo, hi]`:
/// zone maps give the first block whose `last_key` reaches `lo` and the
/// first whose `first_key` passes `hi`. Every block inside the range
/// intersects the bracket; no block outside it can hold a match. (The
/// pre-zone-map directory only knew `first_key`, so the start bound had
/// to back up one block and the end bound over-approximated.)
fn candidate_range(blocks: &[BlockMeta], lo: [u32; 3], hi: [u32; 3]) -> std::ops::Range<usize> {
    let start = blocks.partition_point(|b| b.last_key < lo);
    let end = blocks.partition_point(|b| b.first_key <= hi);
    start..end.max(start)
}

impl<B: PageBackend + Send + Sync> SegmentSource for Segment<B> {
    fn source_len(&self) -> usize {
        self.len()
    }

    fn scan(&self, pat: Pattern) -> Result<Vec<EncodedTriple>, StoreError> {
        let (order, _, _) = shape_key_bounds(pat);
        Ok(self
            .scan_keys(pat)?
            .iter()
            .map(|k| order.unkey(k))
            .collect())
    }

    fn scan_chunks(
        &self,
        pat: Pattern,
        f: &mut dyn FnMut(&[EncodedTriple]) -> bool,
    ) -> Result<bool, StoreError> {
        let (order, _, _) = shape_key_bounds(pat);
        let mut buf: Vec<EncodedTriple> = Vec::new();
        self.for_each_key_chunk(pat, &mut |keys| {
            buf.clear();
            buf.extend(keys.iter().map(|k| order.unkey(k)));
            f(&buf)
        })
    }

    fn estimate(&self, pat: Pattern) -> usize {
        self.candidate_count(pat).min(self.len())
    }

    fn source_stats(&self) -> StoreStats {
        StoreStats {
            indexed_triples: self.meta.triples as usize,
            distinct: self.meta.distinct.map(|d| d as usize),
        }
    }
}

/// An open segment directory: every manifest segment, behind one
/// [`SegmentSource`]. Scans k-way-merge the per-segment runs in key
/// order; segments descend from one deduplicating load (and compaction
/// preserves disjointness), so the merge's dedup is defensive only.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    segments: Vec<Segment<SegmentFileBackend>>,
    manifest: Manifest,
}

impl SegmentStore {
    /// Opens `dir`, returning the dictionary and the store. The manifest,
    /// dictionary and every segment footer are validated; any corruption
    /// surfaces as a typed error.
    pub fn open(dir: &Path) -> Result<(TermDict, SegmentStore), StoreError> {
        let io = |op: &'static str| {
            move |detail: String| StoreError::Io {
                op,
                detail: format!("{}: {detail}", dir.display()),
            }
        };
        let manifest = read_manifest(dir).map_err(io("read_manifest"))?;
        let dict =
            crate::dict::read_dict(&dir.join(crate::dict::DICT_FILE)).map_err(io("read_dict"))?;
        let mut segments = Vec::with_capacity(manifest.entries.len());
        for e in &manifest.entries {
            let seg = Segment::open(&dir.join(&e.file), DEFAULT_POOL_BLOCKS)?;
            if seg.len() as u64 != e.triples {
                return Err(StoreError::Io {
                    op: "open_segment",
                    detail: format!(
                        "{}: manifest says {} triples, footer says {}",
                        e.file,
                        e.triples,
                        seg.len()
                    ),
                });
            }
            segments.push(seg);
        }
        crate::metrics().segments_live.set(segments.len() as i64);
        Ok((
            dict,
            SegmentStore {
                dir: dir.to_path_buf(),
                segments,
                manifest,
            },
        ))
    }

    /// The directory this store was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest as read at open.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The open segments, in manifest order.
    pub fn segments(&self) -> &[Segment<SegmentFileBackend>] {
        &self.segments
    }

    /// Attaches, swaps, or detaches (`None`) the decoded-block cache on
    /// every open segment — the seam bench and tests use to run a
    /// cache-off oracle in the same process.
    pub fn set_block_cache(&mut self, cache: Option<Arc<BlockCache>>) {
        for s in &mut self.segments {
            s.set_block_cache(cache.clone());
        }
    }
}

/// K-way merge of per-segment sorted key runs, deduplicating.
fn merge_keys(mut runs: Vec<Vec<[u32; 3]>>) -> Vec<[u32; 3]> {
    runs.retain(|r| !r.is_empty());
    match runs.len() {
        0 => Vec::new(),
        1 => runs.pop().expect("one run"),
        _ => {
            let total = runs.iter().map(Vec::len).sum();
            let mut cursors = vec![0usize; runs.len()];
            let mut out: Vec<[u32; 3]> = Vec::with_capacity(total);
            loop {
                let mut best: Option<(usize, [u32; 3])> = None;
                for (i, run) in runs.iter().enumerate() {
                    if let Some(&k) = run.get(cursors[i]) {
                        if best.is_none_or(|(_, b)| k < b) {
                            best = Some((i, k));
                        }
                    }
                }
                let Some((i, k)) = best else { break };
                cursors[i] += 1;
                if out.last() != Some(&k) {
                    out.push(k);
                }
            }
            out
        }
    }
}

impl SegmentSource for SegmentStore {
    fn source_len(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    fn scan(&self, pat: Pattern) -> Result<Vec<EncodedTriple>, StoreError> {
        let (order, _, _) = shape_key_bounds(pat);
        let runs = self
            .segments
            .iter()
            .map(|s| s.scan_keys(pat))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(merge_keys(runs).iter().map(|k| order.unkey(k)).collect())
    }

    fn scan_chunks(
        &self,
        pat: Pattern,
        f: &mut dyn FnMut(&[EncodedTriple]) -> bool,
    ) -> Result<bool, StoreError> {
        match self.segments.len() {
            0 => Ok(true),
            // The common steady state (one compacted segment) streams
            // block by block; multi-segment directories need the k-way
            // merge, which the materializing default provides.
            1 => self.segments[0].scan_chunks(pat, f),
            _ => {
                let all = self.scan(pat)?;
                if all.is_empty() {
                    return Ok(true);
                }
                Ok(f(&all))
            }
        }
    }

    fn estimate(&self, pat: Pattern) -> usize {
        self.segments.iter().map(|s| s.estimate(pat)).sum()
    }

    fn source_stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            indexed_triples: 0,
            distinct: [0; 3],
        };
        for s in &self.segments {
            let ss = s.source_stats();
            stats.indexed_triples += ss.indexed_triples;
            // Distinct counts summed across segments: an upper bound, the
            // same estimate TripleStore::stats documents for layering.
            for (d, sd) in stats.distinct.iter_mut().zip(ss.distinct) {
                *d += sd;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::write_segment;
    use wodex_rdf::TermId;
    use wodex_store::TripleStore;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wodex_seg_store_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn triples() -> Vec<EncodedTriple> {
        let mut v = Vec::new();
        for s in 0..50u32 {
            v.push([s, 100, s % 7]);
            v.push([s, 101, 3]);
            if s % 3 == 0 {
                v.push([s, 102, s]);
            }
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    fn sorted_by(order: Order, ts: &[EncodedTriple]) -> Vec<[u32; 3]> {
        let mut v: Vec<[u32; 3]> = ts.iter().map(|t| order.key(t)).collect();
        v.sort_unstable();
        v
    }

    fn write_seg(path: &Path, ts: &[EncodedTriple], block_triples: usize) -> SegmentMeta {
        write_segment(
            path,
            block_triples,
            ts.iter().copied(),
            sorted_by(Order::Pos, ts),
            sorted_by(Order::Osp, ts),
        )
        .unwrap()
    }

    fn mem_store(ts: &[EncodedTriple]) -> TripleStore {
        let mut st = TripleStore::with_tail_limit(0);
        for &t in ts {
            st.insert_encoded(t);
        }
        st.merge_tail();
        st
    }

    fn patterns() -> Vec<Pattern> {
        let mut pats = Vec::new();
        for s in [None, Some(TermId(3)), Some(TermId(999))] {
            for p in [None, Some(TermId(100))] {
                for o in [None, Some(TermId(3))] {
                    pats.push(Pattern { s, p, o });
                }
            }
        }
        pats
    }

    #[test]
    fn segment_scans_agree_with_memstore_for_every_shape() {
        let ts = triples();
        let dir = tmpdir("agree");
        let path = dir.join("a.seg");
        write_seg(&path, &ts, 16); // tiny blocks: many directory entries
        let seg = Segment::open(&path, 8).unwrap();
        let st = mem_store(&ts);
        assert_eq!(seg.source_len(), st.len());
        for pat in patterns() {
            assert_eq!(seg.scan(pat).unwrap(), st.scan(pat).unwrap(), "{pat:?}");
            assert_eq!(seg.count(pat).unwrap(), st.count_pattern(pat), "{pat:?}");
            assert!(seg.estimate(pat) >= seg.count(pat).unwrap(), "{pat:?}");
            for position in 0..3 {
                assert_eq!(
                    seg.scan_sorted_by(pat, position).unwrap(),
                    st.match_pattern_sorted_by(pat, position),
                    "sorted_by {pat:?}/{position}"
                );
            }
        }
        assert_eq!(seg.source_stats(), st.stats());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scans_touch_only_candidate_blocks() {
        let ts: Vec<EncodedTriple> = (0..10_000u32).map(|i| [i / 4, i % 4, i]).collect();
        let dir = tmpdir("candidate");
        let path = dir.join("big.seg");
        write_seg(&path, &ts, 256);
        let seg = Segment::open(&path, 128).unwrap();
        let pat = Pattern::any().with_s(TermId(1234));
        let got = seg.scan(pat).unwrap();
        assert_eq!(got.len(), 4);
        let reads = seg.backend().reads();
        assert!(
            reads <= 2,
            "a 4-triple scan should touch ≤2 blocks, read {reads}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn candidate_ranges_are_exact_at_block_boundaries() {
        // Property test over the directory formulas: for patterns whose
        // key equals a block's first or last key (plus misses, gaps and
        // wildcards), the candidate range must include every block
        // holding a match and nothing provably empty — and the scan
        // must agree with a brute-force filter.
        let mut ts: Vec<EncodedTriple> = (0..900u32)
            .map(|i| [i / 9 * 2, i % 5, i % 11]) // gaps in the subject space
            .collect();
        ts.sort_unstable();
        ts.dedup();
        let dir = tmpdir("boundary");
        let path = dir.join("b.seg");
        let meta = write_seg(&path, &ts, 8); // tiny blocks: many boundaries
        let mut seg = Segment::open(&path, 8).unwrap();
        seg.set_block_cache(None);
        let st = mem_store(&ts);
        let mut probes: Vec<u32> = Vec::new();
        for b in &meta.sections[0] {
            probes.extend([b.first_key[0], b.last_key[0]]);
        }
        probes.extend([0, 1, u32::MAX]); // below, between, above everything
        probes.sort_unstable();
        probes.dedup();
        for sid in probes {
            let pat = Pattern::any().with_s(TermId(sid));
            assert_eq!(seg.scan(pat).unwrap(), st.scan(pat).unwrap(), "s={sid}");
            let (_, lo, hi) = shape_key_bounds(pat);
            let blocks = &seg.meta().sections[0];
            let range = candidate_range(blocks, lo, hi);
            let mut at = 0usize;
            for (i, b) in blocks.iter().enumerate() {
                let slice = &ts[at..at + b.count as usize];
                at += b.count as usize;
                let holds_match = slice.iter().any(|k| *k >= lo && *k <= hi);
                if holds_match {
                    assert!(range.contains(&i), "s={sid}: block {i} holds a match");
                    assert!(!b.zone_prunes(lo, hi), "s={sid}: sound pruning");
                } else if range.contains(&i) {
                    // Exactness: an in-range block without a match must
                    // at least bracket the probe (an interior gap).
                    assert!(
                        b.first_key <= hi && b.last_key >= lo,
                        "s={sid}: block {i} is provably empty yet in range"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_block_sections_and_empty_segments_scan_cleanly() {
        let dir = tmpdir("tiny");
        // One triple → every section is a single block; probe its exact
        // key, both boundary sides, and a miss.
        let one = vec![[5u32, 6, 7]];
        let path = dir.join("one.seg");
        write_seg(&path, &one, 64);
        let seg = Segment::open(&path, 4).unwrap();
        for (pat, want) in [
            (Pattern::any().with_s(TermId(5)), 1),
            (Pattern::any().with_s(TermId(4)), 0),
            (Pattern::any().with_s(TermId(6)), 0),
            (Pattern::any(), 1),
        ] {
            assert_eq!(seg.scan(pat).unwrap().len(), want, "{pat:?}");
        }
        // Zero triples → empty directory in every section.
        let empty: Vec<EncodedTriple> = Vec::new();
        let path = dir.join("empty.seg");
        write_seg(&path, &empty, 64);
        let seg = Segment::open(&path, 4).unwrap();
        assert!(seg.is_empty());
        assert!(seg.scan(Pattern::any()).unwrap().is_empty());
        assert!(seg
            .scan(Pattern::any().with_s(TermId(1)))
            .unwrap()
            .is_empty());
        assert_eq!(seg.estimate(Pattern::any()), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_rescan_reads_no_new_blocks_and_answers_identically() {
        let ts: Vec<EncodedTriple> = (0..5000u32).map(|i| [i / 5, i % 5, i]).collect();
        let dir = tmpdir("cachehot");
        let path = dir.join("hot.seg");
        write_seg(&path, &ts, 128);
        let mut seg = Segment::open(&path, 4).unwrap(); // pool smaller than the scan
        let cache = Arc::new(BlockCache::new(8 << 20));
        seg.set_block_cache(Some(Arc::clone(&cache)));
        let pats = [
            Pattern::any(),
            Pattern::any().with_s(TermId(123)),
            Pattern::any().with_p(TermId(3)),
        ];
        let cold: Vec<_> = pats.iter().map(|&p| seg.scan(p).unwrap()).collect();
        let reads_after_cold = seg.backend().reads();
        let warm: Vec<_> = pats.iter().map(|&p| seg.scan(p).unwrap()).collect();
        assert_eq!(cold, warm, "cached answers are bit-identical");
        assert_eq!(
            seg.backend().reads(),
            reads_after_cold,
            "warm scans decode entirely from the cache"
        );
        assert!(cache.stats().hits.load(Ordering::Relaxed) > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_chunks_concatenation_equals_scan_and_stops_early() {
        let mut ts: Vec<EncodedTriple> = (0..3000u32).map(|i| [i / 3, i % 7, i]).collect();
        ts.sort_unstable();
        ts.dedup();
        let dir = tmpdir("chunks");
        let path = dir.join("c.seg");
        write_seg(&path, &ts, 64);
        let seg = Segment::open(&path, 16).unwrap();
        for pat in [
            Pattern::any(),
            Pattern::any().with_s(TermId(100)),
            Pattern::any().with_p(TermId(2)),
            Pattern::any().with_o(TermId(999_999)),
        ] {
            let mut streamed = Vec::new();
            let mut chunks = 0usize;
            let done = seg
                .scan_chunks(pat, &mut |c| {
                    chunks += 1;
                    streamed.extend_from_slice(c);
                    true
                })
                .unwrap();
            assert!(done);
            assert_eq!(streamed, seg.scan(pat).unwrap(), "{pat:?}");
            if streamed.len() > 200 {
                assert!(chunks > 1, "{pat:?}: large scans must stream in chunks");
            }
        }
        // Early stop: the first chunk arrives, then the consumer quits.
        let mut calls = 0usize;
        let done = seg
            .scan_chunks(Pattern::any(), &mut |_| {
                calls += 1;
                false
            })
            .unwrap();
        assert!(!done);
        assert_eq!(calls, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_block_read_is_a_typed_error_not_a_panic() {
        let ts = triples();
        let dir = tmpdir("corrupt");
        let path = dir.join("c.seg");
        let meta = write_seg(&path, &ts, 16);
        // Flip a payload bit inside the first SPO block on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let b = meta.sections[0][0];
        bytes[b.offset as usize + format::BLOCK_HEADER + 1] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let seg = Segment::open(&path, 8).unwrap(); // footer is intact
        let err = seg.scan(Pattern::any()).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Corrupt { .. } | StoreError::RetriesExhausted { .. }
            ),
            "unexpected error: {err:?}"
        );
        assert!(crate::metrics().checksum_failures.get() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_open_scans_across_disjoint_segments() {
        let ts = triples();
        let (left, right) = ts.split_at(ts.len() / 2);
        let dir = tmpdir("multi");
        write_seg(&dir.join("a.seg"), left, 16);
        write_seg(&dir.join("b.seg"), right, 16);
        let mut dict = TermDict::new();
        for i in 0..110 {
            dict.intern_iri(&format!("http://e.org/{i}"));
        }
        crate::dict::write_dict(&dict, &dir.join(crate::dict::DICT_FILE)).unwrap();
        write_manifest(
            &dir,
            &Manifest {
                entries: vec![
                    ManifestEntry {
                        file: "a.seg".into(),
                        level: 0,
                        triples: left.len() as u64,
                    },
                    ManifestEntry {
                        file: "b.seg".into(),
                        level: 0,
                        triples: right.len() as u64,
                    },
                ],
            },
        )
        .unwrap();
        let (dict_back, store) = SegmentStore::open(&dir).unwrap();
        assert_eq!(dict_back.len(), dict.len());
        assert_eq!(store.source_len(), ts.len());
        let st = mem_store(&ts);
        for pat in patterns() {
            assert_eq!(store.scan(pat).unwrap(), st.scan(pat).unwrap(), "{pat:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip_and_bad_headers() {
        let dir = tmpdir("manifest");
        let m = Manifest {
            entries: vec![ManifestEntry {
                file: "x.seg".into(),
                level: 2,
                triples: 7,
            }],
        };
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), m);
        std::fs::write(dir.join(MANIFEST_FILE), "not a manifest\n").unwrap();
        assert!(read_manifest(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_footer_disagreement_is_rejected() {
        let ts = triples();
        let dir = tmpdir("disagree");
        write_seg(&dir.join("a.seg"), &ts, 16);
        crate::dict::write_dict(&TermDict::new(), &dir.join(crate::dict::DICT_FILE)).unwrap();
        write_manifest(
            &dir,
            &Manifest {
                entries: vec![ManifestEntry {
                    file: "a.seg".into(),
                    level: 0,
                    triples: ts.len() as u64 + 5,
                }],
            },
        )
        .unwrap();
        assert!(SegmentStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
