//! Streaming bulk loader: N-Triples → segment directory, in bounded
//! memory.
//!
//! The classic external merge sort, specialized to triple keys:
//!
//! 1. **Parse + intern**: each line is parsed and its terms interned into
//!    the dictionary (the one structure that stays in RAM — the HDT
//!    trade-off documented in [`crate::dict`]).
//! 2. **Sorted runs**: encoded keys accumulate in a buffer charged
//!    against a [`wodex_resilience::Budget`] memory cap; when the cap is
//!    hit the buffer is sorted, deduplicated and spilled to a raw run
//!    file. The dump itself never materializes in RAM.
//! 3. **K-way merge**: the runs merge into one deduplicated SPO stream,
//!    range-partitioned into segments of at most
//!    [`LoadConfig::segment_max_triples`] — so the segments are disjoint
//!    and their counts sum to the load's unique-triple count.
//! 4. **Per-segment sections**: while a segment's SPO section streams
//!    out, its POS and OSP keys spill through their own capped runs,
//!    then merge into the remaining two sections.
//!
//! Every artifact (runs, segments, dictionary, manifest) is written to a
//! temporary name and renamed; a crash mid-load leaves no partial
//! segment visible.

use crate::format::{SegmentWriter, DEFAULT_BLOCK_TRIPLES};
use crate::store::{write_manifest, Manifest, ManifestEntry};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use wodex_rdf::ntriples::parse_line;
use wodex_rdf::TermDict;
use wodex_resilience::Budget;
use wodex_store::encoded::TRIPLE_BYTES;
use wodex_store::index::Order;

/// Tuning knobs for [`load_ntriples`].
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Memory cap in bytes for each sort buffer (the SPO run buffer
    /// during parse; the POS/OSP buffers during segment build). Charged
    /// through a [`Budget`]; when exceeded, the buffer spills to disk.
    pub mem_cap_bytes: u64,
    /// Keys per compressed block.
    pub block_triples: usize,
    /// Maximum triples per produced segment; the merged stream is
    /// range-partitioned into this many-sized disjoint segments.
    pub segment_max_triples: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            mem_cap_bytes: 64 * 1024 * 1024,
            block_triples: DEFAULT_BLOCK_TRIPLES,
            segment_max_triples: 4_000_000,
        }
    }
}

/// What a load did — printed by `wodex load` and asserted by tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Triple lines parsed (before deduplication).
    pub parsed: usize,
    /// Unique triples written.
    pub triples: usize,
    /// Distinct terms interned.
    pub terms: usize,
    /// Sorted runs spilled to disk across all sort streams; ≥ 2 proves
    /// the sort ran externally.
    pub runs_spilled: usize,
    /// Segment files produced.
    pub segments: usize,
    /// N-Triples bytes consumed.
    pub bytes_read: u64,
    /// Bytes of segment files written (all three sections + footers).
    pub segment_bytes: u64,
    /// Bytes of the dictionary sidecar.
    pub dict_bytes: u64,
}

/// A capped sort buffer that spills sorted, deduplicated raw-key runs.
struct RunSpiller {
    dir: PathBuf,
    prefix: String,
    buf: Vec<[u32; 3]>,
    budget: Budget,
    cap: u64,
    runs: Vec<PathBuf>,
    spills: usize,
}

impl RunSpiller {
    fn new(dir: &Path, prefix: &str, cap: u64) -> RunSpiller {
        RunSpiller {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            buf: Vec::new(),
            budget: Budget::unlimited().with_memory_cap(cap),
            cap,
            runs: Vec::new(),
            spills: 0,
        }
    }

    fn push(&mut self, key: [u32; 3]) -> std::io::Result<()> {
        self.buf.push(key);
        self.budget.charge_bytes(TRIPLE_BYTES as u64);
        if self.budget.exceeded().is_some() {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = self
            .dir
            .join(format!("{}_{:06}.run", self.prefix, self.spills));
        let mut w = BufWriter::new(std::fs::File::create(&path)?);
        for k in &self.buf {
            for c in k {
                w.write_all(&c.to_le_bytes())?;
            }
        }
        w.flush()?;
        self.runs.push(path);
        self.spills += 1;
        self.buf.clear();
        // A fresh budget for the next run: the spilled bytes are gone.
        self.budget = Budget::unlimited().with_memory_cap(self.cap);
        crate::metrics().runs_spilled.inc();
        Ok(())
    }

    /// Number of runs spilled to disk so far.
    fn spills(&self) -> usize {
        self.spills
    }

    /// Deletes all spilled runs without merging them.
    fn abort(self) {
        for p in &self.runs {
            std::fs::remove_file(p).ok();
        }
    }

    /// Consumes the spiller into a merged, deduplicated sorted stream.
    /// With no spilled runs the buffer sorts in place and no file I/O
    /// happens at all.
    fn into_merged(mut self) -> std::io::Result<MergedKeys> {
        if self.runs.is_empty() {
            self.buf.sort_unstable();
            self.buf.dedup();
            return Ok(MergedKeys {
                mem: self.buf.into_iter(),
                readers: Vec::new(),
                paths: Vec::new(),
                last: None,
            });
        }
        self.spill()?;
        let mut readers = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            let mut r = RunReader {
                reader: BufReader::new(std::fs::File::open(path)?),
                head: None,
            };
            r.advance()?;
            readers.push(r);
        }
        Ok(MergedKeys {
            mem: Vec::new().into_iter(),
            readers,
            paths: self.runs,
            last: None,
        })
    }
}

struct RunReader {
    reader: BufReader<std::fs::File>,
    head: Option<[u32; 3]>,
}

impl RunReader {
    fn advance(&mut self) -> std::io::Result<()> {
        let mut bytes = [0u8; TRIPLE_BYTES];
        match self.reader.read_exact(&mut bytes) {
            Ok(()) => {
                let c = |i: usize| {
                    u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"))
                };
                self.head = Some([c(0), c(1), c(2)]);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                self.head = None;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

/// K-way merge over spilled runs (plus an optional in-memory run),
/// deduplicating across runs. Run files are deleted on drop.
struct MergedKeys {
    mem: std::vec::IntoIter<[u32; 3]>,
    readers: Vec<RunReader>,
    paths: Vec<PathBuf>,
    last: Option<[u32; 3]>,
}

impl MergedKeys {
    fn next_key(&mut self) -> std::io::Result<Option<[u32; 3]>> {
        loop {
            if self.readers.is_empty() {
                // Pure in-memory mode: already sorted and deduplicated.
                return Ok(self.mem.next());
            }
            let mut best: Option<(usize, [u32; 3])> = None;
            for (i, r) in self.readers.iter().enumerate() {
                if let Some(k) = r.head {
                    if best.is_none_or(|(_, b)| k < b) {
                        best = Some((i, k));
                    }
                }
            }
            let Some((i, k)) = best else { return Ok(None) };
            self.readers[i].advance()?;
            if self.last != Some(k) {
                self.last = Some(k);
                return Ok(Some(k));
            }
        }
    }
}

impl Drop for MergedKeys {
    fn drop(&mut self) {
        for p in &self.paths {
            std::fs::remove_file(p).ok();
        }
    }
}

/// Builds one segment while its SPO keys stream through: the SPO section
/// writes directly, POS/OSP keys spill through their own capped runs and
/// merge into the remaining sections at finish. Shared with the
/// compactor, whose merge output streams through the same path.
pub(crate) struct SegmentBuilder {
    writer: SegmentWriter,
    pos: RunSpiller,
    osp: RunSpiller,
    count: u64,
}

impl SegmentBuilder {
    /// Starts a segment at `seg_path`, spilling section runs into
    /// `run_dir` under `run_prefix`.
    pub(crate) fn new(
        seg_path: &Path,
        run_dir: &Path,
        run_prefix: &str,
        block_triples: usize,
        mem_cap_bytes: u64,
    ) -> std::io::Result<SegmentBuilder> {
        Ok(SegmentBuilder {
            writer: SegmentWriter::create(seg_path, block_triples)?,
            pos: RunSpiller::new(run_dir, &format!("{run_prefix}_pos"), mem_cap_bytes),
            osp: RunSpiller::new(run_dir, &format!("{run_prefix}_osp"), mem_cap_bytes),
            count: 0,
        })
    }

    pub(crate) fn push(&mut self, spo: [u32; 3]) -> std::io::Result<()> {
        self.writer.push_key(spo)?;
        self.pos.push(Order::Pos.key(&spo))?;
        self.osp.push(Order::Osp.key(&spo))?;
        self.count += 1;
        Ok(())
    }

    /// Abandons the segment: the `*.tmp` file and every spilled run are
    /// deleted; the final path was never created.
    pub(crate) fn abort(self) -> std::io::Result<()> {
        self.pos.abort();
        self.osp.abort();
        self.writer.abort()
    }

    /// Returns `(triples, spilled runs)` of the sealed segment.
    pub(crate) fn finish(mut self) -> std::io::Result<(u64, usize)> {
        let spills = self.pos.spills() + self.osp.spills();
        self.writer.next_section()?;
        let mut pos = self.pos.into_merged()?;
        while let Some(k) = pos.next_key()? {
            self.writer.push_key(k)?;
        }
        drop(pos);
        self.writer.next_section()?;
        let mut osp = self.osp.into_merged()?;
        while let Some(k) = osp.next_key()? {
            self.writer.push_key(k)?;
        }
        drop(osp);
        let meta = self.writer.finish()?;
        debug_assert_eq!(meta.triples, self.count);
        Ok((self.count, spills))
    }
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Streams `input` (N-Triples) into a fresh segment directory at
/// `out_dir`. The directory must not already contain a store — loads
/// are whole-dataset, matching the immutable-segment model.
pub fn load_ntriples(
    input: impl BufRead,
    out_dir: &Path,
    cfg: &LoadConfig,
) -> std::io::Result<LoadReport> {
    std::fs::create_dir_all(out_dir)?;
    if out_dir.join(crate::store::MANIFEST_FILE).exists() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            format!("{} already holds a segment store", out_dir.display()),
        ));
    }
    let mut report = LoadReport::default();
    let mut dict = TermDict::new();
    let mut spo = RunSpiller::new(out_dir, "load_spo", cfg.mem_cap_bytes);

    // Phase 1+2: parse, intern, spill sorted runs.
    let metrics = crate::metrics();
    for (no, line) in input.lines().enumerate() {
        let line = line?;
        report.bytes_read += line.len() as u64 + 1;
        let triple =
            parse_line(&line, no + 1).map_err(|e| invalid(format!("line {}: {e}", no + 1)))?;
        let Some(t) = triple else { continue };
        let key = [
            dict.intern(t.subject).0,
            dict.intern(t.predicate).0,
            dict.intern(t.object).0,
        ];
        spo.push(key)?;
        report.parsed += 1;
        metrics.triples_loaded.inc();
    }
    report.terms = dict.len();

    // The dictionary is complete once parsing ends; persist it first so
    // a crash during segment build leaves no manifest (and thus no
    // store) but also no lost work to diagnose.
    crate::dict::write_dict(&dict, &out_dir.join(crate::dict::DICT_FILE))?;
    report.dict_bytes = std::fs::metadata(out_dir.join(crate::dict::DICT_FILE))?.len();

    // Phase 3+4: merge runs, range-partition into segments.
    report.runs_spilled += spo.spills();
    let mut merged = spo.into_merged()?;
    report.runs_spilled = report.runs_spilled.max(merged.paths.len());
    let mut entries: Vec<ManifestEntry> = Vec::new();
    let mut builder: Option<SegmentBuilder> = None;
    let mut in_segment = 0usize;
    while let Some(k) = merged.next_key()? {
        if builder.is_none() {
            let seq = entries.len();
            builder = Some(SegmentBuilder::new(
                &out_dir.join(format!("seg_{seq:06}.seg")),
                out_dir,
                &format!("seg_{seq:06}"),
                cfg.block_triples,
                cfg.mem_cap_bytes,
            )?);
            in_segment = 0;
        }
        let b = builder.as_mut().expect("just created");
        b.push(k)?;
        in_segment += 1;
        report.triples += 1;
        if in_segment >= cfg.segment_max_triples {
            let seq = entries.len();
            let (triples, spills) = builder.take().expect("active builder").finish()?;
            report.runs_spilled += spills;
            entries.push(ManifestEntry {
                file: format!("seg_{seq:06}.seg"),
                level: 0,
                triples,
            });
        }
    }
    drop(merged);
    if let Some(b) = builder {
        let seq = entries.len();
        let (triples, spills) = b.finish()?;
        report.runs_spilled += spills;
        entries.push(ManifestEntry {
            file: format!("seg_{seq:06}.seg"),
            level: 0,
            triples,
        });
    }
    report.segments = entries.len();
    for e in &entries {
        report.segment_bytes += std::fs::metadata(out_dir.join(&e.file))?.len();
    }

    // The manifest lands last: until this rename the directory is not a
    // store, so a crash anywhere above is invisible to readers.
    write_manifest(out_dir, &Manifest { entries })?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SegmentStore;
    use std::io::Cursor;
    use wodex_store::{Pattern, SegmentSource};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wodex_seg_load_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn synth_nt(triples: usize) -> String {
        let mut out = String::new();
        for i in 0..triples {
            out.push_str(&format!(
                "<http://e.org/s/{}> <http://e.org/p/{}> <http://e.org/o/{}> .\n",
                i % 997,
                i % 13,
                i % 401
            ));
        }
        out
    }

    #[test]
    fn load_roundtrips_through_the_segment_store() {
        let nt = synth_nt(5000);
        let dir = tmpdir("roundtrip");
        let report = load_ntriples(Cursor::new(&nt), &dir, &LoadConfig::default()).unwrap();
        assert_eq!(report.parsed, 5000);
        assert!(report.triples <= report.parsed, "dedup only removes");
        let (dict, store) = SegmentStore::open(&dir).unwrap();
        assert_eq!(dict.len(), report.terms);
        assert_eq!(store.source_len(), report.triples);
        // Every input line is found again by a fully bound scan.
        let p3 = dict.id_of_iri("http://e.org/p/3").unwrap();
        let hits = store.scan(Pattern::any().with_p(p3)).unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|t| dict
            .term(wodex_rdf::TermId(t[1]))
            .to_string()
            .contains("/p/3")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_mem_cap_spills_runs_and_still_loads_correctly() {
        let nt = synth_nt(20_000);
        let dir = tmpdir("spill");
        let cfg = LoadConfig {
            mem_cap_bytes: 8 * 1024, // ~680 keys per run
            ..LoadConfig::default()
        };
        let report = load_ntriples(Cursor::new(&nt), &dir, &cfg).unwrap();
        assert!(
            report.runs_spilled >= 2,
            "a 20k-triple load under an 8 KiB cap must sort externally: {report:?}"
        );
        // Same data through an unconstrained load gives identical scans.
        let dir2 = tmpdir("nospill");
        let r2 = load_ntriples(Cursor::new(&nt), &dir2, &LoadConfig::default()).unwrap();
        assert_eq!(r2.runs_spilled, 0, "64 MiB cap never spills here");
        assert_eq!(report.triples, r2.triples);
        let (_, a) = SegmentStore::open(&dir).unwrap();
        let (_, b) = SegmentStore::open(&dir2).unwrap();
        assert_eq!(
            a.scan(Pattern::any()).unwrap(),
            b.scan(Pattern::any()).unwrap()
        );
        // No run litter left behind.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(!name.ends_with(".run"), "leftover run file {name}");
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn segment_max_partitions_into_disjoint_segments() {
        let nt = synth_nt(9000);
        let dir = tmpdir("partition");
        let cfg = LoadConfig {
            segment_max_triples: 1000,
            ..LoadConfig::default()
        };
        let report = load_ntriples(Cursor::new(&nt), &dir, &cfg).unwrap();
        assert!(report.segments >= 2, "{report:?}");
        let (_, store) = SegmentStore::open(&dir).unwrap();
        assert_eq!(store.source_len(), report.triples);
        let all = store.scan(Pattern::any()).unwrap();
        assert_eq!(all.len(), report.triples, "disjoint segments, no dupes");
        assert!(all.windows(2).all(|w| w[0] < w[1]), "globally sorted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_errors_carry_the_line_number() {
        let dir = tmpdir("badline");
        let nt = "<http://e.org/a> <http://e.org/b> <http://e.org/c> .\nnot a triple\n";
        let err = load_ntriples(Cursor::new(nt), &dir, &LoadConfig::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loading_over_an_existing_store_is_refused() {
        let dir = tmpdir("refuse");
        load_ntriples(Cursor::new(synth_nt(10)), &dir, &LoadConfig::default()).unwrap();
        let err =
            load_ntriples(Cursor::new(synth_nt(10)), &dir, &LoadConfig::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compression_beats_raw_ntriples() {
        let nt = synth_nt(50_000);
        let dir = tmpdir("ratio");
        let report = load_ntriples(Cursor::new(&nt), &dir, &LoadConfig::default()).unwrap();
        let stored = report.segment_bytes + report.dict_bytes;
        assert!(
            stored * 2 <= report.bytes_read,
            "segments + dict should be ≤ half the N-Triples bytes: {stored} vs {}",
            report.bytes_read
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
