//! Delta write-ahead log and delta→base compaction.
//!
//! The segment store's files are immutable — that is what makes PR 8's
//! read path safe under compaction and crashes. Live writes therefore
//! need somewhere *else* to become durable: this module appends each
//! committed [`DeltaFrame`] to a checksummed write-ahead log
//! (`deltas.wal`) in the segment directory, reusing the segment block
//! codec (LEB128 delta-compressed key runs, the PR 2 64-bit page
//! checksum) one frame at a time. The [`LiveStore`] WAL seam calls
//! [`DeltaLog::append`] *before* publishing a snapshot, so the log never
//! lags the in-memory state and a crash loses at most an unpublished
//! commit — readers can never have observed it.
//!
//! Recovery is torn-tail truncation, like the paged store: frames are
//! `[checksum u64][len u32][payload]`; replay stops at the first frame
//! that fails bounds or checksum validation and the next append
//! overwrites the torn bytes.
//!
//! [`compact_deltas`] folds the log into the base: it replays the WAL
//! over the open [`SegmentStore`], writes one merged segment + dictionary
//! (both tmp→fsync→rename, like every other wodex-seg artifact), commits
//! by atomically rewriting the `MANIFEST`, then deletes the old segments
//! and truncates the log. A crash or injected fault at *any* step leaves
//! a directory whose reopen-and-replay equals the pre-compaction logical
//! state: before the manifest rename nothing changed; after it, frame
//! replay is idempotent (re-inserting a present triple and re-deleting an
//! absent one are no-ops), so the crash window between commit and log
//! truncation is harmless.
//!
//! Compaction requires **exclusive access** to the directory: it
//! truncates `deltas.wal` through its own handle, so a concurrently
//! open [`DeltaLog`] appender (whose committed offset would then point
//! past EOF) must be dropped before calling [`compact_deltas`] and
//! reopened afterwards. Nothing in the workspace holds a log open
//! across a compaction today — the serving layer's live store is
//! in-memory and the background compactor merges base segments only —
//! but the requirement is a caller contract, not an enforced lock.
//!
//! [`LiveStore`]: wodex_store::mvcc::LiveStore

use crate::store::{write_manifest, Manifest, ManifestEntry, SegmentStore};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use wodex_rdf::{ntriples, TermDict};
use wodex_resilience::{page_checksum, StoreError};
use wodex_store::encoded::{decode_key_run, encode_key_run, read_varint, write_varint};
use wodex_store::index::Order;
use wodex_store::mvcc::{DeltaFrame, WalSink};
use wodex_store::{SegmentSource, TripleStore};

/// Write-ahead log file name inside a segment directory.
pub const DELTA_FILE: &str = "deltas.wal";

/// Frame header: 8-byte checksum + 4-byte payload length.
const FRAME_HEADER: usize = 12;

/// A seeded, per-operation-deterministic fault plan for chaos tests:
/// operation `i` faults iff `hash(seed, i)` lands under `rate`.
#[derive(Debug, Clone, Copy)]
pub struct DeltaFaultPlan {
    /// Fault schedule seed.
    pub seed: u64,
    /// Fault probability per operation, 0.0..=1.0.
    pub rate: f64,
}

/// What an operation under a [`DeltaFaultPlan`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    /// Fail before any byte is written.
    Transient,
    /// Write a prefix of the bytes, then fail.
    Torn,
}

impl DeltaFaultPlan {
    fn roll(&self, index: u64) -> Fault {
        // splitmix64 over (seed, index): deterministic per schedule.
        let mut z = self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.rate {
            Fault::None
        } else if z & 1 == 0 {
            Fault::Transient
        } else {
            Fault::Torn
        }
    }
}

/// Serializes one frame: `[checksum u64][len u32][payload]` with payload
/// `revision, new_terms (length-prefixed N-Triples spellings), inserts
/// and deletes as sorted delta-compressed key runs`.
fn encode_frame(frame: &DeltaFrame) -> Vec<u8> {
    let mut payload = Vec::new();
    write_varint(&mut payload, frame.revision);
    write_varint(&mut payload, frame.new_terms.len() as u64);
    for term in &frame.new_terms {
        let text = term.to_string();
        write_varint(&mut payload, text.len() as u64);
        payload.extend_from_slice(text.as_bytes());
    }
    for list in [&frame.inserts, &frame.deletes] {
        let mut keys = list.clone();
        keys.sort_unstable();
        keys.dedup();
        write_varint(&mut payload, keys.len() as u64);
        encode_key_run(&keys, &mut payload);
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&page_checksum(&payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes the frame at `*pos`, advancing past it. `None` on a torn or
/// corrupt frame — the caller truncates there.
fn decode_frame(data: &[u8], pos: &mut usize) -> Option<DeltaFrame> {
    let start = *pos;
    if data.len() - start < FRAME_HEADER {
        return None;
    }
    let checksum = u64::from_le_bytes(data[start..start + 8].try_into().ok()?);
    let len = u32::from_le_bytes(data[start + 8..start + FRAME_HEADER].try_into().ok()?) as usize;
    let body_start = start + FRAME_HEADER;
    let payload = data.get(body_start..body_start + len)?;
    if page_checksum(payload) != checksum {
        return None;
    }
    let mut p = 0usize;
    let revision = read_varint(payload, &mut p)?;
    let n_terms = read_varint(payload, &mut p)? as usize;
    let mut new_terms = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        let tlen = read_varint(payload, &mut p)? as usize;
        let text = std::str::from_utf8(payload.get(p..p + tlen)?).ok()?;
        p += tlen;
        new_terms.push(ntriples::parse_term(text).ok()?);
    }
    let mut runs = [Vec::new(), Vec::new()];
    for run in &mut runs {
        let count = read_varint(payload, &mut p)? as usize;
        decode_key_run(payload, &mut p, count, run)?;
    }
    let [inserts, deletes] = runs;
    *pos = body_start + len;
    Some(DeltaFrame {
        revision,
        inserts,
        deletes,
        new_terms,
    })
}

/// The append-only delta log of one segment directory.
#[derive(Debug)]
pub struct DeltaLog {
    file: std::fs::File,
    /// Byte offset of the end of the last durable frame. Appends always
    /// start here, so a torn tail is overwritten, never extended.
    committed: u64,
    fault: Option<DeltaFaultPlan>,
    appends: u64,
}

impl DeltaLog {
    /// Opens (creating if absent) `dir/deltas.wal`, replaying every
    /// intact frame and truncating any torn tail.
    pub fn open(dir: &Path) -> Result<(Vec<DeltaFrame>, DeltaLog), StoreError> {
        let path = dir.join(DELTA_FILE);
        let io = |detail: String| StoreError::Io {
            op: "delta_open",
            detail: format!("{}: {detail}", path.display()),
        };
        let data = match std::fs::read(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io(e.to_string())),
        };
        let mut frames = Vec::new();
        let mut pos = 0usize;
        while let Some(f) = decode_frame(&data, &mut pos) {
            frames.push(f);
        }
        if pos < data.len() {
            crate::metrics().delta_torn_tails.inc();
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io(e.to_string()))?;
        file.set_len(pos as u64).map_err(|e| io(e.to_string()))?;
        crate::metrics()
            .delta_frames_replayed
            .add(frames.len() as u64);
        Ok((
            frames,
            DeltaLog {
                file,
                committed: pos as u64,
                fault: None,
                appends: 0,
            },
        ))
    }

    /// Installs a fault schedule (chaos tests only).
    pub fn with_fault(mut self, plan: DeltaFaultPlan) -> DeltaLog {
        self.fault = Some(plan);
        self
    }

    /// Durable bytes in the log.
    pub fn committed_bytes(&self) -> u64 {
        self.committed
    }

    /// Appends one frame durably. On any error — real or injected — the
    /// log's committed offset does not move, so the failed bytes are
    /// overwritten by the next append and recovery never replays them.
    pub fn append(&mut self, frame: &DeltaFrame) -> Result<(), StoreError> {
        let bytes = encode_frame(frame);
        self.appends += 1;
        if let Some(plan) = self.fault {
            match plan.roll(self.appends) {
                Fault::None => {}
                Fault::Transient => {
                    return Err(StoreError::Transient {
                        op: "delta_append",
                        detail: "injected fault before write".into(),
                    });
                }
                Fault::Torn => {
                    // A torn write: half a frame lands on disk. It fails
                    // checksum validation at replay and is overwritten by
                    // the next append.
                    let half = &bytes[..bytes.len() / 2];
                    self.write_at(self.committed, half)?;
                    return Err(StoreError::Io {
                        op: "delta_append",
                        detail: "injected torn write".into(),
                    });
                }
            }
        }
        self.write_at(self.committed, &bytes)?;
        self.file.sync_data().map_err(|e| StoreError::Io {
            op: "delta_append",
            detail: e.to_string(),
        })?;
        self.committed += bytes.len() as u64;
        crate::metrics().delta_appends.inc();
        Ok(())
    }

    fn write_at(&mut self, offset: u64, bytes: &[u8]) -> Result<(), StoreError> {
        let io = |e: std::io::Error| StoreError::Io {
            op: "delta_append",
            detail: e.to_string(),
        };
        self.file.seek(SeekFrom::Start(offset)).map_err(io)?;
        self.file.write_all(bytes).map_err(io)?;
        self.file.flush().map_err(io)?;
        Ok(())
    }
}

/// Adapts a shared [`DeltaLog`] into a [`LiveStore`] write-ahead sink.
///
/// [`LiveStore`]: wodex_store::mvcc::LiveStore
pub fn wal_sink(log: Arc<Mutex<DeltaLog>>) -> WalSink {
    Box::new(move |frame| {
        log.lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(frame)
    })
}

/// Rebuilds live state from durable parts: the base under a
/// [`TripleStore::with_base`] overlay with every frame applied in
/// revision order (deletes before inserts within a frame, matching
/// commit semantics). Returns the store and the highest replayed
/// revision. Replay is idempotent: frames already folded into the base
/// change nothing.
pub fn replay(
    mut dict: TermDict,
    base: Arc<dyn SegmentSource>,
    frames: &[DeltaFrame],
) -> (TripleStore, u64) {
    for f in frames {
        for t in &f.new_terms {
            dict.intern(t.clone());
        }
    }
    let mut store = TripleStore::with_base(dict, base);
    for f in frames {
        for &e in &f.deletes {
            store.remove_encoded(e);
        }
        for &e in &f.inserts {
            store.insert_encoded(e);
        }
    }
    (store, frames.last().map_or(0, |f| f.revision))
}

/// The result of a successful [`compact_deltas`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactDeltasOutcome {
    /// WAL frames folded into the base.
    pub frames_folded: usize,
    /// Triples in the merged segment.
    pub triples: usize,
    /// The merged segment's file name.
    pub segment: String,
}

/// Picks a merged-segment name that can never collide with a file the
/// current (or any earlier) manifest points at: one past the highest
/// `delta-N.seg` generation present in the manifest *or* on disk. WAL
/// revisions are useless for naming — they restart at 1 after every
/// reopen, so a commit-then-compact cycle after each restart would keep
/// producing the same name, and the rename + old-file cleanup would
/// destroy the segment the manifest had just committed.
fn next_delta_seg_name(dir: &Path, manifest: &Manifest) -> String {
    let parse = |name: &str| -> Option<u64> {
        name.strip_prefix("delta-")?
            .strip_suffix(".seg")?
            .parse()
            .ok()
    };
    let mut max = 0u64;
    for e in &manifest.entries {
        if let Some(g) = parse(&e.file) {
            max = max.max(g);
        }
    }
    // Stray files (e.g. left by a crash between manifest commit and
    // cleanup) also reserve their generation, so we never rename over
    // anything that ever carried committed data.
    if let Ok(rd) = std::fs::read_dir(dir) {
        for entry in rd.flatten() {
            if let Some(g) = entry.file_name().to_str().and_then(parse) {
                max = max.max(g);
            }
        }
    }
    format!("delta-{}.seg", max + 1)
}

/// Folds the delta log into the base segments. Returns `Ok(None)` when
/// the log holds no frames. See the module docs for the crash/fault
/// contract.
///
/// **Exclusive access required**: this rewrites the manifest and
/// truncates `deltas.wal` through its own file handles. Any live
/// [`DeltaLog`] appender on the same directory must be quiesced
/// (dropped) first and reopened afterwards — a concurrent appender's
/// committed offset would point past the truncated log, its next append
/// would land beyond a zero-filled hole, and replay would silently stop
/// at the hole, losing a durably acknowledged frame.
pub fn compact_deltas(dir: &Path) -> Result<Option<CompactDeltasOutcome>, StoreError> {
    compact_deltas_with(dir, None)
}

/// [`compact_deltas`] with an optional fault schedule, rolled at each of
/// the four distinct fault points (replay, segment write, dictionary
/// write, manifest commit). Injected faults surface as typed errors with
/// the directory still consistent.
pub fn compact_deltas_with(
    dir: &Path,
    fault: Option<DeltaFaultPlan>,
) -> Result<Option<CompactDeltasOutcome>, StoreError> {
    let check = |index: u64, op: &'static str| -> Result<(), StoreError> {
        match fault.map(|p| p.roll(index)).unwrap_or(Fault::None) {
            Fault::None => Ok(()),
            Fault::Transient => Err(StoreError::Transient {
                op,
                detail: "injected fault".into(),
            }),
            Fault::Torn => Err(StoreError::Io {
                op,
                detail: "injected failure mid-step".into(),
            }),
        }
    };
    let io = |op: &'static str| {
        move |e: std::io::Error| StoreError::Io {
            op,
            detail: e.to_string(),
        }
    };
    let (dict, base) = SegmentStore::open(dir)?;
    let (frames, _log) = DeltaLog::open(dir)?;
    if frames.is_empty() {
        return Ok(None);
    }
    check(1, "compact_replay")?;
    let old_files: Vec<String> = base
        .manifest()
        .entries
        .iter()
        .map(|e| e.file.clone())
        .collect();
    let level = base
        .manifest()
        .entries
        .iter()
        .map(|e| e.level)
        .max()
        .unwrap_or(0);
    let seg_name = next_delta_seg_name(dir, base.manifest());
    let (mut store, _) = replay(dict, Arc::new(base) as Arc<dyn SegmentSource>, &frames);
    let spo = store.snapshot_sorted();
    let dict = store.dict().clone();

    check(2, "compact_write_segment")?;
    let sort_keys = |order: Order| {
        let mut keys: Vec<[u32; 3]> = spo.iter().map(|t| order.key(t)).collect();
        keys.sort_unstable();
        keys
    };
    let seg_path = dir.join(&seg_name);
    crate::format::write_segment(
        &seg_path,
        crate::format::DEFAULT_BLOCK_TRIPLES,
        spo.iter().copied(),
        sort_keys(Order::Pos),
        sort_keys(Order::Osp),
    )
    .map_err(io("compact_write_segment"))?;

    if let Err(e) = check(3, "compact_write_dict") {
        std::fs::remove_file(&seg_path).ok();
        return Err(e);
    }
    if let Err(e) = crate::dict::write_dict(&dict, &dir.join(crate::dict::DICT_FILE))
        .map_err(io("compact_write_dict"))
    {
        std::fs::remove_file(&seg_path).ok();
        return Err(e);
    }

    if let Err(e) = check(4, "compact_commit") {
        // The enlarged dictionary is already durable, but a dictionary is
        // allowed to run ahead of its segments (ids are append-only), so
        // the directory still reopens to the pre-compaction state.
        std::fs::remove_file(&seg_path).ok();
        return Err(e);
    }
    write_manifest(
        dir,
        &Manifest {
            entries: vec![ManifestEntry {
                file: seg_name.clone(),
                level,
                triples: spo.len() as u64,
            }],
        },
    )
    .map_err(io("compact_commit"))?;
    // Committed. Cleanup failures past this point must NOT surface as
    // compaction errors — the state is already durable and consistent;
    // stale segment files and WAL frames are garbage that replay
    // idempotency and the next compaction tolerate. The name check is
    // belt-and-braces on top of generation naming: deleting a path the
    // fresh manifest points at would destroy committed data.
    for f in old_files.iter().filter(|f| **f != seg_name) {
        std::fs::remove_file(dir.join(f)).ok();
    }
    let wal = dir.join(DELTA_FILE);
    if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&wal) {
        f.set_len(0).ok();
    }
    crate::metrics().delta_compactions.inc();
    Ok(Some(CompactDeltasOutcome {
        frames_folded: frames.len(),
        triples: spo.len(),
        segment: seg_name,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use wodex_rdf::Term;
    use wodex_rdf::Triple;
    use wodex_store::encoded::Pattern;
    use wodex_store::mvcc::{LiveStore, WriteBatch};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wodex_seg_delta_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn t(s: usize, o: usize) -> Triple {
        Triple::iri(
            &format!("http://e.org/s{s}"),
            "http://e.org/p",
            Term::iri(format!("http://e.org/o{o}")),
        )
    }

    /// A seeded base directory with `n` triples.
    fn seed_dir(name: &str, n: usize) -> PathBuf {
        let dir = tmpdir(name);
        let mut st = TripleStore::new();
        for i in 0..n {
            st.insert(&t(i, i));
        }
        let spo = st.snapshot_sorted();
        let sort_keys = |order: Order| {
            let mut keys: Vec<[u32; 3]> = spo.iter().map(|t| order.key(t)).collect();
            keys.sort_unstable();
            keys
        };
        crate::format::write_segment(
            &dir.join("base.seg"),
            64,
            spo.iter().copied(),
            sort_keys(Order::Pos),
            sort_keys(Order::Osp),
        )
        .unwrap();
        crate::dict::write_dict(st.dict(), &dir.join(crate::dict::DICT_FILE)).unwrap();
        write_manifest(
            &dir,
            &Manifest {
                entries: vec![ManifestEntry {
                    file: "base.seg".into(),
                    level: 0,
                    triples: spo.len() as u64,
                }],
            },
        )
        .unwrap();
        dir
    }

    /// Opens the directory as a live store: base + WAL replay, seeded
    /// at the replayed revision so the sequence continues across
    /// reopens instead of restarting at 0.
    fn open_live(dir: &Path) -> (LiveStore, Arc<Mutex<DeltaLog>>) {
        let (dict, base) = SegmentStore::open(dir).unwrap();
        let (frames, log) = DeltaLog::open(dir).unwrap();
        let (store, rev) = replay(dict, Arc::new(base) as Arc<dyn SegmentSource>, &frames);
        let live = LiveStore::at_revision(store, rev);
        let log = Arc::new(Mutex::new(log));
        live.set_wal(wal_sink(Arc::clone(&log)));
        (live, log)
    }

    fn decoded_sorted(store: &TripleStore) -> Vec<String> {
        let mut v: Vec<String> = store
            .match_pattern(Pattern::any())
            .into_iter()
            .map(|e| store.decode(e).to_string())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn frames_survive_a_reopen_bit_for_bit() {
        let dir = seed_dir("reopen", 20);
        let (live, _log) = open_live(&dir);
        for i in 0..5 {
            let mut b = WriteBatch::new();
            b.insert(t(100 + i, i)).delete(t(i, i));
            live.commit(&b).unwrap();
        }
        let want = decoded_sorted(live.snapshot().store());
        drop(live);
        let (reopened, _log) = open_live(&dir);
        assert_eq!(
            reopened.snapshot().revision(),
            5,
            "revision continues from the replayed WAL"
        );
        assert_eq!(decoded_sorted(reopened.snapshot().store()), want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_overwritten() {
        let dir = seed_dir("torn", 10);
        let (live, log) = open_live(&dir);
        let mut b = WriteBatch::new();
        b.insert(t(50, 50));
        live.commit(&b).unwrap();
        // Simulate a crash mid-append: garbage past the committed offset.
        {
            let log = log.lock().unwrap();
            let path = dir.join(DELTA_FILE);
            let mut bytes = std::fs::read(&path).unwrap();
            assert_eq!(bytes.len() as u64, log.committed_bytes());
            bytes.extend_from_slice(&[0xAB; 17]);
            std::fs::write(&path, &bytes).unwrap();
        }
        drop(live);
        let (reopened, log2) = open_live(&dir);
        assert!(reopened.snapshot().store().contains(&t(50, 50)));
        // The torn tail was truncated; the next append lands cleanly.
        let mut b = WriteBatch::new();
        b.insert(t(51, 51));
        reopened.commit(&b).unwrap();
        drop(reopened);
        let before = log2.lock().unwrap().committed_bytes();
        let (again, log3) = open_live(&dir);
        assert!(again.snapshot().store().contains(&t(51, 51)));
        assert_eq!(log3.lock().unwrap().committed_bytes(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_folds_the_log_and_preserves_content() {
        let dir = seed_dir("fold", 30);
        let (live, _log) = open_live(&dir);
        for i in 0..8 {
            let mut b = WriteBatch::new();
            b.insert(t(200 + i, i)).delete(t(i * 2, i * 2));
            live.commit(&b).unwrap();
        }
        let want = decoded_sorted(live.snapshot().store());
        drop(live);
        let out = compact_deltas(&dir).unwrap().expect("frames to fold");
        assert_eq!(out.frames_folded, 8);
        // The WAL is empty and the content identical after reopen.
        let (reopened, log) = open_live(&dir);
        assert_eq!(log.lock().unwrap().committed_bytes(), 0);
        assert_eq!(decoded_sorted(reopened.snapshot().store()), want);
        // Idempotent: nothing left to fold.
        assert_eq!(compact_deltas(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Commit-once-then-compact after every reopen is the collision
    /// trap: WAL revisions restart at 1 each time, so revision-derived
    /// segment names would repeat, the rename would clobber the live
    /// segment and the cleanup pass would then delete it — an
    /// unreadable directory. Generation naming must keep every round's
    /// segment distinct and the directory readable throughout.
    #[test]
    fn repeated_compaction_across_reopens_never_clobbers_the_base() {
        let dir = seed_dir("regen", 10);
        let mut names = Vec::new();
        for round in 0..3 {
            let (live, _log) = open_live(&dir);
            let mut b = WriteBatch::new();
            b.insert(t(300 + round, round));
            live.commit(&b).unwrap();
            drop(live);
            let out = compact_deltas(&dir).unwrap().expect("frames to fold");
            names.push(out.segment);
        }
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 3, "each compaction names a fresh segment");
        let (reopened, _log) = open_live(&dir);
        for round in 0..3 {
            assert!(
                reopened.snapshot().store().contains(&t(300 + round, round)),
                "round {round} commit lost"
            );
        }
        assert_eq!(reopened.snapshot().store().len(), 13);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_failure_keeps_log_and_snapshot_in_step() {
        let dir = seed_dir("instep", 10);
        let (live, log) = open_live(&dir);
        {
            let mut l = log.lock().unwrap();
            let plan = DeltaFaultPlan { seed: 7, rate: 1.0 };
            // Replace with an always-faulting log sharing the same file.
            let stolen =
                std::mem::replace(&mut *l, DeltaLog::open(&dir).unwrap().1.with_fault(plan));
            drop(stolen);
        }
        let mut b = WriteBatch::new();
        b.insert(t(99, 99));
        let err = live.commit(&b).unwrap_err();
        assert!(matches!(
            err,
            StoreError::Transient { .. } | StoreError::Io { .. }
        ));
        // Neither the snapshot nor the durable log advanced.
        assert_eq!(live.revision(), 0);
        drop(live);
        let (reopened, _log) = open_live(&dir);
        assert!(!reopened.snapshot().store().contains(&t(99, 99)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
