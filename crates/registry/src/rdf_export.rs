//! The corpus as Linked Data.
//!
//! Dogfooding: the survey's own system matrix, published the way the
//! survey says data should be published — as RDF. Every system becomes a
//! resource with its category, year, feature flags, data/vis types and
//! references, so the whole `wodex` stack (SPARQL, facets, charts,
//! recommendation) can explore the survey that specified it.

use crate::corpus::all_systems;
use crate::model::SystemEntry;
use wodex_rdf::term::Literal;
use wodex_rdf::vocab::{rdf, rdfs};
use wodex_rdf::{Graph, Term, Triple};

/// The namespace of the exported corpus.
pub const NS: &str = "http://wodex.example.org/survey/";

/// IRI helpers for the exported vocabulary.
pub mod vocab {
    use super::NS;

    /// Class of surveyed systems.
    pub fn system_class() -> String {
        format!("{NS}System")
    }

    /// The release-year property.
    pub fn year() -> String {
        format!("{NS}year")
    }

    /// The taxonomy-category property.
    pub fn category() -> String {
        format!("{NS}category")
    }

    /// The Domain-column property.
    pub fn domain() -> String {
        format!("{NS}domain")
    }

    /// The App.-Type-column property.
    pub fn app_type() -> String {
        format!("{NS}appType")
    }

    /// A boolean feature property (e.g. `feature/sampling`).
    pub fn feature(name: &str) -> String {
        format!("{NS}feature/{name}")
    }

    /// A supported-data-type property.
    pub fn data_type() -> String {
        format!("{NS}dataType")
    }

    /// A provided-vis-type property.
    pub fn vis_type() -> String {
        format!("{NS}visType")
    }

    /// A bibliography-reference property.
    pub fn reference() -> String {
        format!("{NS}cites")
    }
}

fn system_iri(s: &SystemEntry) -> String {
    let slug: String = s
        .name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    // IRIs are scoped by category so a system that appears in both tables
    // (LODWheel) keeps one resource per table row — the rows carry
    // different feature flags, exactly as in the paper.
    format!("{NS}system/{:?}/{slug}", s.category)
}

/// Exports the full corpus as an RDF graph.
pub fn to_rdf() -> Graph {
    let mut g = Graph::new();
    for s in all_systems() {
        let iri = system_iri(&s);
        g.insert(Triple::iri(
            &iri,
            rdf::TYPE,
            Term::iri(vocab::system_class()),
        ));
        g.insert(Triple::iri(&iri, rdfs::LABEL, Term::literal(s.name)));
        g.insert(Triple::iri(
            &iri,
            &vocab::year(),
            Term::integer(s.year as i64),
        ));
        g.insert(Triple::iri(
            &iri,
            &vocab::category(),
            Term::iri(format!("{NS}category/{:?}", s.category)),
        ));
        g.insert(Triple::iri(&iri, &vocab::domain(), Term::literal(s.domain)));
        g.insert(Triple::iri(
            &iri,
            &vocab::app_type(),
            Term::literal(s.app_type.label()),
        ));
        let f = &s.features;
        for (on, name) in [
            (f.recommendation, "recommendation"),
            (f.preferences, "preferences"),
            (f.statistics, "statistics"),
            (f.sampling, "sampling"),
            (f.aggregation, "aggregation"),
            (f.incremental, "incremental"),
            (f.disk, "disk"),
            (f.keyword, "keyword"),
            (f.filter, "filter"),
        ] {
            g.insert(Triple::iri(
                &iri,
                &vocab::feature(name),
                Term::Literal(Literal::boolean(on)),
            ));
        }
        for d in s.data_types {
            g.insert(Triple::iri(
                &iri,
                &vocab::data_type(),
                Term::literal(d.code()),
            ));
        }
        for v in s.vis_types {
            g.insert(Triple::iri(
                &iri,
                &vocab::vis_type(),
                Term::literal(v.code()),
            ));
        }
        for &r in s.refs {
            g.insert(Triple::iri(
                &iri,
                &vocab::reference(),
                Term::iri(format!("{NS}ref/{r}")),
            ));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_is_exported_once() {
        let g = to_rdf();
        let systems = g
            .triples_for_predicate(rdf::TYPE)
            .filter(|t| t.object == Term::iri(vocab::system_class()))
            .count();
        assert_eq!(systems, all_systems().len());
    }

    #[test]
    fn feature_flags_roundtrip() {
        let g = to_rdf();
        // graphVizdb: disk=true, aggregation=false.
        let s = Term::iri(format!("{NS}system/GraphBased/graphVizdb"));
        let disk = g.object_for(&s, &vocab::feature("disk")).unwrap();
        assert_eq!(disk, &Term::Literal(Literal::boolean(true)));
        let aggr = g.object_for(&s, &vocab::feature("aggregation")).unwrap();
        assert_eq!(aggr, &Term::Literal(Literal::boolean(false)));
    }

    #[test]
    fn sparql_can_rederive_claim_c1() {
        // The §4 claim, as a SPARQL query over the exported corpus.
        let store = wodex_store::TripleStore::from_graph(&to_rdf());
        let q = format!(
            "SELECT ?label WHERE {{\n\
               ?s <{}> ?y . ?s <http://www.w3.org/2000/01/rdf-schema#label> ?label .\n\
               {{ ?s <{}> true }} UNION {{ ?s <{}> true }}\n\
               ?s <{}> <{}category/Generic>\n\
             }} ORDER BY ?label",
            vocab::year(),
            vocab::feature("sampling"),
            vocab::feature("aggregation"),
            vocab::category(),
            NS,
        );
        let r = wodex_sparql::query(&store, &q).expect("valid query");
        let names: Vec<String> = r
            .table()
            .unwrap()
            .rows
            .iter()
            .map(|row| match row[0].as_ref().unwrap() {
                Term::Literal(l) => l.lexical().to_string(),
                other => other.to_string(),
            })
            .collect();
        assert_eq!(names, vec!["SynopsViz", "VizBoard"]);
    }

    #[test]
    fn export_parses_back_through_turtle() {
        let g = to_rdf();
        let ttl = wodex_rdf::turtle::serialize(&g);
        let back = wodex_rdf::turtle::parse(&ttl).expect("well-formed export");
        assert_eq!(g, back);
    }

    #[test]
    fn year_histogram_matches_corpus() {
        let g = to_rdf();
        let years: Vec<i64> = g
            .triples_for_predicate(&vocab::year())
            .filter_map(|t| t.object.as_literal())
            .filter_map(|l| match wodex_rdf::Value::from_literal(l) {
                wodex_rdf::Value::Integer(y) => Some(y),
                _ => None,
            })
            .collect();
        assert_eq!(years.len(), all_systems().len());
        assert!(years.iter().all(|&y| (2002..=2016).contains(&y)));
    }
}
