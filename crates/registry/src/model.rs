//! The schema of the survey corpus.

/// The six system categories of the survey's §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// §3.1 Browsers & exploratory systems.
    Browser,
    /// §3.2 Generic visualization systems (Table 1).
    Generic,
    /// §3.3 Domain, vocabulary & device-specific systems.
    DomainSpecific,
    /// §3.4 Graph-based visualization systems (Table 2).
    GraphBased,
    /// §3.5 Ontology visualization systems.
    Ontology,
    /// §3.6 Visualization libraries.
    Library,
}

impl Category {
    /// All categories in section order.
    pub fn all() -> [Category; 6] {
        [
            Category::Browser,
            Category::Generic,
            Category::DomainSpecific,
            Category::GraphBased,
            Category::Ontology,
            Category::Library,
        ]
    }

    /// The section heading used in the survey.
    pub fn title(self) -> &'static str {
        match self {
            Category::Browser => "Browsers & Exploratory Systems",
            Category::Generic => "Generic Visualization Systems",
            Category::DomainSpecific => "Domain, Vocabulary & Device-specific Systems",
            Category::GraphBased => "Graph-based Visualization Systems",
            Category::Ontology => "Ontology Visualization Systems",
            Category::Library => "Visualization Libraries",
        }
    }
}

/// Table 1's data-type legend: N, T, S, H, G.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// N: numeric.
    Numeric,
    /// T: temporal.
    Temporal,
    /// S: spatial.
    Spatial,
    /// H: hierarchical (tree).
    Hierarchical,
    /// G: graph (network).
    Graph,
}

impl DataType {
    /// The single-letter legend code used in Table 1.
    pub fn code(self) -> &'static str {
        match self {
            DataType::Numeric => "N",
            DataType::Temporal => "T",
            DataType::Spatial => "S",
            DataType::Hierarchical => "H",
            DataType::Graph => "G",
        }
    }
}

/// Table 1's visualization-type legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VisType {
    /// B: bubble chart.
    Bubble,
    /// C: chart.
    Chart,
    /// CI: circles.
    Circles,
    /// G: graph.
    Graph,
    /// M: map.
    Map,
    /// P: pie.
    Pie,
    /// PC: parallel coordinates.
    ParallelCoords,
    /// S: scatter.
    Scatter,
    /// SG: streamgraph.
    Streamgraph,
    /// T: treemap.
    Treemap,
    /// TL: timeline.
    Timeline,
    /// TR: tree.
    Tree,
}

impl VisType {
    /// The legend code used in Table 1.
    pub fn code(self) -> &'static str {
        match self {
            VisType::Bubble => "B",
            VisType::Chart => "C",
            VisType::Circles => "CI",
            VisType::Graph => "G",
            VisType::Map => "M",
            VisType::Pie => "P",
            VisType::ParallelCoords => "PC",
            VisType::Scatter => "S",
            VisType::Streamgraph => "SG",
            VisType::Treemap => "T",
            VisType::Timeline => "TL",
            VisType::Tree => "TR",
        }
    }
}

/// Application type (the last column of both tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppType {
    /// Browser-based.
    Web,
    /// Desktop application.
    Desktop,
    /// Mobile application (device-specific systems of §3.3).
    Mobile,
    /// Embeddable library (§3.6).
    Library,
}

impl AppType {
    /// Display string as used in the tables.
    pub fn label(self) -> &'static str {
        match self {
            AppType::Web => "Web",
            AppType::Desktop => "Desktop",
            AppType::Mobile => "Mobile",
            AppType::Library => "Library",
        }
    }
}

/// The feature flags — the checkmark columns of Tables 1 and 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Features {
    /// Recommends visualization settings (Table 1 "Recomm.").
    pub recommendation: bool,
    /// User data/visual preference operations (Table 1 "Preferences").
    pub preferences: bool,
    /// Exposes statistics about visualized data (Table 1 "Statistics").
    pub statistics: bool,
    /// Sampling/filtering-based approximation ("Sampling").
    pub sampling: bool,
    /// Aggregation-based approximation ("Aggregation").
    pub aggregation: bool,
    /// Incremental/progressive computation ("Incr.").
    pub incremental: bool,
    /// Uses external memory at runtime ("Disk").
    pub disk: bool,
    /// Keyword search (Table 2 "Keyword").
    pub keyword: bool,
    /// Data filtering mechanisms (Table 2 "Filter").
    pub filter: bool,
}

/// One surveyed system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemEntry {
    /// System name as printed in the survey.
    pub name: &'static str,
    /// Release year (the tables' Year column).
    pub year: u16,
    /// Reference numbers in the survey's bibliography.
    pub refs: &'static [u16],
    /// Taxonomy category (§3).
    pub category: Category,
    /// Domain column value ("generic", "ontology", ...).
    pub domain: &'static str,
    /// Supported data types (Table 1).
    pub data_types: &'static [DataType],
    /// Provided visualization types (Table 1).
    pub vis_types: &'static [VisType],
    /// Feature flags.
    pub features: Features,
    /// Application type.
    pub app_type: AppType,
    /// Whether the system appears in Table 1.
    pub in_table1: bool,
    /// Whether the system appears in Table 2.
    pub in_table2: bool,
}

impl SystemEntry {
    /// True if the system uses any approximation technique (sampling or
    /// aggregation) — the §4 scalability criterion.
    pub fn uses_approximation(&self) -> bool {
        self.features.sampling || self.features.aggregation
    }

    /// Data types as the table's comma-joined code string.
    pub fn data_type_codes(&self) -> String {
        self.data_types
            .iter()
            .map(|d| d.code())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Vis types as the table's comma-joined code string.
    pub fn vis_type_codes(&self) -> String {
        self.vis_types
            .iter()
            .map(|v| v.code())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let data: Vec<&str> = [
            DataType::Numeric,
            DataType::Temporal,
            DataType::Spatial,
            DataType::Hierarchical,
            DataType::Graph,
        ]
        .iter()
        .map(|d| d.code())
        .collect();
        let mut d = data.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), data.len());
        let vis: Vec<&str> = [
            VisType::Bubble,
            VisType::Chart,
            VisType::Circles,
            VisType::Graph,
            VisType::Map,
            VisType::Pie,
            VisType::ParallelCoords,
            VisType::Scatter,
            VisType::Streamgraph,
            VisType::Treemap,
            VisType::Timeline,
            VisType::Tree,
        ]
        .iter()
        .map(|v| v.code())
        .collect();
        let mut v = vis.clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), vis.len());
    }

    #[test]
    fn category_titles_match_sections() {
        assert!(Category::Generic.title().contains("Generic"));
        assert_eq!(Category::all().len(), 6);
    }

    #[test]
    fn approximation_predicate() {
        let mut f = Features::default();
        assert!(!f.recommendation);
        f.sampling = true;
        let e = SystemEntry {
            name: "X",
            year: 2015,
            refs: &[],
            category: Category::Generic,
            domain: "generic",
            data_types: &[DataType::Numeric],
            vis_types: &[VisType::Chart],
            features: f,
            app_type: AppType::Web,
            in_table1: false,
            in_table2: false,
        };
        assert!(e.uses_approximation());
        assert_eq!(e.data_type_codes(), "N");
        assert_eq!(e.vis_type_codes(), "C");
    }
}
