//! Regenerating the survey's tables.
//!
//! These renderers produce the markdown form of Table 1 and Table 2 from
//! the corpus records — the T1/T2 reproduction targets of
//! `EXPERIMENTS.md`. Checkmarks, codes and column order follow the paper.

use crate::corpus::{table1_systems, table2_systems};
use crate::model::SystemEntry;

fn check(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        ""
    }
}

/// Renders a markdown table from a header and rows.
fn markdown(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(&widths) {
            let pad = w - cell.chars().count();
            line.push(' ');
            line.push_str(cell);
            line.push_str(&" ".repeat(pad + 1));
            line.push('|');
        }
        line.push('\n');
        line
    };
    let mut out = fmt_row(
        &header
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<String>>(),
    );
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row));
    }
    out
}

/// **Table 1: Generic Visualization Systems** — regenerated from the
/// corpus.
pub fn render_table1() -> String {
    let header = [
        "System",
        "Year",
        "Data Types",
        "Vis. Types",
        "Recomm.",
        "Preferences",
        "Statistics",
        "Sampling",
        "Aggregation",
        "Incr.",
        "Disk",
        "Domain",
        "App. Type",
    ];
    let rows: Vec<Vec<String>> = table1_systems()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.year.to_string(),
                s.data_type_codes(),
                s.vis_type_codes(),
                check(s.features.recommendation).into(),
                check(s.features.preferences).into(),
                check(s.features.statistics).into(),
                check(s.features.sampling).into(),
                check(s.features.aggregation).into(),
                check(s.features.incremental).into(),
                check(s.features.disk).into(),
                s.domain.to_string(),
                s.app_type.label().to_string(),
            ]
        })
        .collect();
    let mut out = String::from("Table 1: Generic Visualization Systems\n\n");
    out.push_str(&markdown(&header, &rows));
    out.push_str(
        "\nLegend — Data types: N numeric, T temporal, S spatial, H hierarchical, G graph.\n\
         Vis. types: B bubble, C chart, CI circles, G graph, M map, P pie, PC parallel\n\
         coordinates, S scatter, SG streamgraph, T treemap, TL timeline, TR tree.\n",
    );
    out
}

/// **Table 2: Graph-based Visualization Systems** — regenerated from the
/// corpus.
pub fn render_table2() -> String {
    let header = [
        "System",
        "Year",
        "Keyword",
        "Filter",
        "Sampling",
        "Aggregation",
        "Incr.",
        "Disk",
        "Domain",
        "App. Type",
    ];
    let rows: Vec<Vec<String>> = table2_systems()
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.year.to_string(),
                check(s.features.keyword).into(),
                check(s.features.filter).into(),
                check(s.features.sampling).into(),
                check(s.features.aggregation).into(),
                check(s.features.incremental).into(),
                check(s.features.disk).into(),
                s.domain.to_string(),
                s.app_type.label().to_string(),
            ]
        })
        .collect();
    let mut out = String::from("Table 2: Graph-based Visualization Systems\n\n");
    out.push_str(&markdown(&header, &rows));
    out
}

/// A compact one-line summary per system (used by the `repro` binary's
/// listing mode).
pub fn summary_line(s: &SystemEntry) -> String {
    let mut flags = Vec::new();
    let f = &s.features;
    for (on, label) in [
        (f.recommendation, "rec"),
        (f.preferences, "pref"),
        (f.statistics, "stats"),
        (f.sampling, "sample"),
        (f.aggregation, "aggr"),
        (f.incremental, "incr"),
        (f.disk, "disk"),
        (f.keyword, "kw"),
        (f.filter, "filter"),
    ] {
        if on {
            flags.push(label);
        }
    }
    format!(
        "{:<24} {} {:<10} [{}]",
        s.name,
        s.year,
        s.domain,
        flags.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eleven_rows_and_the_right_columns() {
        let t = render_table1();
        // Header + separator + 11 rows (+ title/legend lines).
        let data_lines = t.lines().filter(|l| l.starts_with('|')).count();
        assert_eq!(data_lines, 13);
        assert!(t.contains("Rhizomer"));
        assert!(t.contains("ViCoMap"));
        assert!(t.contains("Recomm."));
    }

    #[test]
    fn table1_synopsviz_row_has_six_checkmarks() {
        let t = render_table1();
        let row = t.lines().find(|l| l.contains("SynopsViz")).unwrap();
        assert_eq!(row.matches('✓').count(), 6);
        assert!(row.contains("N, T, H"));
        assert!(row.contains("C, P, T, TL"));
    }

    #[test]
    fn table1_approximation_columns_match_discussion() {
        // §4: only SynopsViz and VizBoard adopt approximation techniques.
        let t = render_table1();
        for line in t.lines().filter(|l| l.starts_with('|')) {
            let has_approx = {
                let s = crate::corpus::table1_systems();
                s.iter()
                    .find(|e| line.contains(e.name))
                    .map(|e| e.uses_approximation())
            };
            if let Some(approx) = has_approx {
                let expected = line.contains("SynopsViz") || line.contains("VizBoard");
                assert_eq!(approx, expected, "row: {line}");
            }
        }
    }

    #[test]
    fn table2_has_twentyone_rows() {
        let t = render_table2();
        let data_lines = t.lines().filter(|l| l.starts_with('|')).count();
        assert_eq!(data_lines, 23);
        assert!(t.contains("RDF-Gravity"));
        assert!(t.contains("graphVizdb"));
    }

    #[test]
    fn table2_disk_column_has_exactly_three_checks() {
        // PGV, Cytospace, graphVizdb.
        let systems = crate::corpus::table2_systems();
        let disk: Vec<&str> = systems
            .iter()
            .filter(|s| s.features.disk)
            .map(|s| s.name)
            .collect();
        assert_eq!(disk, vec!["PGV", "Cytospace", "graphVizdb"]);
    }

    #[test]
    fn markdown_is_well_formed() {
        for t in [render_table1(), render_table2()] {
            let rows: Vec<&str> = t.lines().filter(|l| l.starts_with('|')).collect();
            let cols = rows[0].matches('|').count();
            assert!(rows.iter().all(|r| r.matches('|').count() == cols));
        }
    }

    #[test]
    fn summary_line_lists_flags() {
        let s = crate::corpus::find("Gephi").unwrap();
        let line = summary_line(&s);
        assert!(line.contains("Gephi"));
        assert!(line.contains("sample"));
        assert!(line.contains("aggr"));
        assert!(line.contains("filter"));
        assert!(!line.contains("disk"));
    }
}
