//! # wodex-registry — the survey corpus as a queryable artifact
//!
//! A survey's "evaluation" is its system matrices. This crate encodes
//! every system catalogued by *Exploration and Visualization in the Web of
//! Big Linked Data* (Bikakis & Sellis, LWDM/EDBT 2016) as typed records:
//!
//! * [`model`] — the schema: categories (§3's taxonomy), data types,
//!   visualization types, feature flags (the columns of Tables 1 & 2).
//! * [`corpus`] — the records themselves: all 11 generic visualization
//!   systems of Table 1, all 21 graph-based systems of Table 2, and the
//!   remaining systems of §§3.1, 3.3, 3.5, 3.6.
//! * [`table`] — regenerates **Table 1** and **Table 2** as markdown,
//!   cell-for-cell.
//! * [`analysis`] — re-derives the quantified claims of the paper's §4
//!   discussion (the C1–C5 experiments of `EXPERIMENTS.md`) from the
//!   corpus by query, not by transcription.
//! * [`capability`] — maps every feature column to the `wodex` module
//!   that implements it, tying the survey to the reference
//!   implementation.
//! * [`rdf_export`] — publishes the corpus *as Linked Data*, so the whole
//!   `wodex` stack can explore the survey that specified it.

pub mod analysis;
pub mod capability;
pub mod corpus;
pub mod model;
pub mod rdf_export;
pub mod table;

pub use corpus::{all_systems, table1_systems, table2_systems};
pub use model::{AppType, Category, DataType, SystemEntry, VisType};
pub use table::{render_table1, render_table2};
