//! Capability → implementation cross-reference.
//!
//! Every feature column of the survey's tables corresponds to a concrete
//! `wodex` module that implements the technique from scratch. This map is
//! the bridge between deliverable (A) — the survey as data — and
//! deliverable (B) — the reference implementation — and is printed by the
//! `repro` binary so readers can navigate from a table checkmark to code.

/// One capability with its implementing modules and the experiment that
/// exercises it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capability {
    /// The table column name.
    pub feature: &'static str,
    /// Implementing module paths in this workspace.
    pub modules: &'static [&'static str],
    /// The experiment id in EXPERIMENTS.md.
    pub experiment: &'static str,
}

/// The full capability map.
pub fn capability_map() -> Vec<Capability> {
    vec![
        Capability {
            feature: "Sampling",
            modules: &["wodex_approx::sampling", "wodex_graph::sample"],
            experiment: "E1 / E11",
        },
        Capability {
            feature: "Aggregation",
            modules: &[
                "wodex_approx::binning",
                "wodex_approx::clustering",
                "wodex_hetree",
                "wodex_graph::hierarchy",
                "wodex_graph::bundling",
            ],
            experiment: "E2 / E7 / E8 / E9",
        },
        Capability {
            feature: "Incr.",
            modules: &[
                "wodex_approx::progressive",
                "wodex_hetree (ICO)",
                "wodex_store::cracking",
            ],
            experiment: "E3 / E4 / E7",
        },
        Capability {
            feature: "Disk",
            modules: &["wodex_store::paged", "wodex_store::buffer"],
            experiment: "E5 / E10",
        },
        Capability {
            feature: "Recomm.",
            modules: &["wodex_viz::recommend", "wodex_viz::ldvm"],
            experiment: "E12",
        },
        Capability {
            feature: "Preferences",
            modules: &["wodex_viz::prefs", "wodex_hetree (ADA)"],
            experiment: "E12",
        },
        Capability {
            feature: "Statistics",
            modules: &["wodex_rdf::stats", "wodex_approx::sketch"],
            experiment: "E1",
        },
        Capability {
            feature: "Keyword",
            modules: &["wodex_explore::search"],
            experiment: "E13",
        },
        Capability {
            feature: "Filter",
            modules: &["wodex_explore::facets", "wodex_explore::session"],
            experiment: "E13",
        },
    ]
}

/// Renders the map as text.
pub fn render() -> String {
    use std::fmt::Write;
    let mut out = String::from("Feature column → wodex implementation → experiment\n\n");
    for c in capability_map() {
        let _ = writeln!(
            out,
            "{:<12} {:<70} {}",
            c.feature,
            c.modules.join(", "),
            c.experiment
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_feature_column_is_covered() {
        let map = capability_map();
        let features: Vec<&str> = map.iter().map(|c| c.feature).collect();
        for col in [
            "Recomm.",
            "Preferences",
            "Statistics",
            "Sampling",
            "Aggregation",
            "Incr.",
            "Disk",
            "Keyword",
            "Filter",
        ] {
            assert!(features.contains(&col), "missing column {col}");
        }
    }

    #[test]
    fn every_capability_names_modules_and_an_experiment() {
        for c in capability_map() {
            assert!(!c.modules.is_empty(), "{} has no modules", c.feature);
            assert!(c.experiment.starts_with('E'));
        }
    }

    #[test]
    fn render_is_complete() {
        let r = render();
        assert!(r.contains("wodex_store::cracking"));
        assert!(r.contains("wodex_viz::recommend"));
        assert!(r.lines().filter(|l| l.contains("E")).count() >= 9);
    }
}
