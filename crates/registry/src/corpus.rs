//! The survey corpus: every system, transcribed from the paper.
//!
//! Tables 1 and 2 are transcribed **cell for cell** (the `render_*`
//! functions in [`crate::table`] reproduce them; the tests there pin
//! every checkmark). The remaining systems of §§3.1/3.3/3.5/3.6 carry
//! category/year metadata so the taxonomy analysis (C5) can count them.

use crate::model::{AppType, Category, DataType, Features, SystemEntry, VisType};

macro_rules! feat {
    ($($f:ident),* $(,)?) => {
        Features { $($f: true,)* ..Features::default() }
    };
}

use AppType::{Desktop, Mobile, Web};
use Category::{Browser, DomainSpecific, Generic, GraphBased, Ontology};
use DataType::{Hierarchical, Numeric, Spatial, Temporal};
use VisType::{
    Bubble, Chart, Circles, Map, ParallelCoords, Pie, Scatter, Streamgraph, Timeline, Tree, Treemap,
};

/// The 11 generic visualization systems of **Table 1**, in table order.
pub fn table1_systems() -> Vec<SystemEntry> {
    let e = |name, year, refs, data_types, vis_types, features| SystemEntry {
        name,
        year,
        refs,
        category: Generic,
        domain: "generic",
        data_types,
        vis_types,
        features,
        app_type: Web,
        in_table1: true,
        in_table2: false,
    };
    vec![
        e(
            "Rhizomer",
            2006,
            &[30],
            &[Numeric, Temporal, Spatial, Hierarchical, DataType::Graph],
            &[Chart, Map, Treemap, Timeline],
            feat!(recommendation),
        ),
        e(
            "VizBoard",
            2009,
            &[135, 136, 109],
            &[Numeric, Hierarchical],
            &[Chart, Scatter, Treemap],
            feat!(recommendation, preferences, sampling),
        ),
        e(
            "LODWheel",
            2011,
            &[126],
            &[Numeric, Spatial, DataType::Graph],
            &[Chart, VisType::Graph, Map, Pie],
            Features::default(),
        ),
        e(
            "SemLens",
            2011,
            &[59],
            &[Numeric],
            &[Scatter],
            feat!(preferences),
        ),
        e(
            "LDVM",
            2013,
            &[29],
            &[Spatial, Hierarchical, DataType::Graph],
            &[Bubble, Map, Treemap, Tree],
            feat!(recommendation),
        ),
        e(
            "Payola",
            2013,
            &[84],
            &[Numeric, Temporal, Spatial, Hierarchical, DataType::Graph],
            &[Chart, Circles, VisType::Graph, Map, Treemap, Timeline, Tree],
            Features::default(),
        ),
        e(
            "LDVizWiz",
            2014,
            &[11],
            &[Spatial, Hierarchical, DataType::Graph],
            &[Map, Pie, Tree],
            feat!(recommendation),
        ),
        e(
            "SynopsViz",
            2014,
            &[26, 25],
            &[Numeric, Temporal, Hierarchical],
            &[Chart, Pie, Treemap, Timeline],
            feat!(
                recommendation,
                preferences,
                statistics,
                aggregation,
                incremental,
                disk
            ),
        ),
        e(
            "Vis Wizard",
            2014,
            &[131],
            &[Numeric, Temporal, Spatial],
            &[Bubble, Chart, Map, Pie, ParallelCoords, Streamgraph],
            feat!(recommendation, preferences),
        ),
        e(
            "LinkDaViz",
            2015,
            &[129],
            &[Numeric, Temporal, Spatial],
            &[Bubble, Chart, Scatter, Map, Pie],
            feat!(recommendation, preferences),
        ),
        e(
            "ViCoMap",
            2015,
            &[112],
            &[Numeric, Temporal, Spatial],
            &[Map],
            feat!(statistics),
        ),
    ]
}

/// The 21 graph-based visualization systems of **Table 2**, in table
/// order. (LODWheel appears in both tables, as in the paper.)
pub fn table2_systems() -> Vec<SystemEntry> {
    let e = |name, year, refs, domain, app_type, features| {
        let category = if domain == "ontology" {
            Ontology
        } else {
            GraphBased
        };
        SystemEntry {
            name,
            year,
            refs,
            category,
            domain,
            data_types: &[DataType::Graph],
            vis_types: &[VisType::Graph],
            features,
            app_type,
            in_table1: false,
            in_table2: true,
        }
    };
    vec![
        e(
            "RDF-Gravity",
            2003,
            &[],
            "generic",
            Desktop,
            feat!(keyword, filter),
        ),
        e(
            "IsaViz",
            2003,
            &[108],
            "generic",
            Desktop,
            feat!(keyword, filter),
        ),
        e(
            "RDF graph visualizer",
            2004,
            &[115],
            "generic",
            Desktop,
            feat!(keyword),
        ),
        e(
            "GrOWL",
            2007,
            &[89],
            "ontology",
            Desktop,
            feat!(keyword, filter, sampling),
        ),
        e(
            "NodeTrix",
            2007,
            &[61],
            "ontology",
            Desktop,
            feat!(aggregation),
        ),
        e(
            "PGV",
            2007,
            &[36],
            "generic",
            Desktop,
            feat!(incremental, disk),
        ),
        e(
            "Fenfire",
            2008,
            &[54],
            "generic",
            Desktop,
            Features::default(),
        ),
        e(
            "Gephi",
            2009,
            &[15],
            "generic",
            Desktop,
            feat!(filter, sampling, aggregation),
        ),
        e(
            "Trisolda",
            2010,
            &[38],
            "generic",
            Desktop,
            feat!(sampling, aggregation, incremental),
        ),
        e(
            "Cytospace",
            2010,
            &[127],
            "generic",
            Desktop,
            feat!(keyword, filter, sampling, aggregation, disk),
        ),
        e(
            "FlexViz",
            2010,
            &[45],
            "ontology",
            Web,
            feat!(keyword, filter),
        ),
        e(
            "RelFinder",
            2010,
            &[58],
            "generic",
            Web,
            Features::default(),
        ),
        e(
            "ZoomRDF",
            2010,
            &[142],
            "generic",
            Desktop,
            feat!(sampling, aggregation, incremental),
        ),
        e("KC-Viz", 2011, &[104], "ontology", Desktop, feat!(sampling)),
        e(
            "LODWheel",
            2011,
            &[126],
            "generic",
            Web,
            feat!(filter, aggregation),
        ),
        e(
            "GLOW",
            2012,
            &[64],
            "ontology",
            Desktop,
            feat!(sampling, aggregation),
        ),
        e("Lodlive", 2012, &[31], "generic", Web, feat!(keyword)),
        e(
            "OntoTrix",
            2013,
            &[14],
            "ontology",
            Desktop,
            feat!(sampling, aggregation),
        ),
        e(
            "LODeX",
            2014,
            &[19],
            "generic",
            Web,
            feat!(sampling, aggregation),
        ),
        e(
            "VOWL 2",
            2014,
            &[100, 99],
            "ontology",
            Web,
            Features::default(),
        ),
        e(
            "graphVizdb",
            2015,
            &[23, 22],
            "generic",
            Web,
            feat!(keyword, filter, sampling, disk),
        ),
    ]
}

/// The systems of §§3.1, 3.3, 3.5, 3.6 that appear outside the two
/// tables (category metadata only — the survey tabulates no feature
/// matrix for them).
pub fn other_systems() -> Vec<SystemEntry> {
    let e = |name, year, refs, category, app_type| SystemEntry {
        name,
        year,
        refs,
        category,
        domain: "generic",
        data_types: &[],
        vis_types: &[],
        features: Features::default(),
        app_type,
        in_table1: false,
        in_table2: false,
    };
    vec![
        // §3.1 browsers & exploratory systems.
        e("Haystack", 2004, &[111], Browser, Desktop),
        e("Noadster", 2005, &[113], Browser, Web),
        e("Piggy Bank", 2005, &[66], Browser, Web),
        e("Tabulator", 2006, &[21], Browser, Web),
        e("/facet", 2006, &[62], Browser, Web),
        e("Disco", 2007, &[], Browser, Web),
        e("LENA", 2008, &[87], Browser, Web),
        e("Humboldt", 2008, &[86], Browser, Web),
        e("Explorator", 2009, &[7], Browser, Web),
        e("Marbles", 2009, &[], Browser, Web),
        e("URI Burner", 2009, &[], Browser, Web),
        e("DBpedia Mobile", 2009, &[18], DomainSpecific, Mobile),
        e("LESS", 2010, &[13], Browser, Web),
        e("gFacet", 2010, &[57], Browser, Web),
        e("VisiNav", 2010, &[53], Browser, Web),
        e("Visor", 2011, &[110], Browser, Web),
        e("Information Workbench", 2011, &[52], Browser, Web),
        e("Who's Who", 2011, &[32], DomainSpecific, Mobile),
        // §3.3 domain/vocabulary-specific systems.
        e("Map4rdf", 2012, &[92], DomainSpecific, Web),
        e("LinkedGeoData Browser", 2012, &[121], DomainSpecific, Web),
        e("SexTant", 2013, &[20], DomainSpecific, Web),
        e("CubeViz", 2013, &[43, 114], DomainSpecific, Web),
        e("VISU", 2013, &[6], DomainSpecific, Web),
        e("Facete", 2014, &[122], DomainSpecific, Web),
        e("Spacetime", 2014, &[133], DomainSpecific, Web),
        e("Payola Data Cube", 2014, &[60], DomainSpecific, Web),
        e("OpenCube Toolkit", 2014, &[75], DomainSpecific, Web),
        e("LDCE", 2014, &[79], DomainSpecific, Web),
        e("Linked Statistical Maps", 2014, &[106], DomainSpecific, Web),
        e("DBpedia Atlas", 2015, &[132], DomainSpecific, Web),
        // §3.5 ontology systems outside Table 2.
        e("CropCircles", 2006, &[137], Ontology, Desktop),
        e("Knoocks", 2008, &[88], Ontology, Desktop),
        // §3.6 libraries.
        e(
            "Sgvizler",
            2012,
            &[120],
            Category::Library,
            AppType::Library,
        ),
        e(
            "Visualbox",
            2013,
            &[50],
            Category::Library,
            AppType::Library,
        ),
    ]
}

/// Every system in the corpus: Table 1 ∪ Table 2 ∪ the rest.
pub fn all_systems() -> Vec<SystemEntry> {
    let mut out = table1_systems();
    out.extend(table2_systems());
    out.extend(other_systems());
    out
}

/// Looks up a system by (case-insensitive) name. Table entries shadow
/// the metadata-only entries.
pub fn find(name: &str) -> Option<SystemEntry> {
    all_systems()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_the_paper() {
        assert_eq!(table1_systems().len(), 11);
        assert_eq!(table2_systems().len(), 21);
    }

    #[test]
    fn table1_is_sorted_by_year() {
        let years: Vec<u16> = table1_systems().iter().map(|s| s.year).collect();
        assert!(years.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn table2_is_sorted_by_year() {
        let years: Vec<u16> = table2_systems().iter().map(|s| s.year).collect();
        assert!(years.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn synopsviz_row_matches_paper() {
        let s = find("SynopsViz").unwrap();
        assert_eq!(s.year, 2014);
        assert_eq!(s.data_type_codes(), "N, T, H");
        assert_eq!(s.vis_type_codes(), "C, P, T, TL");
        assert!(s.features.recommendation);
        assert!(s.features.preferences);
        assert!(s.features.statistics);
        assert!(!s.features.sampling);
        assert!(s.features.aggregation);
        assert!(s.features.incremental);
        assert!(s.features.disk);
    }

    #[test]
    fn graphvizdb_row_matches_paper() {
        let s = table2_systems()
            .into_iter()
            .find(|s| s.name == "graphVizdb")
            .unwrap();
        assert_eq!(s.year, 2015);
        assert!(s.features.keyword && s.features.filter && s.features.sampling && s.features.disk);
        assert!(!s.features.aggregation && !s.features.incremental);
        assert_eq!(s.app_type, AppType::Web);
    }

    #[test]
    fn lodwheel_appears_in_both_tables() {
        let t1 = table1_systems()
            .into_iter()
            .filter(|s| s.name == "LODWheel")
            .count();
        let t2 = table2_systems()
            .into_iter()
            .filter(|s| s.name == "LODWheel")
            .count();
        assert_eq!((t1, t2), (1, 1));
    }

    #[test]
    fn ontology_rows_of_table2_are_flagged() {
        let onto: Vec<&str> = table2_systems()
            .iter()
            .filter(|s| s.domain == "ontology")
            .map(|s| s.name)
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        assert_eq!(
            onto,
            vec!["GrOWL", "NodeTrix", "FlexViz", "KC-Viz", "GLOW", "OntoTrix", "VOWL 2"]
        );
    }

    #[test]
    fn names_are_unique_within_each_table() {
        for systems in [table1_systems(), table2_systems()] {
            let mut names: Vec<&str> = systems.iter().map(|s| s.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), systems.len());
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("gephi").is_some());
        assert!(find("GEPHI").is_some());
        assert!(find("NotASystem").is_none());
    }

    #[test]
    fn corpus_has_all_categories() {
        let systems = all_systems();
        for c in Category::all() {
            assert!(
                systems.iter().any(|s| s.category == c),
                "no systems in {c:?}"
            );
        }
        assert!(systems.len() > 60);
    }
}
