//! The §4 gap analysis, re-derived by query.
//!
//! The survey's discussion section makes quantified claims about the
//! corpus. Each function here computes one of them *from the records*
//! (experiments C1–C5 of `EXPERIMENTS.md`), so the claims are checkable
//! rather than transcribed.

use crate::corpus::{all_systems, table1_systems, table2_systems};
use crate::model::Category;

/// **C1** — "none of the \[generic\] systems, with the exceptions of
/// SynopsViz and VizBoard cases, adopt approximation techniques."
/// Returns the generic systems that *do* use approximation.
pub fn c1_generic_systems_with_approximation() -> Vec<&'static str> {
    table1_systems()
        .iter()
        .filter(|s| s.uses_approximation())
        .map(|s| s.name)
        .collect()
}

/// **C2** — "most of the existing systems (except for SynopsViz) do not
/// exploit external memory during runtime." Returns the Table-1 systems
/// with the Disk feature.
pub fn c2_generic_systems_with_disk() -> Vec<&'static str> {
    table1_systems()
        .iter()
        .filter(|s| s.features.disk)
        .map(|s| s.name)
        .collect()
}

/// **C3** — "an increasing number of recent systems focus on providing
/// recommendation mechanisms." Returns, per period, the fraction of
/// Table-1 systems with recommendation: (≤2012, ≥2013).
pub fn c3_recommendation_trend() -> (f64, f64) {
    let frac = |pred: &dyn Fn(u16) -> bool| {
        let sys: Vec<_> = table1_systems()
            .into_iter()
            .filter(|s| pred(s.year))
            .collect();
        if sys.is_empty() {
            return 0.0;
        }
        sys.iter().filter(|s| s.features.recommendation).count() as f64 / sys.len() as f64
    };
    (frac(&|y| y <= 2012), frac(&|y| y >= 2013))
}

/// **C4** — "although several systems offer sampling or aggregation
/// mechanisms, most of these systems load the whole graph in main
/// memory." Returns (graph systems with approximation, graph systems
/// with runtime disk use, total).
pub fn c4_graph_systems_memory_profile() -> (usize, usize, usize) {
    let systems = table2_systems();
    let approx = systems.iter().filter(|s| s.uses_approximation()).count();
    let disk = systems.iter().filter(|s| s.features.disk).count();
    (approx, disk, systems.len())
}

/// **C5** — the taxonomy: systems per §3 category.
pub fn c5_taxonomy_counts() -> Vec<(Category, usize)> {
    let systems = all_systems();
    Category::all()
        .into_iter()
        .map(|c| (c, systems.iter().filter(|s| s.category == c).count()))
        .collect()
}

/// A further §4 observation: feature prevalence across Table 2 (how many
/// graph systems have each capability) — the input to the "modern WoD
/// systems should adopt..." recommendations.
pub fn table2_feature_prevalence() -> Vec<(&'static str, usize)> {
    let systems = table2_systems();
    let count =
        |f: &dyn Fn(&crate::model::SystemEntry) -> bool| systems.iter().filter(|s| f(s)).count();
    vec![
        ("keyword", count(&|s| s.features.keyword)),
        ("filter", count(&|s| s.features.filter)),
        ("sampling", count(&|s| s.features.sampling)),
        ("aggregation", count(&|s| s.features.aggregation)),
        ("incremental", count(&|s| s.features.incremental)),
        ("disk", count(&|s| s.features.disk)),
    ]
}

/// Renders the full §4 analysis as a report.
pub fn report() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Section 4 gap analysis, derived from the corpus ==\n"
    );
    let c1 = c1_generic_systems_with_approximation();
    let _ = writeln!(
        out,
        "C1  generic systems using approximation: {:?} (paper: only SynopsViz & VizBoard)",
        c1
    );
    let c2 = c2_generic_systems_with_disk();
    let _ = writeln!(
        out,
        "C2  generic systems using disk at runtime: {:?} (paper: only SynopsViz)",
        c2
    );
    let (early, late) = c3_recommendation_trend();
    let _ = writeln!(
        out,
        "C3  recommendation adoption: {:.0}% of systems ≤2012 vs {:.0}% of systems ≥2013",
        early * 100.0,
        late * 100.0
    );
    let (approx, disk, total) = c4_graph_systems_memory_profile();
    let _ = writeln!(
        out,
        "C4  graph systems: {approx}/{total} use approximation but only {disk}/{total} use disk"
    );
    let _ = writeln!(out, "C5  taxonomy:");
    for (c, n) in c5_taxonomy_counts() {
        let _ = writeln!(out, "      {:<48} {n}", c.title());
    }
    let _ = writeln!(out, "    Table-2 feature prevalence:");
    for (f, n) in table2_feature_prevalence() {
        let _ = writeln!(out, "      {f:<12} {n}/21");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_matches_the_papers_claim() {
        let mut got = c1_generic_systems_with_approximation();
        got.sort_unstable();
        assert_eq!(got, vec!["SynopsViz", "VizBoard"]);
    }

    #[test]
    fn c2_matches_the_papers_claim() {
        assert_eq!(c2_generic_systems_with_disk(), vec!["SynopsViz"]);
    }

    #[test]
    fn c3_shows_a_rising_trend() {
        let (early, late) = c3_recommendation_trend();
        assert!(
            late > early,
            "recommendation must be more common in recent systems: {early} vs {late}"
        );
        // ≥2013: LDVM, LDVizWiz, SynopsViz, Vis Wizard, LinkDaViz have it,
        // Payola and ViCoMap do not → 5/7.
        assert!((late - 5.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn c4_most_graph_systems_are_memory_bound() {
        let (approx, disk, total) = c4_graph_systems_memory_profile();
        assert_eq!(total, 21);
        assert!(approx >= 10, "several systems do sample/aggregate");
        assert_eq!(disk, 3, "but only PGV, Cytospace, graphVizdb hit disk");
        assert!(disk * 3 < approx, "the paper's point: approximation ≫ disk");
    }

    #[test]
    fn c5_counts_cover_the_taxonomy() {
        let counts = c5_taxonomy_counts();
        assert_eq!(counts.len(), 6);
        let total: usize = counts.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, crate::corpus::all_systems().len());
        let graph_based = counts
            .iter()
            .find(|(c, _)| *c == Category::GraphBased)
            .unwrap()
            .1;
        assert_eq!(graph_based, 14); // 21 table-2 rows minus 7 ontology rows
    }

    #[test]
    fn prevalence_is_consistent_with_c4() {
        let prev: std::collections::HashMap<&str, usize> =
            table2_feature_prevalence().into_iter().collect();
        assert_eq!(prev["disk"], 3);
        assert_eq!(prev["incremental"], 3); // PGV, Trisolda, ZoomRDF
                                            // RDF-Gravity, IsaViz, RDF graph visualizer, GrOWL, Cytospace,
                                            // FlexViz, Lodlive, graphVizdb.
        assert_eq!(prev["keyword"], 8);
        assert!(prev["sampling"] >= 9);
    }

    #[test]
    fn report_mentions_every_claim() {
        let r = report();
        for c in ["C1", "C2", "C3", "C4", "C5"] {
            assert!(r.contains(c), "report missing {c}");
        }
        assert!(r.contains("SynopsViz"));
    }
}
