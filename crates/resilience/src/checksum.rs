//! Fast 64-bit page checksums.
//!
//! The disk path must *detect* torn writes and bit rot rather than decode
//! garbage into triples (§4's disk-based runtime access is only viable if
//! a bad page is an error, not silent wrong answers). The checksum runs on
//! every page decode, so it must cost a small fraction of the decode
//! itself: this one processes the page as little-endian `u64` words with a
//! multiply-xor mix (SplitMix-style finalizer per word), touching each
//! byte once — roughly 1 mul + 2 xors per 8 bytes, far below the per-
//! triple cost of decoding.

/// Checksums `data` into 64 bits. Stable across platforms (little-endian
/// word reads by construction) and sensitive to single-bit flips anywhere
/// in the input.
///
/// Four independent accumulator lanes process 32 bytes per iteration so
/// the multiplies pipeline instead of forming one serial dependency
/// chain — that alone is ~4× over the naive word-at-a-time loop, and is
/// what keeps the fault-free overhead of a cold page fetch inside the
/// `BENCH_PR2.json` gate. Each lane step is `(h ^ w) * odd-constant`,
/// which is invertible in `w`, so any single-word change flips its lane
/// and therefore the combined hash.
pub fn page_checksum(data: &[u8]) -> u64 {
    const M0: u64 = 0xBF58_476D_1CE4_E5B9;
    const M1: u64 = 0x94D0_49BB_1331_11EB;
    const M2: u64 = 0x2545_F491_4F6C_DD1D;
    const M3: u64 = 0x9E37_79B9_7F4A_7C15;
    let word = |c: &[u8]| u64::from_le_bytes(c.try_into().expect("exact 8-byte chunk"));
    let mut h0: u64 = M3 ^ (data.len() as u64);
    let mut h1: u64 = 0x6A09_E667_F3BC_C909;
    let mut h2: u64 = 0xBB67_AE85_84CA_A73B;
    let mut h3: u64 = 0x3C6E_F372_FE94_F82B;
    let mut blocks = data.chunks_exact(32);
    for b in &mut blocks {
        h0 = (h0 ^ word(&b[0..8])).wrapping_mul(M0);
        h1 = (h1 ^ word(&b[8..16])).wrapping_mul(M1);
        h2 = (h2 ^ word(&b[16..24])).wrapping_mul(M2);
        h3 = (h3 ^ word(&b[24..32])).wrapping_mul(M3);
    }
    let mut chunks = blocks.remainder().chunks_exact(8);
    for c in &mut chunks {
        h0 ^= word(c);
        h0 = h0.wrapping_mul(M0);
        h0 ^= h0 >> 29;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h0 ^= u64::from_le_bytes(tail);
        h0 = h0.wrapping_mul(M1);
        h0 ^= h0 >> 32;
    }
    // Fold the lanes together; each step is invertible in either input.
    let mut h = h0;
    h = (h ^ h1).wrapping_mul(M0);
    h ^= h >> 29;
    h = (h ^ h2).wrapping_mul(M1);
    h ^= h >> 31;
    h = (h ^ h3).wrapping_mul(M2);
    // Final avalanche so trailing-zero pages don't collapse.
    h = (h ^ (h >> 31)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let page = vec![7u8; 8192];
        assert_eq!(page_checksum(&page), page_checksum(&page));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let page = vec![0u8; 8192];
        let base = page_checksum(&page);
        // Positions cover every accumulator lane (0/8/16/24-byte offsets
        // within a 32-byte block) plus the scalar tail.
        for pos in [0usize, 1, 7, 8, 15, 16, 23, 24, 31, 4095, 8191] {
            let mut flipped = page.clone();
            flipped[pos] ^= 1;
            assert_ne!(base, page_checksum(&flipped), "flip at {pos} undetected");
        }
    }

    #[test]
    fn length_is_part_of_the_hash() {
        assert_ne!(page_checksum(&[0u8; 16]), page_checksum(&[0u8; 24]));
    }

    #[test]
    fn scalar_remainder_words_hash() {
        // 40 bytes = one 32-byte block + one scalar word.
        let base = vec![3u8; 40];
        let mut flipped = base.clone();
        flipped[36] ^= 1;
        assert_ne!(page_checksum(&base), page_checksum(&flipped));
    }

    #[test]
    fn non_multiple_of_eight_tails_hash() {
        let a = page_checksum(b"hello world");
        let mut v = b"hello world".to_vec();
        v[10] ^= 0x40;
        assert_ne!(a, page_checksum(&v));
    }
}
