//! Cooperative query budgets.
//!
//! §2's setting — "machines with limited computational and memory
//! resources" serving interactive exploration — means a query's cost must
//! be *bounded by what the user will wait for*, not by the data. A
//! [`Budget`] carries that bound: an optional wall-clock deadline, row and
//! memory caps, and a cancellation flag the UI thread can flip. Execution
//! loops (the `wodex-exec` chunk loops, the SPARQL join) poll
//! [`Budget::exceeded`] at chunk granularity and, instead of failing,
//! stop early and flag the partial answer as [`Degraded`] with the
//! fraction of work that completed — the SynopsViz/HETree stance of
//! returning a coarser answer under pressure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why an operation was cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The cooperative cancellation flag was set.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The budgeted number of rows was produced.
    RowCapExceeded,
    /// The budgeted number of bytes was allocated.
    MemoryCapExceeded,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DegradeReason::Cancelled => "cancelled",
            DegradeReason::DeadlineExceeded => "deadline exceeded",
            DegradeReason::RowCapExceeded => "row cap exceeded",
            DegradeReason::MemoryCapExceeded => "memory cap exceeded",
        };
        f.write_str(s)
    }
}

/// The degradation tag on a partial result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degraded {
    /// What budget dimension ran out.
    pub reason: DegradeReason,
    /// Fraction of the interrupted stage's work that completed, in
    /// \[0, 1\]. A coverage of 0.4 means the partial answer reflects ~40%
    /// of the candidate rows the stage would have processed.
    pub coverage: f64,
}

/// A resource budget shared by every stage of one operation.
///
/// Charging and checking are lock-free; the budget is `Sync` so parallel
/// workers poll the same instance. An all-`None` budget
/// ([`Budget::unlimited`]) never degrades and its checks compile down to
/// a few branch-on-zero loads — the fault-free fast path.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    row_cap: Option<u64>,
    mem_cap: Option<u64>,
    rows: AtomicU64,
    bytes: AtomicU64,
    cancelled: AtomicBool,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits: never degrades unless cancelled.
    pub const fn unlimited() -> Budget {
        Budget {
            deadline: None,
            row_cap: None,
            mem_cap: None,
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Adds a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Budget {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Adds a deadline that has already passed — every subsequent check
    /// degrades immediately (useful for tests and "preview only" modes).
    pub fn with_expired_deadline(mut self) -> Budget {
        self.deadline = Some(Instant::now() - Duration::from_millis(1));
        self
    }

    /// Caps the number of result rows charged via [`Budget::charge_rows`].
    pub fn with_row_cap(mut self, rows: u64) -> Budget {
        self.row_cap = Some(rows);
        self
    }

    /// Caps the bytes charged via [`Budget::charge_bytes`].
    pub fn with_memory_cap(mut self, bytes: u64) -> Budget {
        self.mem_cap = Some(bytes);
        self
    }

    /// True when no limit is configured (cancellation aside) — execution
    /// layers use this to take the unbudgeted fast path.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.row_cap.is_none()
            && self.mem_cap.is_none()
            && !self.cancelled.load(Ordering::Relaxed)
    }

    /// Flips the cooperative cancellation flag.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Records `n` produced rows.
    pub fn charge_rows(&self, n: u64) {
        if self.row_cap.is_some() {
            self.rows.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` allocated bytes.
    pub fn charge_bytes(&self, n: u64) {
        if self.mem_cap.is_some() {
            self.bytes.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Rows charged so far.
    pub fn rows_charged(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// The row cap, if any — degradation paths use it to size samples.
    pub fn row_cap(&self) -> Option<u64> {
        self.row_cap
    }

    /// Remaining wall-clock time, if a deadline is set.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The first exhausted dimension, or `None` while within budget.
    ///
    /// Cancellation dominates (it is an explicit user action), then the
    /// deadline, then the caps.
    pub fn exceeded(&self) -> Option<DegradeReason> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(DegradeReason::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(DegradeReason::DeadlineExceeded);
            }
        }
        if let Some(cap) = self.row_cap {
            if self.rows.load(Ordering::Relaxed) >= cap {
                return Some(DegradeReason::RowCapExceeded);
            }
        }
        if let Some(cap) = self.mem_cap {
            if self.bytes.load(Ordering::Relaxed) >= cap {
                return Some(DegradeReason::MemoryCapExceeded);
            }
        }
        None
    }

    /// [`Budget::exceeded`] as a `Result` for `?`-style propagation.
    pub fn check(&self) -> Result<(), DegradeReason> {
        match self.exceeded() {
            Some(r) => Err(r),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_degrades() {
        let b = Budget::unlimited();
        b.charge_rows(1_000_000);
        b.charge_bytes(u64::MAX / 2);
        assert_eq!(b.exceeded(), None);
        assert!(b.is_unlimited());
    }

    #[test]
    fn row_cap_trips_after_charge() {
        let b = Budget::unlimited().with_row_cap(100);
        assert!(!b.is_unlimited());
        b.charge_rows(99);
        assert_eq!(b.exceeded(), None);
        b.charge_rows(1);
        assert_eq!(b.exceeded(), Some(DegradeReason::RowCapExceeded));
    }

    #[test]
    fn memory_cap_trips() {
        let b = Budget::unlimited().with_memory_cap(1024);
        b.charge_bytes(2048);
        assert_eq!(b.exceeded(), Some(DegradeReason::MemoryCapExceeded));
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let b = Budget::unlimited().with_expired_deadline();
        assert_eq!(b.exceeded(), Some(DegradeReason::DeadlineExceeded));
        assert!(b.check().is_err());
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(b.exceeded(), None);
        assert!(b.remaining_time().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancellation_dominates_everything() {
        let b = Budget::unlimited().with_row_cap(0).with_expired_deadline();
        b.cancel();
        assert_eq!(b.exceeded(), Some(DegradeReason::Cancelled));
    }

    #[test]
    fn uncharged_dimensions_cost_nothing() {
        // Charging a dimension with no cap is a no-op (no atomic traffic).
        let b = Budget::unlimited().with_row_cap(10);
        b.charge_bytes(1 << 40);
        assert_eq!(b.exceeded(), None);
    }
}
