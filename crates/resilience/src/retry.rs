//! Retry with capped exponential backoff.
//!
//! Transient disk faults (flaky reads, torn reads caught by checksum) are
//! the common case in the fault model; the paged store absorbs them with a
//! bounded retry loop rather than surfacing every blip to the query layer.
//! Backoff doubles from `base_delay` up to `max_delay` — deterministic (no
//! jitter) so chaos tests are reproducible — and every outcome is counted
//! in [`RetryStats`], the per-operation observability the resilience layer
//! reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use wodex_obs::Counter;

/// Global registry mirrors of every [`RetryStats`] in the process: the
/// per-instance stats stay authoritative for a single store's callers,
/// while these feed `/metrics` and the cross-layer conservation invariant
/// `retries == attempts - ops`.
struct RetryMetrics {
    ops: Arc<Counter>,
    attempts: Arc<Counter>,
    retries: Arc<Counter>,
    recoveries: Arc<Counter>,
    giveups: Arc<Counter>,
}

fn retry_metrics() -> &'static RetryMetrics {
    static METRICS: OnceLock<RetryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        RetryMetrics {
            ops: r.counter(
                "wodex_retry_ops_total",
                "Retry-wrapped operations started (first tries)",
            ),
            attempts: r.counter(
                "wodex_retry_attempts_total",
                "Individual attempts across retry-wrapped operations",
            ),
            retries: r.counter(
                "wodex_retry_retries_total",
                "Transient failures that were retried",
            ),
            recoveries: r.counter(
                "wodex_retry_recoveries_total",
                "Operations that succeeded only after at least one retry",
            ),
            giveups: r.counter(
                "wodex_retry_giveups_total",
                "Operations that failed permanently",
            ),
        }
    })
}

/// SplitMix64 step — the workspace's std-only PRNG (same generator as
/// `wodex-synth`'s seeding path), enough statistical quality to
/// decorrelate backoff schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh jitter seed per [`RetryPolicy::run`] call. A global counter
/// (not wall clock) keeps the process deterministic enough for chaos
/// sweeps while still giving every concurrent retrier a distinct stream.
fn jitter_seed() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0x005E_ED0F_5EED);
    NEXT.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// How hard to retry a transient fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Decorrelate the backoff schedule with jitter. Deterministic capped
    /// doubling is right for a *private* dependency (an in-process disk:
    /// reproducible chaos sweeps, no other clients to collide with), but
    /// against a *shared* dependency — a recovering shard with N
    /// coordinators retrying it — identical schedules synchronize into
    /// waves that re-kill it. With jitter on, each retry sleeps
    /// `uniform(base_delay, prev * 3)` capped at `max_delay`
    /// ("decorrelated jitter"), so concurrent retriers spread out.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        // Tuned for an in-process "disk": microsecond-scale backoff keeps
        // the chaos suite fast while still exercising the schedule.
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_millis(2),
            jitter: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — the pre-resilience behaviour.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: false,
        }
    }

    /// The backoff before retry number `retry` (1-based).
    pub fn delay_for(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        (self.base_delay * factor).min(self.max_delay)
    }

    /// One step of the decorrelated-jitter schedule: a sleep drawn
    /// uniformly from `[base_delay, max(base_delay, prev * 3)]`, capped at
    /// `max_delay`. Returns the drawn sleep, which the caller feeds back
    /// as the next step's `prev`. The bound always holds:
    /// `base_delay.min(max_delay) <= sleep <= max_delay`.
    pub fn jittered_delay(&self, prev: Duration, rng_state: &mut u64) -> Duration {
        let base = self.base_delay.as_nanos() as u64;
        let hi = (prev.as_nanos() as u64).saturating_mul(3).max(base);
        let span = hi - base;
        let draw = if span == 0 {
            base
        } else {
            base + splitmix64(rng_state) % (span + 1)
        };
        Duration::from_nanos(draw).min(self.max_delay)
    }

    /// Runs `op` up to `max_attempts` times, sleeping between attempts.
    ///
    /// `op` receives the 1-based attempt number. An error for which
    /// `is_transient` returns false aborts immediately; a transient error
    /// on the final attempt is handed to `exhausted` so the caller can
    /// wrap it (e.g. into `StoreError::RetriesExhausted`). Every attempt,
    /// retry, recovery and giveup is recorded in `stats`.
    pub fn run<T, E>(
        &self,
        stats: &RetryStats,
        is_transient: impl Fn(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
        exhausted: impl FnOnce(u32, E) -> E,
    ) -> Result<T, E> {
        let m = retry_metrics();
        let attempts = self.max_attempts.max(1);
        let mut retried = false;
        let mut rng = jitter_seed();
        let mut prev_sleep = self.base_delay;
        stats.ops.fetch_add(1, Ordering::Relaxed);
        m.ops.inc();
        for attempt in 1..=attempts {
            stats.attempts.fetch_add(1, Ordering::Relaxed);
            m.attempts.inc();
            match op(attempt) {
                Ok(v) => {
                    if retried {
                        stats.recoveries.fetch_add(1, Ordering::Relaxed);
                        m.recoveries.inc();
                    }
                    return Ok(v);
                }
                Err(e) if is_transient(&e) && attempt < attempts => {
                    stats.retries.fetch_add(1, Ordering::Relaxed);
                    m.retries.inc();
                    retried = true;
                    let sleep = if self.jitter {
                        prev_sleep = self.jittered_delay(prev_sleep, &mut rng);
                        prev_sleep
                    } else {
                        self.delay_for(attempt)
                    };
                    std::thread::sleep(sleep);
                }
                Err(e) => {
                    stats.giveups.fetch_add(1, Ordering::Relaxed);
                    m.giveups.inc();
                    return Err(if is_transient(&e) {
                        exhausted(attempts, e)
                    } else {
                        e
                    });
                }
            }
        }
        unreachable!("loop returns on every path");
    }
}

/// Lock-free retry counters (shared by concurrent readers of one store).
#[derive(Debug, Default)]
pub struct RetryStats {
    /// Retry-wrapped operations started (exactly one per [`RetryPolicy::run`]
    /// call — the "first tries"). `retries == attempts - ops` always holds.
    pub ops: AtomicU64,
    /// Operations attempted (every try, including firsts).
    pub attempts: AtomicU64,
    /// Transient failures that were retried.
    pub retries: AtomicU64,
    /// Operations that succeeded only after at least one retry.
    pub recoveries: AtomicU64,
    /// Operations that failed permanently (transient exhausted or
    /// non-transient error).
    pub giveups: AtomicU64,
}

impl RetryStats {
    /// A zeroed counter set.
    pub fn new() -> RetryStats {
        RetryStats::default()
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> RetrySnapshot {
        RetrySnapshot {
            ops: self.ops.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            giveups: self.giveups.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value snapshot of [`RetryStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetrySnapshot {
    /// See [`RetryStats::ops`].
    pub ops: u64,
    /// See [`RetryStats::attempts`].
    pub attempts: u64,
    /// See [`RetryStats::retries`].
    pub retries: u64,
    /// See [`RetryStats::recoveries`].
    pub recoveries: u64,
    /// See [`RetryStats::giveups`].
    pub giveups: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[derive(Debug, PartialEq)]
    enum E {
        Soft,
        Hard,
        Exhausted(u32),
    }

    fn soft(e: &E) -> bool {
        matches!(e, E::Soft)
    }

    #[test]
    fn first_try_success_records_one_attempt() {
        let stats = RetryStats::new();
        let r: Result<i32, E> =
            RetryPolicy::default().run(&stats, soft, |_| Ok(42), |n, _| E::Exhausted(n));
        assert_eq!(r, Ok(42));
        let s = stats.snapshot();
        assert_eq!(
            (s.attempts, s.retries, s.recoveries, s.giveups),
            (1, 0, 0, 0)
        );
    }

    #[test]
    fn transient_then_success_counts_a_recovery() {
        let stats = RetryStats::new();
        let fails = Cell::new(2u32);
        let r: Result<i32, E> = RetryPolicy::default().run(
            &stats,
            soft,
            |_| {
                if fails.get() > 0 {
                    fails.set(fails.get() - 1);
                    Err(E::Soft)
                } else {
                    Ok(7)
                }
            },
            |n, _| E::Exhausted(n),
        );
        assert_eq!(r, Ok(7));
        let s = stats.snapshot();
        assert_eq!(
            (s.attempts, s.retries, s.recoveries, s.giveups),
            (3, 2, 1, 0)
        );
    }

    #[test]
    fn persistent_transient_exhausts_with_wrapper() {
        let stats = RetryStats::new();
        let r: Result<i32, E> =
            RetryPolicy::default().run(&stats, soft, |_| Err(E::Soft), |n, _| E::Exhausted(n));
        assert_eq!(r, Err(E::Exhausted(4)));
        let s = stats.snapshot();
        assert_eq!((s.attempts, s.retries, s.giveups), (4, 3, 1));
    }

    #[test]
    fn hard_error_aborts_immediately() {
        let stats = RetryStats::new();
        let r: Result<i32, E> =
            RetryPolicy::default().run(&stats, soft, |_| Err(E::Hard), |n, _| E::Exhausted(n));
        assert_eq!(r, Err(E::Hard));
        assert_eq!(stats.snapshot().attempts, 1);
        assert_eq!(stats.snapshot().giveups, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_micros(500),
            jitter: false,
        };
        assert_eq!(p.delay_for(1), Duration::from_micros(100));
        assert_eq!(p.delay_for(2), Duration::from_micros(200));
        assert_eq!(p.delay_for(3), Duration::from_micros(400));
        assert_eq!(p.delay_for(4), Duration::from_micros(500)); // capped
        assert_eq!(p.delay_for(30), Duration::from_micros(500));
    }

    #[test]
    fn jittered_delay_stays_within_bounds() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_micros(900),
            jitter: true,
        };
        let mut rng = 42u64;
        let mut prev = p.base_delay;
        for _ in 0..10_000 {
            let d = p.jittered_delay(prev, &mut rng);
            // The decorrelated-jitter bound: never below base (unless
            // capped), never above the cap, never above 3x the previous
            // sleep.
            assert!(d >= p.base_delay.min(p.max_delay), "below base: {d:?}");
            assert!(d <= p.max_delay, "above cap: {d:?}");
            assert!(d <= (prev * 3).max(p.base_delay), "above 3x prev: {d:?}");
            prev = d;
        }
    }

    #[test]
    fn jittered_delay_actually_spreads() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(10),
            jitter: true,
        };
        let mut rng = 7u64;
        let mut seen = std::collections::BTreeSet::new();
        let mut prev = p.base_delay * 8;
        for _ in 0..64 {
            seen.insert(p.jittered_delay(prev, &mut rng));
            prev = p.base_delay * 8; // hold the range fixed
        }
        assert!(seen.len() > 32, "draws collapsed: {} distinct", seen.len());
    }

    #[test]
    fn zero_base_policy_never_sleeps_negative_span() {
        // RetryPolicy::none() has all-zero durations; the jitter math
        // must not underflow.
        let p = RetryPolicy::none();
        let mut rng = 1u64;
        assert_eq!(p.jittered_delay(Duration::ZERO, &mut rng), Duration::ZERO);
    }

    #[test]
    fn attempt_numbers_are_one_based() {
        let stats = RetryStats::new();
        let seen = std::cell::RefCell::new(Vec::new());
        let _: Result<(), E> = RetryPolicy::default().run(
            &stats,
            soft,
            |a| {
                seen.borrow_mut().push(a);
                Err(E::Soft)
            },
            |n, _| E::Exhausted(n),
        );
        assert_eq!(*seen.borrow(), vec![1, 2, 3, 4]);
    }
}
