//! # wodex-resilience — fault tolerance & budgeted graceful degradation
//!
//! The survey frames every WoD exploration task as running under **limited
//! resources** (§2) against **disk-resident data accessed at runtime** (§4).
//! Both framings imply the same engineering stance: the disk can fail or
//! return garbage, and a query can cost more than the session is willing to
//! pay. This crate is the workspace's shared substrate for both:
//!
//! * [`StoreError`] — the typed error taxonomy threaded from the page
//!   backend up through the buffer pool, the paged store, the prefetcher
//!   and the `Explorer` façade. Transient faults are distinguished from
//!   permanent I/O failures and detected corruption, so callers can retry
//!   the former and surface the latter.
//! * [`RetryPolicy`] / [`RetryStats`] — capped exponential backoff for
//!   transient faults, with per-operation attempt/retry/giveup counters.
//! * [`Budget`] — a cooperative resource budget (wall-clock deadline, row
//!   cap, memory cap, cancellation flag) checked inside the `wodex-exec`
//!   chunk loops and the SPARQL evaluator. Over-budget work does not error:
//!   it **degrades** — partial results come back flagged
//!   [`Degraded`]`{ reason, coverage }`, the SynopsViz/HETree stance of
//!   answering an over-budget request with a coarser answer rather than a
//!   failure.
//! * [`checksum`] — a fast 64-bit page checksum so torn or corrupt pages
//!   are *detected* at decode time instead of being silently interpreted.

pub mod breaker;
pub mod budget;
pub mod checksum;
pub mod error;
pub mod retry;

pub use breaker::{Admission, BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker};
pub use budget::{Budget, DegradeReason, Degraded};
pub use checksum::page_checksum;
pub use error::StoreError;
pub use retry::{RetryPolicy, RetrySnapshot, RetryStats};
