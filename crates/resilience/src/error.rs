//! The typed store-error taxonomy.
//!
//! Three failure classes, because callers treat them differently:
//!
//! * **Transient** — a retry may succeed (flaky read, latency-induced
//!   timeout, torn read detected by checksum). The paged store retries
//!   these under a [`crate::RetryPolicy`].
//! * **Permanent I/O** — the operation will not succeed by repetition
//!   (file gone, page id out of range, write refused).
//! * **Corruption** — the bytes came back but fail validation (checksum
//!   mismatch, impossible header). Detected, never silently decoded.

/// An error from the disk path: page backend, buffer pool, paged store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Permanent I/O failure on `op` (seek/read/write/create).
    Io {
        /// The operation that failed.
        op: &'static str,
        /// Human-readable cause (from the OS error).
        detail: String,
    },
    /// A transient fault on `op`; retrying may succeed.
    Transient {
        /// The operation that faulted.
        op: &'static str,
        /// What the fault looked like.
        detail: String,
    },
    /// Page `page` failed checksum or structural validation.
    Corrupt {
        /// The offending page id.
        page: u32,
        /// What failed (checksum mismatch, bad count, short page).
        detail: String,
    },
    /// A read referenced a page that does not exist.
    NoSuchPage {
        /// The requested page id.
        page: u32,
        /// How many pages the backend holds.
        pages: u32,
    },
    /// A transient fault persisted through every allowed retry.
    RetriesExhausted {
        /// The operation that kept faulting.
        op: &'static str,
        /// Attempts made (including the first).
        attempts: u32,
        /// The final underlying error, rendered.
        last: String,
    },
}

impl StoreError {
    /// True when a retry may succeed (the retry loop's gate).
    pub fn is_transient(&self) -> bool {
        // Corruption is retried too: a torn *read* yields fresh bytes on
        // the next attempt, while persistent on-disk corruption will keep
        // failing and surface as RetriesExhausted→Corrupt at the caller.
        matches!(
            self,
            StoreError::Transient { .. } | StoreError::Corrupt { .. }
        )
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, detail } => write!(f, "i/o error during {op}: {detail}"),
            StoreError::Transient { op, detail } => {
                write!(f, "transient fault during {op}: {detail}")
            }
            StoreError::Corrupt { page, detail } => {
                write!(f, "page {page} is corrupt: {detail}")
            }
            StoreError::NoSuchPage { page, pages } => {
                write!(f, "page {page} out of range (backend holds {pages})")
            }
            StoreError::RetriesExhausted { op, attempts, last } => {
                write!(f, "{op} still failing after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io {
            op: "i/o",
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_and_corrupt_are_retryable_io_is_not() {
        let t = StoreError::Transient {
            op: "read_page",
            detail: "injected".into(),
        };
        let c = StoreError::Corrupt {
            page: 3,
            detail: "checksum".into(),
        };
        let p = StoreError::Io {
            op: "read_page",
            detail: "gone".into(),
        };
        assert!(t.is_transient());
        assert!(c.is_transient());
        assert!(!p.is_transient());
        assert!(!StoreError::NoSuchPage { page: 9, pages: 2 }.is_transient());
    }

    #[test]
    fn display_renders_every_variant() {
        let all = [
            StoreError::Io {
                op: "seek",
                detail: "x".into(),
            },
            StoreError::Transient {
                op: "read_page",
                detail: "y".into(),
            },
            StoreError::Corrupt {
                page: 7,
                detail: "z".into(),
            },
            StoreError::NoSuchPage { page: 1, pages: 0 },
            StoreError::RetriesExhausted {
                op: "read_page",
                attempts: 4,
                last: "w".into(),
            },
        ];
        for e in all {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        let e: StoreError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(matches!(e, StoreError::Io { .. }));
    }
}
