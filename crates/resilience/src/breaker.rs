//! Per-dependency circuit breaker: closed → open → half-open.
//!
//! The SPARQL endpoint availability studies the survey leans on (and the
//! FedX line of federated engines) agree on the failure mode of remote
//! Linked Data sources: they don't fail cleanly, they *time out*. Without
//! a breaker, every query against a dead shard pays a full connect
//! timeout per fan-out — the coordinator's latency becomes the dead
//! shard's. The breaker caps that cost at roughly one timeout per
//! cooldown period:
//!
//! * **Closed** — traffic flows; `failure_threshold` *consecutive*
//!   failures trip the breaker open.
//! * **Open** — calls are shed instantly (no network) until `cooldown`
//!   elapses, then exactly one **probe** is admitted.
//! * **Half-open** — the probe's outcome decides: success closes the
//!   breaker, failure re-opens it for another cooldown. While a probe is
//!   in flight, other callers keep being shed, so a recovering shard sees
//!   one request, not a thundering herd.
//!
//! The breaker is a small mutex-guarded state machine rather than an
//! atomic dance: it is consulted once per shard per query, far off any
//! hot path, and the mutex makes the threshold/probe invariants easy to
//! pin in tests.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker sheds before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// Calls are shed without touching the dependency.
    Open,
    /// A single probe is deciding whether to close or re-open.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for stats/metrics surfaces.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What [`CircuitBreaker::admit`] decided for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed with the call (normal traffic, breaker closed).
    Allow,
    /// Proceed, but this call is the half-open probe: its outcome alone
    /// decides the next state.
    Probe,
    /// Shed the call without attempting it; the breaker is open.
    Shed,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
    opens: u64,
    sheds: u64,
}

/// A mutex-guarded closed→open→half-open breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
                opens: 0,
                sheds: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gate one call. Callers must report the outcome of every admitted
    /// call via [`record_success`](Self::record_success) /
    /// [`record_failure`](Self::record_failure) — a lost probe outcome
    /// would wedge the breaker half-open (shedding until then).
    pub fn admit(&self) -> Admission {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen if !g.probe_in_flight => {
                g.probe_in_flight = true;
                Admission::Probe
            }
            BreakerState::HalfOpen => {
                g.sheds += 1;
                Admission::Shed
            }
            BreakerState::Open => {
                let cooled = g
                    .opened_at
                    .map(|t| t.elapsed() >= self.cfg.cooldown)
                    .unwrap_or(true);
                if cooled {
                    g.state = BreakerState::HalfOpen;
                    g.probe_in_flight = true;
                    Admission::Probe
                } else {
                    g.sheds += 1;
                    Admission::Shed
                }
            }
        }
    }

    /// An admitted call succeeded: close the breaker and reset the
    /// failure streak.
    pub fn record_success(&self) {
        let mut g = self.lock();
        g.state = BreakerState::Closed;
        g.consecutive_failures = 0;
        g.probe_in_flight = false;
        g.opened_at = None;
    }

    /// An admitted call failed. A failed probe re-opens immediately; in
    /// the closed state the failure streak trips the breaker at the
    /// configured threshold.
    pub fn record_failure(&self) {
        let mut g = self.lock();
        g.probe_in_flight = false;
        match g.state {
            BreakerState::HalfOpen => Self::trip(&mut g),
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.cfg.failure_threshold {
                    Self::trip(&mut g);
                }
            }
            // A late failure from a call admitted before the breaker
            // opened: already open, nothing to do.
            BreakerState::Open => {}
        }
    }

    fn trip(g: &mut Inner) {
        g.state = BreakerState::Open;
        g.opened_at = Some(Instant::now());
        g.opens += 1;
        g.consecutive_failures = 0;
    }

    /// Current state (for stats surfaces; racy by nature).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Point-in-time snapshot for `/stats` and `explain`.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let g = self.lock();
        BreakerSnapshot {
            state: g.state,
            consecutive_failures: g.consecutive_failures,
            opens: g.opens,
            sheds: g.sheds,
        }
    }
}

/// Plain-value view of a breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Failure streak while closed.
    pub consecutive_failures: u32,
    /// Times the breaker has tripped open.
    pub opens: u64,
    /// Calls shed while open/half-open.
    pub sheds: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(10),
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..2 {
            assert_eq!(b.admit(), Admission::Allow);
            b.record_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert_eq!(b.admit(), Admission::Allow);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Shed);
        assert_eq!(b.snapshot().opens, 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(fast());
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_admits_exactly_one_probe() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.admit(), Admission::Shed);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(), Admission::Probe);
        // Second caller while the probe is out: still shed.
        assert_eq!(b.admit(), Admission::Shed);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(), Admission::Probe);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.snapshot().opens, 2);

        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn sheds_are_counted() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(60),
        });
        b.record_failure();
        for _ in 0..5 {
            assert_eq!(b.admit(), Admission::Shed);
        }
        assert_eq!(b.snapshot().sheds, 5);
    }
}
