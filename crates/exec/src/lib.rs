//! # wodex-exec — std-only deterministic parallel execution
//!
//! The survey's central constraint is serving exploration-driven workloads
//! over very large datasets on limited resources (PAPER.md §2). This crate
//! is the workspace's answer at the execution layer: a scoped worker pool
//! built **only** on `std::thread::scope` and `std::sync` — the build
//! environment has no registry access, so rayon/crossbeam are not options.
//!
//! ## Operations
//!
//! * [`par_map`] — map a function over a slice, preserving order.
//! * [`par_chunks`] — map a function over fixed-size chunks of a slice,
//!   one result per chunk, in chunk order.
//! * [`par_fold`] — fold each chunk to an accumulator, then merge the
//!   accumulators **in chunk order**.
//! * [`channel::bounded`] — a bounded SPSC/MPSC channel (wraps
//!   `std::sync::mpsc::sync_channel`) for pipeline-style producers.
//!
//! ## Determinism contract
//!
//! Every operation produces results that are **byte-identical regardless of
//! thread count**, because:
//!
//! 1. The chunk decomposition is a function of the *input length only* —
//!    never of the thread count. `WODEX_THREADS=1` and `WODEX_THREADS=64`
//!    process exactly the same chunks.
//! 2. Chunk results are merged in chunk index order, not completion order.
//! 3. Workers claim chunk *indices* from an atomic counter; which worker
//!    computes a chunk never affects what the chunk computes.
//!
//! This means the serial path is defined as "the same chunked computation
//! on one thread", so floating-point reductions ([`par_fold`]) associate
//! identically at every thread count.
//!
//! ## Thread count
//!
//! [`num_threads`] resolves, in order: a thread-local override installed by
//! [`with_thread_override`] (used by equivalence tests so parallel test
//! binaries don't race on the environment), the `WODEX_THREADS` environment
//! variable, then `std::thread::available_parallelism()`.
//!
//! ## Observability
//!
//! Each call records items processed and wall time into the process-global
//! [`wodex_obs`] registry (family `wodex_exec_*`, one series per `op`
//! label); [`stats`] snapshots them and [`reset_stats`] clears them.
//! [`run_chunked`] additionally counts tasks spawned and observes each
//! worker's spawn-to-first-claim latency as a queue-wait histogram.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;
use wodex_obs::{Counter, Histogram};
use wodex_resilience::{Budget, DegradeReason};

pub mod channel;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with the effective thread count pinned to `n` on this thread.
///
/// The override is thread-local, so concurrent tests can pin different
/// counts without racing on `WODEX_THREADS`. Restores the previous
/// override on exit (including on panic-free early return).
pub fn with_thread_override<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The effective worker count for parallel operations started on this
/// thread: override, else `WODEX_THREADS`, else available parallelism.
///
/// The environment lookup happens once per process: `env::var` takes a
/// global lock and `available_parallelism` is a syscall, and nested
/// serial `par_*` calls from inside worker threads would otherwise pay
/// both on every invocation (measured at ~5µs under contention — enough
/// to dominate fine-grained query paths).
pub fn num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    static AMBIENT: OnceLock<usize> = OnceLock::new();
    *AMBIENT.get_or_init(|| {
        if let Ok(s) = std::env::var("WODEX_THREADS") {
            if let Ok(n) = s.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    })
}

/// Minimum items per chunk; below this, parallel dispatch costs more than
/// it saves for typical per-item work in this workspace.
const MIN_CHUNK: usize = 256;
/// Target number of chunks for large inputs (load-balancing granularity).
const TARGET_CHUNKS: usize = 64;

/// The chunk size used for `len` items. A function of the input length
/// **only** — never the thread count — which is what makes results
/// identical across thread counts.
pub fn chunk_size(len: usize) -> usize {
    len.div_ceil(TARGET_CHUNKS).max(MIN_CHUNK)
}

/// Registry handles for one operation (`op` label: map / chunks / fold).
/// Registered once via [`exec_metrics`]; recording is atomics-only.
struct OpMetrics {
    calls: Arc<Counter>,
    parallel_calls: Arc<Counter>,
    items: Arc<Counter>,
    duration: Arc<Histogram>,
}

impl OpMetrics {
    fn new(op: &'static str) -> OpMetrics {
        let r = wodex_obs::global();
        OpMetrics {
            calls: r.counter_with(
                "wodex_exec_calls_total",
                "Invocations of an exec-layer parallel operation",
                &[("op", op)],
            ),
            parallel_calls: r.counter_with(
                "wodex_exec_parallel_calls_total",
                "Invocations that actually spawned worker threads",
                &[("op", op)],
            ),
            items: r.counter_with(
                "wodex_exec_items_total",
                "Items processed by an exec-layer parallel operation",
                &[("op", op)],
            ),
            duration: r.duration_histogram(
                "wodex_exec_op_seconds",
                "Wall time of one exec-layer parallel operation call",
                &[("op", op)],
            ),
        }
    }

    fn record(&self, items: usize, parallel: bool, start: Instant) {
        self.calls.inc();
        if parallel {
            self.parallel_calls.inc();
        }
        self.items.add(items as u64);
        self.duration.observe(start.elapsed().as_nanos() as u64);
    }

    fn snapshot(&self) -> OpStats {
        OpStats {
            calls: self.calls.get(),
            parallel_calls: self.parallel_calls.get(),
            items: self.items.get(),
            nanos: self.duration.sum(),
        }
    }

    fn reset(&self) {
        self.calls.reset();
        self.parallel_calls.reset();
        self.items.reset();
        self.duration.reset();
    }
}

struct ExecMetrics {
    map: OpMetrics,
    chunks: OpMetrics,
    fold: OpMetrics,
    tasks_spawned: Arc<Counter>,
    queue_wait: Arc<Histogram>,
}

/// The exec layer's registry handles, registered on first use.
fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        ExecMetrics {
            map: OpMetrics::new("map"),
            chunks: OpMetrics::new("chunks"),
            fold: OpMetrics::new("fold"),
            tasks_spawned: r.counter(
                "wodex_exec_tasks_spawned_total",
                "Worker tasks spawned by the scoped pool",
            ),
            queue_wait: r.duration_histogram(
                "wodex_exec_task_queue_seconds",
                "Latency from pool dispatch to a worker claiming its first chunk",
                &[],
            ),
        }
    })
}

/// A snapshot of one operation's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Total invocations.
    pub calls: u64,
    /// Invocations that actually spawned worker threads.
    pub parallel_calls: u64,
    /// Total items processed.
    pub items: u64,
    /// Total wall-clock nanoseconds across invocations.
    pub nanos: u64,
}

/// A snapshot of all execution-layer counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// [`par_map`] counters.
    pub map: OpStats,
    /// [`par_chunks`] counters.
    pub chunks: OpStats,
    /// [`par_fold`] counters.
    pub fold: OpStats,
}

/// Snapshots the global timing counters.
pub fn stats() -> ExecStats {
    let m = exec_metrics();
    ExecStats {
        map: m.map.snapshot(),
        chunks: m.chunks.snapshot(),
        fold: m.fold.snapshot(),
    }
}

/// Clears the global timing counters.
pub fn reset_stats() {
    let m = exec_metrics();
    m.map.reset();
    m.chunks.reset();
    m.fold.reset();
}

/// Unwraps a completed chunk slot. Slots are written exactly once by the
/// worker that claimed the chunk; the scope joins all workers (propagating
/// panics) before slots are read, so a `None` here is unreachable.
fn take_slot<R>(slot: Mutex<Option<R>>) -> R {
    slot.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .expect("worker completed this chunk")
}

/// Runs `work(chunk_index)` for every chunk index in `0..nchunks` across
/// `threads` scoped workers. Indices are claimed from an atomic counter,
/// so assignment is dynamic but the set of computations is fixed.
///
/// Panics from `work` propagate to the caller when the scope joins.
fn run_chunked<W: Fn(usize) + Sync>(nchunks: usize, threads: usize, work: W) {
    let m = exec_metrics();
    m.tasks_spawned.add(threads as u64);
    let dispatched = Instant::now();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                m.queue_wait.observe(dispatched.elapsed().as_nanos() as u64);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= nchunks {
                        break;
                    }
                    work(i);
                }
            });
        }
    });
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Deterministic: output is identical at every thread count (see the
/// crate-level determinism contract). Empty input returns an empty vec
/// without touching the pool. Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let start = Instant::now();
    if n == 0 {
        exec_metrics().map.record(0, false, start);
        return Vec::new();
    }
    let chunk = chunk_size(n);
    let nchunks = n.div_ceil(chunk);
    let threads = num_threads().min(nchunks);
    if threads <= 1 {
        // Same chunk decomposition, one thread: identical results by
        // construction (map has no cross-item state, so a plain pass
        // over each chunk in order is the chunked computation).
        let mut out = Vec::with_capacity(n);
        for c in items.chunks(chunk) {
            out.extend(c.iter().map(&f));
        }
        exec_metrics().map.record(n, false, start);
        return out;
    }
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
    run_chunked(nchunks, threads, |i| {
        let lo = i * chunk;
        let hi = (lo + chunk).min(n);
        let v: Vec<R> = items[lo..hi].iter().map(&f).collect();
        *slots[i].lock().unwrap() = Some(v);
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(take_slot(slot));
    }
    exec_metrics().map.record(n, true, start);
    out
}

/// Applies `f` to fixed-size chunks of `items` in parallel, returning one
/// result per chunk in chunk order. `f` receives the chunk index and the
/// chunk slice. `chunk` must be non-zero.
///
/// Unlike [`par_map`], the caller controls the chunk size — callers that
/// need a specific partition (e.g. index sub-ranges) derive it from the
/// input length to stay deterministic.
pub fn par_chunks<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be non-zero");
    let n = items.len();
    let start = Instant::now();
    if n == 0 {
        exec_metrics().chunks.record(0, false, start);
        return Vec::new();
    }
    let nchunks = n.div_ceil(chunk);
    let threads = num_threads().min(nchunks);
    if threads <= 1 {
        let out = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
        exec_metrics().chunks.record(n, false, start);
        return out;
    }
    let slots: Vec<Mutex<Option<R>>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
    run_chunked(nchunks, threads, |i| {
        let lo = i * chunk;
        let hi = (lo + chunk).min(n);
        *slots[i].lock().unwrap() = Some(f(i, &items[lo..hi]));
    });
    let out = slots.into_iter().map(take_slot).collect();
    exec_metrics().chunks.record(n, true, start);
    out
}

/// Maps `f` over `items` in parallel with **one chunk per item** — the
/// coarse-grained twin of [`par_map`] for inputs where each item is
/// itself a substantial unit of work (decoding a compressed segment
/// block, merging a partition). `par_map`'s fine-grained batching puts
/// at least 256 items in a chunk, which is right when items are cheap
/// but serializes any batch of fewer than 256 *expensive* items; this
/// entry point dispatches every item independently.
///
/// Deterministic for the same reason `par_map` is: the decomposition
/// (one chunk per item) is a function of the input only, and results
/// are reassembled in input order. Empty input returns an empty vec
/// without touching the pool; panics in `f` propagate.
pub fn par_map_coarse<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_chunks(items, 1, |_, c| f(&c[0]))
}

/// The result of a budget-aware parallel operation: the longest completed
/// *prefix* of the full computation, plus why (if) it stopped early.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial<R> {
    /// Results for the first [`Partial::completed`] input items, in input
    /// order. When `interrupted` is `None` this is the full result and is
    /// byte-identical to [`par_map`] on the same input.
    pub value: Vec<R>,
    /// How many input items the value covers.
    pub completed: usize,
    /// Why the computation stopped early, if it did.
    pub interrupted: Option<DegradeReason>,
}

impl<R> Partial<R> {
    /// Fraction of the input covered, in \[0, 1\] (1 for empty input).
    pub fn coverage(&self, total: usize) -> f64 {
        if total == 0 {
            1.0
        } else {
            self.completed as f64 / total as f64
        }
    }
}

/// [`par_map`] under a [`Budget`]: workers poll the budget before claiming
/// each chunk and stop cooperatively once it is exceeded, returning the
/// longest completed prefix instead of the full map.
///
/// An unlimited budget routes through [`par_map`] unchanged, so the
/// fault-free/unbudgeted path keeps the crate's determinism contract
/// bit-for-bit. Under an active budget the *content* of the returned
/// prefix is still deterministic (same chunk decomposition, results merged
/// in chunk order); only its *length* can vary for wall-clock budgets,
/// which is inherent to deadlines.
///
/// Each completed chunk charges its item count to the budget's row
/// dimension, so row caps bind without any cooperation from `f`.
pub fn par_map_budgeted<T, R, F>(items: &[T], budget: &Budget, f: F) -> Partial<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if budget.is_unlimited() {
        return Partial {
            value: par_map(items, f),
            completed: n,
            interrupted: None,
        };
    }
    let start = Instant::now();
    if n == 0 {
        exec_metrics().map.record(0, false, start);
        return Partial {
            value: Vec::new(),
            completed: 0,
            interrupted: budget.exceeded(),
        };
    }
    let chunk = chunk_size(n);
    let nchunks = n.div_ceil(chunk);
    let threads = num_threads().min(nchunks);
    let stop_reason: Mutex<Option<DegradeReason>> = Mutex::new(None);
    let note_stop = |r: DegradeReason| {
        let mut g = stop_reason.lock().unwrap_or_else(PoisonError::into_inner);
        g.get_or_insert(r);
    };
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        for c in items.chunks(chunk) {
            if let Some(r) = budget.exceeded() {
                note_stop(r);
                break;
            }
            out.extend(c.iter().map(&f));
            budget.charge_rows(c.len() as u64);
        }
        exec_metrics().map.record(out.len(), false, start);
        let completed = out.len();
        return Partial {
            value: out,
            completed,
            interrupted: stop_reason
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner),
        };
    }
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
    run_chunked(nchunks, threads, |i| {
        if let Some(r) = budget.exceeded() {
            note_stop(r);
            return;
        }
        let lo = i * chunk;
        let hi = (lo + chunk).min(n);
        let v: Vec<R> = items[lo..hi].iter().map(&f).collect();
        budget.charge_rows(v.len() as u64);
        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
    });
    // Keep the longest contiguous prefix: a later chunk may have finished
    // after an earlier one was skipped, but a result with holes is not a
    // meaningful partial answer for an order-preserving map.
    let mut out = Vec::new();
    let mut interrupted = stop_reason
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    for slot in slots {
        match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(v) => out.extend(v),
            None => {
                // A hole with no recorded reason means a worker skipped the
                // chunk after another already noted the stop; re-check.
                interrupted = interrupted.or_else(|| budget.exceeded());
                break;
            }
        }
    }
    exec_metrics().map.record(out.len(), true, start);
    let completed = out.len();
    Partial {
        value: out,
        completed,
        interrupted,
    }
}

/// Folds `items` in parallel: each chunk folds into its own accumulator
/// (seeded by `init`), then accumulators merge **in chunk order**.
///
/// Because the chunk decomposition depends only on the input length, the
/// association order of `merge` — and therefore any floating-point result —
/// is identical at every thread count.
pub fn par_fold<T, A, I, F, M>(items: &[T], init: I, fold: F, merge: M) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let n = items.len();
    let start = Instant::now();
    if n == 0 {
        exec_metrics().fold.record(0, false, start);
        return init();
    }
    let chunk = chunk_size(n);
    let accs = {
        let nchunks = n.div_ceil(chunk);
        let threads = num_threads().min(nchunks);
        if threads <= 1 {
            let out: Vec<A> = items
                .chunks(chunk)
                .map(|c| c.iter().fold(init(), &fold))
                .collect();
            exec_metrics().fold.record(n, false, start);
            out
        } else {
            let slots: Vec<Mutex<Option<A>>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
            run_chunked(nchunks, threads, |i| {
                let lo = i * chunk;
                let hi = (lo + chunk).min(n);
                let acc = items[lo..hi].iter().fold(init(), &fold);
                *slots[i].lock().unwrap() = Some(acc);
            });
            let out = slots.into_iter().map(take_slot).collect();
            exec_metrics().fold.record(n, true, start);
            out
        }
    };
    let mut accs = accs.into_iter();
    let first = accs.next().expect("at least one chunk");
    accs.fold(first, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = with_thread_override(4, || par_map(&items, |&x| x * 2));
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_identical_across_thread_counts() {
        let items: Vec<f64> = (0..5000).map(|i| i as f64 * 0.37).collect();
        let one = with_thread_override(1, || par_map(&items, |&x| x.sin() * x.cos()));
        let four = with_thread_override(4, || par_map(&items, |&x| x.sin() * x.cos()));
        let eight = with_thread_override(8, || par_map(&items, |&x| x.sin() * x.cos()));
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn par_map_empty_input() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = with_thread_override(4, || par_map(&items, |&x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_coarse_preserves_order_below_min_chunk() {
        // 40 items is far under par_map's fine-grained chunk floor; the
        // coarse entry point must still decompose (one chunk per item)
        // and reassemble in input order at every thread count.
        let items: Vec<u64> = (0..40).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 4, 8] {
            let out = with_thread_override(threads, || par_map_coarse(&items, |&x| x * x + 1));
            assert_eq!(out, serial, "threads={threads}");
        }
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_coarse(&empty, |&x: &u64| x).is_empty());
    }

    #[test]
    fn par_map_single_item() {
        let out = with_thread_override(4, || par_map(&[41], |&x: &i32| x + 1));
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn par_map_panic_propagates() {
        let items: Vec<u32> = (0..10_000).collect();
        let res = std::panic::catch_unwind(|| {
            with_thread_override(4, || {
                par_map(&items, |&x| {
                    assert!(x != 7777, "boom");
                    x
                })
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn par_map_panic_propagates_serially_too() {
        let items: Vec<u32> = (0..10_000).collect();
        let res = std::panic::catch_unwind(|| {
            with_thread_override(1, || {
                par_map(&items, |&x| {
                    assert!(x != 7777, "boom");
                    x
                })
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn par_chunks_covers_input_in_order() {
        let items: Vec<usize> = (0..1000).collect();
        let sums = with_thread_override(4, || {
            par_chunks(&items, 64, |i, c| (i, c.iter().sum::<usize>()))
        });
        assert_eq!(sums.len(), 1000usize.div_ceil(64));
        assert!(sums.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        let total: usize = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn par_fold_float_sums_identical_across_thread_counts() {
        let items: Vec<f64> = (0..50_000).map(|i| (i as f64).sqrt() * 0.001).collect();
        let run = || par_fold(&items, || 0.0f64, |a, &x| a + x, |a, b| a + b);
        let one = with_thread_override(1, run);
        let four = with_thread_override(4, run);
        assert_eq!(one.to_bits(), four.to_bits());
    }

    #[test]
    fn par_fold_empty_returns_init() {
        let items: Vec<u32> = Vec::new();
        let out = par_fold(&items, || 17u32, |a, &x| a + x, |a, b| a + b);
        assert_eq!(out, 17);
    }

    #[test]
    fn thread_override_nests_and_restores() {
        with_thread_override(4, || {
            assert_eq!(num_threads(), 4);
            with_thread_override(2, || assert_eq!(num_threads(), 2));
            assert_eq!(num_threads(), 4);
        });
    }

    #[test]
    fn chunking_ignores_thread_count() {
        let a = with_thread_override(1, || chunk_size(100_000));
        let b = with_thread_override(16, || chunk_size(100_000));
        assert_eq!(a, b);
    }

    #[test]
    fn budgeted_map_with_unlimited_budget_matches_par_map() {
        let items: Vec<u64> = (0..20_000).collect();
        let budget = Budget::unlimited();
        let full = with_thread_override(4, || par_map(&items, |&x| x * 3));
        let part = with_thread_override(4, || par_map_budgeted(&items, &budget, |&x| x * 3));
        assert_eq!(part.value, full);
        assert_eq!(part.completed, items.len());
        assert_eq!(part.interrupted, None);
        assert_eq!(part.coverage(items.len()), 1.0);
    }

    #[test]
    fn budgeted_map_row_cap_returns_a_prefix() {
        let items: Vec<u64> = (0..100_000).collect();
        let budget = Budget::unlimited().with_row_cap(5_000);
        let part = with_thread_override(4, || par_map_budgeted(&items, &budget, |&x| x + 1));
        assert_eq!(part.interrupted, Some(DegradeReason::RowCapExceeded));
        assert!(part.completed < items.len());
        assert!(part.completed > 0, "at least one chunk should land");
        // The partial value is a prefix of the full map.
        let expect: Vec<u64> = (0..part.completed as u64).map(|x| x + 1).collect();
        assert_eq!(part.value, expect);
        assert!(part.coverage(items.len()) < 1.0);
    }

    #[test]
    fn budgeted_map_expired_deadline_stops_immediately() {
        let items: Vec<u64> = (0..50_000).collect();
        let budget = Budget::unlimited().with_expired_deadline();
        let part = with_thread_override(4, || par_map_budgeted(&items, &budget, |&x| x));
        assert_eq!(part.interrupted, Some(DegradeReason::DeadlineExceeded));
        assert_eq!(part.completed, 0);
    }

    #[test]
    fn budgeted_map_cancellation_is_observed() {
        let items: Vec<u64> = (0..50_000).collect();
        let budget = Budget::unlimited().with_row_cap(u64::MAX);
        budget.cancel();
        let part = with_thread_override(4, || par_map_budgeted(&items, &budget, |&x| x));
        assert_eq!(part.interrupted, Some(DegradeReason::Cancelled));
        assert_eq!(part.completed, 0);
    }

    #[test]
    fn budgeted_map_serial_and_parallel_agree_on_row_cap_prefix_shape() {
        let items: Vec<u64> = (0..60_000).collect();
        let cap = 10_000;
        let serial = {
            let b = Budget::unlimited().with_row_cap(cap);
            with_thread_override(1, || par_map_budgeted(&items, &b, |&x| x))
        };
        let parallel = {
            let b = Budget::unlimited().with_row_cap(cap);
            with_thread_override(4, || par_map_budgeted(&items, &b, |&x| x))
        };
        // Both stop for the same reason with a whole number of chunks, and
        // both values are prefixes of the input.
        assert_eq!(serial.interrupted, Some(DegradeReason::RowCapExceeded));
        assert_eq!(parallel.interrupted, Some(DegradeReason::RowCapExceeded));
        let chunk = chunk_size(items.len());
        assert_eq!(serial.completed % chunk, 0);
        assert_eq!(parallel.completed % chunk, 0);
        assert_eq!(serial.value[..], items[..serial.completed]);
        assert_eq!(parallel.value[..], items[..parallel.completed]);
    }

    #[test]
    fn stats_accumulate() {
        reset_stats();
        let items: Vec<u32> = (0..4096).collect();
        let _ = with_thread_override(2, || par_map(&items, |&x| x));
        let s = stats();
        assert!(s.map.calls >= 1);
        assert!(s.map.items >= 4096);
        reset_stats();
    }
}
