//! Bounded channels for pipeline-style parallelism.
//!
//! A thin veneer over `std::sync::mpsc::sync_channel`, kept in this crate
//! so pipeline code (e.g. `wodex-approx`'s progressive computation) has one
//! place to get its channels from — the role crossbeam's `bounded` played
//! before the workspace went registry-free.

pub use std::sync::mpsc::{
    Receiver, RecvError, SendError, SyncSender as Sender, TryRecvError, TrySendError,
};

/// Creates a bounded channel with capacity `cap`.
///
/// Sends block once `cap` messages are in flight, which is exactly the
/// back-pressure a progressive producer/consumer pipeline wants: the
/// producer cannot run unboundedly ahead of the consumer.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::sync_channel(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_channel_round_trips_in_order() {
        let (tx, rx) = bounded::<u32>(4);
        std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_blocks_at_capacity() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        assert!(tx.try_send(2).is_err());
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(2).is_ok());
    }
}
