//! # wodex-obs — the observability substrate
//!
//! The survey's central constraint is exploration over very large datasets
//! on *limited resources* (PAPER.md §2), and no performance work on such a
//! system can be tuned blind: SynopsViz \[arXiv:1408.3148\] makes dataset
//! statistics a first-class feature, and the hierarchical aggregation
//! framework \[arXiv:1511.04750\] justifies its design with per-stage
//! construction/traversal timings. This crate is the workspace's single
//! answer to "where did the time go": every layer (exec, store, SPARQL,
//! explore, serve) records into one process-global [`MetricsRegistry`],
//! and the query path can additionally carry a per-query [`QueryTrace`]
//! with span-based stage timings.
//!
//! ## Design constraints
//!
//! * **Std-only** — the build environment has no registry access.
//! * **Atomics-only on the hot path** — recording a metric is one (or for
//!   histograms, three) `fetch_add(Relaxed)`; no locks, no allocation, no
//!   formatting. The registry's mutex is touched only at *registration*
//!   (once per series, in constructors / `OnceLock` initializers) and at
//!   *exposition* (a `/metrics` scrape or `wodex explain` readout).
//! * **Observation must not perturb the observed** — `repro bench-pr4`
//!   measures the instrumented paths against the same paths with
//!   recording disabled ([`set_enabled`]) and gates the overhead at ≤5%.
//!
//! ## Pieces
//!
//! * [`metrics`] — [`Counter`], [`Gauge`], fixed-bucket [`Histogram`]
//!   with p50/p95/p99 readout, and the [`MetricsRegistry`] that interns
//!   them by name + label set.
//! * [`trace`] — [`QueryTrace`]: span-based per-stage timings and item
//!   counts for one query (parse → plan → BGP probe → filter → decode →
//!   serialize), renderable as an HTTP header or an ASCII table.
//! * [`prom`] — the Prometheus text exposition encoder (format 0.0.4):
//!   deterministic output ordering, name sanitization, label escaping,
//!   cumulative (monotone) histogram buckets.

pub mod metrics;
pub mod prom;
pub mod trace;

pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, DURATION_BUCKETS_NS,
};
pub use prom::{escape_help, escape_label_value, render_prometheus, sanitize_metric_name};
pub use trace::{PlanStepTrace, QueryTrace, SpanGuard, Stage, TraceSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide recording switch. `true` from process start; benches flip
/// it off to measure the uninstrumented (PR 3) path on identical code.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is metric/trace recording currently enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables recording. Registration and readout keep
/// working either way — only the hot-path `fetch_add`s are skipped, so a
/// disabled process runs the byte-identical code path minus the stores.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
