//! Counters, gauges, fixed-bucket histograms, and the registry.
//!
//! Handles are `Arc`s interned by the global registry: components fetch
//! their handles once (in a constructor or a `OnceLock` initializer) and
//! record through plain relaxed atomics thereafter. Two registrations of
//! the same name + label set return the *same* series, which is what lets
//! every `BufferPool` in the process feed one `wodex_store_pool_*` family
//! — and what makes the cross-layer conservation invariants
//! (`hits + misses == lookups`) globally checkable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A monotonically increasing counter.
///
/// `reset` exists for tests and benches (deltas across a workload); the
/// Prometheus exposition treats the value as a counter regardless.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (test/bench bookkeeping only).
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down (set at sample time).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Sets the value. Unlike counter increments this is not gated on
    /// [`crate::enabled`] — gauges are set at scrape time, not on hot
    /// paths.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// The default duration buckets, in nanoseconds: powers of 4 from 1 µs to
/// ~17 s. Fixed at registration so observation is a branchless scan over
/// at most [`MAX_BUCKETS`] bounds plus three `fetch_add`s.
pub const DURATION_BUCKETS_NS: &[u64] = &[
    1 << 10, // ~1 µs
    1 << 12, // ~4 µs
    1 << 14, // ~16 µs
    1 << 16, // ~65 µs
    1 << 18, // ~262 µs
    1 << 20, // ~1 ms
    1 << 22, // ~4.2 ms
    1 << 24, // ~16.8 ms
    1 << 26, // ~67 ms
    1 << 28, // ~268 ms
    1 << 30, // ~1.07 s
    1 << 32, // ~4.3 s
    1 << 34, // ~17.2 s
];

/// Upper bound on per-histogram bucket count (keeps readout and
/// exposition O(1) per series).
pub const MAX_BUCKETS: usize = 32;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket bounds are inclusive upper bounds in the histogram's raw unit
/// (nanoseconds for durations); `unit_scale` converts raw units to the
/// exposition unit (`1e-9` renders nanoseconds as seconds). Counts per
/// bucket are *non-cumulative* internally; the Prometheus encoder
/// accumulates them, which is what makes the exposed `_bucket` series
/// monotone by construction.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow (+Inf) slot.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
    unit_scale: f64,
}

impl Histogram {
    fn new(bounds: &[u64], unit_scale: f64) -> Histogram {
        let bounds: Vec<u64> = bounds.iter().copied().take(MAX_BUCKETS).collect();
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds not sorted");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            unit_scale,
        }
    }

    /// Records one observation in raw units. A no-op while recording is
    /// disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, raw units.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The exposition scale (raw unit → exposed unit).
    pub fn unit_scale(&self) -> f64 {
        self.unit_scale
    }

    /// A point-in-time copy of the bucket state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
            unit_scale: self.unit_scale,
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in raw units, linearly interpolated
    /// within the winning bucket. Returns 0 with no observations.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Zeroes every bucket (test/bench bookkeeping only).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// A plain-value copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, raw units; the final implicit bound is +Inf.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Sum of observations, raw units.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
    /// Raw unit → exposed unit.
    pub unit_scale: f64,
}

impl HistogramSnapshot {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count;
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = seen + c;
            if rank <= next && c > 0 {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Open-ended overflow bucket: report its lower edge
                    // (there is no honest upper estimate).
                    return lo;
                };
                let frac = (rank - seen) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            seen = next;
        }
        self.bounds.last().copied().unwrap_or(0)
    }
}

/// One registered series: family name + label pairs + the metric.
pub(crate) struct Series {
    pub(crate) name: String,
    pub(crate) help: &'static str,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) metric: Metric,
}

pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The interning registry. Registration is locked; recording never is —
/// callers hold `Arc` handles to the atomics themselves.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<Series>>,
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Series>> {
        // A registration cannot leave the Vec mid-mutation (push is the
        // only write), so recovering from poison is safe.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn intern<T, F: FnOnce() -> Metric>(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: F,
        as_t: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let name = crate::prom::sanitize_metric_name(name);
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (crate::prom::sanitize_label_name(k), v.to_string()))
            .collect();
        let mut series = self.lock();
        if let Some(s) = series.iter().find(|s| s.name == name && s.labels == labels) {
            if let Some(t) = as_t(&s.metric) {
                return t;
            }
            // Same series name registered as a different kind: a
            // programming error; fall through and register a shadow
            // series rather than panicking a hot constructor.
        }
        let metric = make();
        let handle = as_t(&metric).expect("make() returns the requested kind");
        series.push(Series {
            name,
            help,
            labels,
            metric,
        });
        handle
    }

    /// Registers (or returns the existing) counter series.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or returns the existing) labeled counter series.
    pub fn counter_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        self.intern(
            name,
            help,
            labels,
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or returns the existing) gauge series.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or returns the existing) labeled gauge series.
    pub fn gauge_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        self.intern(
            name,
            help,
            labels,
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or returns the existing) histogram series with the
    /// given raw-unit bucket bounds and exposition scale.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        unit_scale: f64,
    ) -> Arc<Histogram> {
        self.intern(
            name,
            help,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new(bounds, unit_scale))),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registers (or returns the existing) duration histogram: raw unit
    /// nanoseconds, exposed as seconds, [`DURATION_BUCKETS_NS`] bounds.
    pub fn duration_histogram(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.histogram_with(name, help, labels, DURATION_BUCKETS_NS, 1e-9)
    }

    /// Every counter value keyed by `name{label="v",…}` — the readout the
    /// invariant tests and `wodex explain` use.
    pub fn counter_values(&self) -> HashMap<String, u64> {
        self.lock()
            .iter()
            .filter_map(|s| match &s.metric {
                Metric::Counter(c) => Some((series_key(&s.name, &s.labels), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Every gauge value keyed by `name{label="v",…}` — the same
    /// readout as [`MetricsRegistry::counter_values`], for gauges
    /// (`/stats` fragments read resident-bytes style series this way).
    pub fn gauge_values(&self) -> HashMap<String, i64> {
        self.lock()
            .iter()
            .filter_map(|s| match &s.metric {
                Metric::Gauge(g) => Some((series_key(&s.name, &s.labels), g.get())),
                _ => None,
            })
            .collect()
    }

    /// Runs `f` over every registered series (exposition).
    pub(crate) fn for_each(&self, mut f: impl FnMut(&Series)) {
        for s in self.lock().iter() {
            f(s);
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The canonical `name{k="v",…}` key for one series.
pub(crate) fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&crate::prom::escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// The process-global registry every wodex layer records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_add_get() {
        let r = MetricsRegistry::new();
        let c = r.counter("test_total", "help");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn registration_interns_by_name_and_labels() {
        let r = MetricsRegistry::new();
        let a = r.counter_with("x_total", "h", &[("op", "map")]);
        let b = r.counter_with("x_total", "h", &[("op", "map")]);
        let c = r.counter_with("x_total", "h", &[("op", "fold")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(
            a.get(),
            2,
            "same series: one handle's incs visible in the other"
        );
        assert_eq!(c.get(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth", "h");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with("lat", "h", &[], &[10, 100, 1000], 1.0);
        for v in [1u64, 5, 50, 60, 70, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 5 + 50 + 60 + 70 + 500 + 5000);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 3, 1, 1]);
        // p50: rank 4 of 7 → third bucket entry of (10,100].
        let p50 = h.quantile(0.5);
        assert!(p50 > 10 && p50 <= 100, "p50 = {p50}");
        // p99 lands in the overflow bucket → reports its lower edge.
        assert_eq!(h.quantile(0.99), 1000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let r = MetricsRegistry::new();
        let c = r.counter("gated_total", "h");
        let h = r.duration_histogram("gated_seconds", "h", &[]);
        crate::set_enabled(false);
        c.inc();
        h.observe(99);
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn counter_values_keys_include_labels() {
        let r = MetricsRegistry::new();
        r.counter_with("y_total", "h", &[("op", "a")]).add(3);
        r.counter("z_total", "h").add(9);
        let vals = r.counter_values();
        assert_eq!(vals["y_total{op=\"a\"}"], 3);
        assert_eq!(vals["z_total"], 9);
    }

    #[test]
    fn duration_bucket_bounds_are_sorted() {
        assert!(DURATION_BUCKETS_NS.windows(2).all(|w| w[0] < w[1]));
        assert!(DURATION_BUCKETS_NS.len() <= MAX_BUCKETS);
    }
}
