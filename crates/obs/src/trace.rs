//! Span-based per-query tracing.
//!
//! A [`QueryTrace`] rides alongside one query evaluation and accumulates
//! wall time and item counts per fixed [`Stage`]. Spans are drop guards:
//! `trace.span(Stage::Decode)` stamps `Instant::now()` and the guard's
//! `Drop` adds the elapsed nanoseconds to the stage — so early returns and
//! `?` propagation are timed correctly for free. Stages may be entered
//! repeatedly (a BGP with four patterns opens four `BgpProbe` spans); the
//! trace records the sum.
//!
//! A disabled trace (the default for untraced queries) skips the
//! `Instant::now()` calls entirely — the only cost left on the hot path is
//! one branch on a bool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One executed plan step: operator, pattern summary, and estimated vs.
/// actual output cardinality. Collected per-trace so `wodex explain` can
/// show how well the planner's cost model predicted reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStepTrace {
    /// Operator name (`scan`, `merge_join`, `hash_join`, `nl_join`, …).
    pub op: &'static str,
    /// Human-readable pattern / step description.
    pub detail: String,
    /// Planner's estimated output rows for this step.
    pub est_rows: u64,
    /// Rows the step actually produced.
    pub actual_rows: u64,
}

/// The fixed query pipeline stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// SPARQL text → AST.
    Parse,
    /// Pattern ordering, selectivity precompute, variable indexing.
    Plan,
    /// Distributed gather: per-shard pattern scans fanned out and merged
    /// (coordinator mode only; zero in single-process serving).
    Scatter,
    /// Index probes joining each triple pattern into the binding set.
    BgpProbe,
    /// FILTER application over candidate rows.
    Filter,
    /// Term-id → lexical form decoding of result rows.
    Decode,
    /// Result serialization (JSON rows / table rendering).
    Serialize,
}

impl Stage {
    /// Every stage, pipeline order. Readouts iterate this so output
    /// ordering is fixed.
    pub const ALL: [Stage; 7] = [
        Stage::Parse,
        Stage::Plan,
        Stage::Scatter,
        Stage::BgpProbe,
        Stage::Filter,
        Stage::Decode,
        Stage::Serialize,
    ];

    /// The stage's snake_case name (used in headers, tables, metrics).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Plan => "plan",
            Stage::Scatter => "scatter",
            Stage::BgpProbe => "bgp_probe",
            Stage::Filter => "filter",
            Stage::Decode => "decode",
            Stage::Serialize => "serialize",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Plan => 1,
            Stage::Scatter => 2,
            Stage::BgpProbe => 3,
            Stage::Filter => 4,
            Stage::Decode => 5,
            Stage::Serialize => 6,
        }
    }
}

const NSTAGES: usize = Stage::ALL.len();

/// Per-stage timings and item counts for one query.
///
/// Interior-mutable (atomics) so eval code can record through a shared
/// `&QueryTrace` from parallel workers without locks.
#[derive(Debug)]
pub struct QueryTrace {
    enabled: bool,
    start: Instant,
    nanos: [AtomicU64; NSTAGES],
    items: [AtomicU64; NSTAGES],
    /// Executed plan steps in execution order (empty when the greedy
    /// non-planned path ran, or the trace is disabled).
    plan_steps: Mutex<Vec<PlanStepTrace>>,
}

impl QueryTrace {
    /// An enabled trace; wall-clock starts now.
    pub fn new() -> QueryTrace {
        QueryTrace {
            enabled: true,
            start: Instant::now(),
            nanos: Default::default(),
            items: Default::default(),
            plan_steps: Mutex::new(Vec::new()),
        }
    }

    /// A disabled trace: spans skip `Instant::now()`, records are no-ops.
    /// This is what untraced queries carry, so tracing support costs them
    /// one branch per span site.
    pub fn disabled() -> QueryTrace {
        QueryTrace {
            enabled: false,
            start: Instant::now(),
            nanos: Default::default(),
            items: Default::default(),
            plan_steps: Mutex::new(Vec::new()),
        }
    }

    /// Is this trace recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span on `stage`; elapsed time is added when the guard
    /// drops.
    #[inline]
    pub fn span(&self, stage: Stage) -> SpanGuard<'_> {
        SpanGuard {
            trace: self,
            stage,
            start: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Adds `n` items to `stage` (rows probed, rows decoded, bytes
    /// serialized — the stage's natural unit).
    #[inline]
    pub fn add_items(&self, stage: Stage, n: u64) {
        if self.enabled {
            self.items[stage.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds raw nanoseconds to `stage` (for callers that already timed).
    #[inline]
    pub fn record_nanos(&self, stage: Stage, nanos: u64) {
        if self.enabled {
            self.nanos[stage.index()].fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Nanoseconds accumulated on `stage`.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()].load(Ordering::Relaxed)
    }

    /// Items accumulated on `stage`.
    pub fn stage_items(&self, stage: Stage) -> u64 {
        self.items[stage.index()].load(Ordering::Relaxed)
    }

    /// Wall-clock nanoseconds since the trace was created.
    pub fn total_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Appends one executed plan step (no-op on a disabled trace). Steps
    /// accumulate in call order, which the executor guarantees is plan
    /// order.
    pub fn record_plan_step(&self, step: PlanStepTrace) {
        if self.enabled {
            self.plan_steps.lock().unwrap().push(step);
        }
    }

    /// The executed plan steps recorded so far (empty when the greedy
    /// path ran or the trace is disabled).
    pub fn plan_steps(&self) -> Vec<PlanStepTrace> {
        self.plan_steps.lock().unwrap().clone()
    }

    /// An ASCII table of executed plan steps with estimated vs. actual
    /// output rows per step, or the empty string when no plan steps were
    /// recorded (single-pattern / greedy queries). Rendered by
    /// `wodex explain` below the stage table.
    pub fn render_plan_table(&self) -> String {
        let steps = self.plan_steps();
        if steps.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("step  op          est_rows  actual_rows  detail\n");
        out.push_str("----  ----------  --------  -----------  ------\n");
        for (i, st) in steps.iter().enumerate() {
            out.push_str(&format!(
                "{:<4}  {:<10}  {:>8}  {:>11}  {}\n",
                i + 1,
                st.op,
                st.est_rows,
                st.actual_rows,
                st.detail,
            ));
        }
        out
    }

    /// A plain-value copy of the trace.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            stages: Stage::ALL
                .iter()
                .map(|&s| StageSnapshot {
                    stage: s,
                    nanos: self.stage_nanos(s),
                    items: self.stage_items(s),
                })
                .collect(),
            wall_nanos: self.total_nanos(),
        }
    }

    /// The compact `X-Wodex-Trace` header value:
    /// `parse=12us;plan=3us;bgp_probe=840us/1200;…` — stages in pipeline
    /// order, microsecond timings, `/items` appended when non-zero,
    /// zero-time zero-item stages omitted.
    pub fn header_value(&self) -> String {
        let mut out = String::new();
        for &s in &Stage::ALL {
            let ns = self.stage_nanos(s);
            let items = self.stage_items(s);
            if ns == 0 && items == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(';');
            }
            out.push_str(s.name());
            out.push('=');
            out.push_str(&format!("{}us", ns / 1_000));
            if items > 0 {
                out.push_str(&format!("/{items}"));
            }
        }
        if out.is_empty() {
            out.push_str("none");
        }
        out
    }

    /// An ASCII table of the trace (`wodex explain`): one row per stage
    /// with time, share of the measured total, and item count.
    pub fn render_table(&self) -> String {
        let snap = self.snapshot();
        let measured: u64 = snap.stages.iter().map(|s| s.nanos).sum();
        let mut out = String::new();
        out.push_str("stage       time_us      pct  items\n");
        out.push_str("----------  ---------  -----  ---------\n");
        for st in &snap.stages {
            let pct = if measured > 0 {
                st.nanos as f64 * 100.0 / measured as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<10}  {:>9}  {:>4.1}%  {:>9}\n",
                st.stage.name(),
                st.nanos / 1_000,
                pct,
                st.items,
            ));
        }
        out.push_str(&format!(
            "total       {:>9}  (wall {}us)\n",
            measured / 1_000,
            snap.wall_nanos / 1_000,
        ));
        out
    }
}

impl Default for QueryTrace {
    fn default() -> QueryTrace {
        QueryTrace::new()
    }
}

/// Drop guard returned by [`QueryTrace::span`].
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard<'a> {
    trace: &'a QueryTrace,
    stage: Stage,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.trace
                .record_nanos(self.stage, start.elapsed().as_nanos() as u64);
        }
    }
}

/// One stage's share of a [`TraceSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Which stage.
    pub stage: Stage,
    /// Accumulated nanoseconds.
    pub nanos: u64,
    /// Accumulated items.
    pub items: u64,
}

/// A plain-value copy of a [`QueryTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Every stage in pipeline order.
    pub stages: Vec<StageSnapshot>,
    /// Wall-clock nanoseconds from trace creation to snapshot.
    pub wall_nanos: u64,
}

impl TraceSnapshot {
    /// Sum of per-stage nanoseconds (≤ wall for a serial pipeline).
    pub fn measured_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_accumulate_into_stages() {
        let t = QueryTrace::new();
        {
            let _g = t.span(Stage::Parse);
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _g = t.span(Stage::Parse);
            std::thread::sleep(Duration::from_millis(2));
        }
        t.add_items(Stage::Decode, 17);
        assert!(t.stage_nanos(Stage::Parse) >= 4_000_000);
        assert_eq!(t.stage_nanos(Stage::Decode), 0);
        assert_eq!(t.stage_items(Stage::Decode), 17);
    }

    #[test]
    fn stage_sum_bounded_by_wall_for_serial_spans() {
        let t = QueryTrace::new();
        for &s in &Stage::ALL {
            let _g = t.span(s);
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = t.snapshot();
        assert!(
            snap.measured_nanos() <= snap.wall_nanos,
            "measured {} > wall {}",
            snap.measured_nanos(),
            snap.wall_nanos
        );
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = QueryTrace::disabled();
        {
            let _g = t.span(Stage::Plan);
            std::thread::sleep(Duration::from_millis(1));
        }
        t.add_items(Stage::Plan, 5);
        t.record_nanos(Stage::Plan, 99);
        assert_eq!(t.stage_nanos(Stage::Plan), 0);
        assert_eq!(t.stage_items(Stage::Plan), 0);
        assert_eq!(t.header_value(), "none");
    }

    #[test]
    fn header_value_orders_stages_and_appends_items() {
        let t = QueryTrace::new();
        t.record_nanos(Stage::Decode, 3_000);
        t.record_nanos(Stage::Parse, 12_000);
        t.add_items(Stage::Decode, 40);
        assert_eq!(t.header_value(), "parse=12us;decode=3us/40");
    }

    #[test]
    fn plan_steps_record_in_order_and_render() {
        let t = QueryTrace::new();
        t.record_plan_step(PlanStepTrace {
            op: "scan",
            detail: "?s :p ?o".into(),
            est_rows: 100,
            actual_rows: 97,
        });
        t.record_plan_step(PlanStepTrace {
            op: "hash_join",
            detail: "?s :q ?v".into(),
            est_rows: 10,
            actual_rows: 42,
        });
        let steps = t.plan_steps();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].op, "scan");
        assert_eq!(steps[1].actual_rows, 42);
        let table = t.render_plan_table();
        assert!(table.contains("est_rows"));
        assert!(table.contains("hash_join"));
        assert!(table.contains("97"));
    }

    #[test]
    fn disabled_trace_drops_plan_steps() {
        let t = QueryTrace::disabled();
        t.record_plan_step(PlanStepTrace {
            op: "scan",
            detail: String::new(),
            est_rows: 1,
            actual_rows: 1,
        });
        assert!(t.plan_steps().is_empty());
        assert_eq!(t.render_plan_table(), "");
    }

    #[test]
    fn render_table_lists_every_stage() {
        let t = QueryTrace::new();
        t.record_nanos(Stage::BgpProbe, 1_000_000);
        t.add_items(Stage::BgpProbe, 1200);
        let table = t.render_table();
        for &s in &Stage::ALL {
            assert!(table.contains(s.name()), "missing stage {}", s.name());
        }
        assert!(table.contains("1200"));
        assert!(table.contains("total"));
    }
}
