//! Prometheus text exposition (format 0.0.4).
//!
//! The encoder is deliberately boring: families sorted by name, series
//! sorted by label set, histogram buckets accumulated into the cumulative
//! `_bucket{le=…}` form the format requires. Determinism is a feature —
//! the golden-file test diffs a whole scrape byte-for-byte (after digit
//! normalization), and the seeded property tests in `tests/properties.rs`
//! check the escaping and ordering rules on arbitrary inputs.

use crate::metrics::{series_key, Metric, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps an arbitrary string onto a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid bytes become `_`, and a leading
/// digit gains a `_` prefix. Empty input becomes `"_"`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if ok {
            out.push(ch);
        } else if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Maps an arbitrary string onto a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
pub fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphabetic() || ch == '_' || (i > 0 && ch.is_ascii_digit());
        if ok {
            out.push(ch);
        } else if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes a HELP string: `\` → `\\`, newline → `\n` (quotes are legal).
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Formats a float the way Prometheus clients conventionally do: integers
/// without a trailing `.0`, everything else with nanosecond (1e-9)
/// precision, trailing zeros trimmed. The fixed precision keeps scaled
/// bucket bounds free of binary-float noise (`1000 × 1e-9` must render as
/// `0.000001`, not `0.0000010000000000000002`).
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let mut s = format!("{v:.9}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

fn label_block_with_le(labels: &[(String, String)], le: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push(("le".to_string(), le.to_string()));
    label_block(&all)
}

/// Renders every series in `registry` as Prometheus text exposition.
///
/// Families appear in sorted name order with one `# HELP` / `# TYPE`
/// header each; series within a family are sorted by their label sets, so
/// the output is a pure function of registry contents.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    // Family name -> (type, help, rendered sample lines keyed for sorting).
    struct Family {
        kind: &'static str,
        help: &'static str,
        lines: Vec<(String, String)>,
    }
    let mut families: BTreeMap<String, Family> = BTreeMap::new();

    registry.for_each(|s| {
        let (kind, lines) = match &s.metric {
            Metric::Counter(c) => (
                "counter",
                vec![(
                    series_key(&s.name, &s.labels),
                    format!("{}{} {}\n", s.name, label_block(&s.labels), c.get()),
                )],
            ),
            Metric::Gauge(g) => (
                "gauge",
                vec![(
                    series_key(&s.name, &s.labels),
                    format!("{}{} {}\n", s.name, label_block(&s.labels), g.get()),
                )],
            ),
            Metric::Histogram(h) => {
                let snap = h.snapshot();
                let scale = snap.unit_scale;
                let mut text = String::new();
                let mut cum = 0u64;
                for (i, &c) in snap.counts.iter().enumerate() {
                    cum += c;
                    let le = if i < snap.bounds.len() {
                        fmt_value(snap.bounds[i] as f64 * scale)
                    } else {
                        "+Inf".to_string()
                    };
                    let _ = writeln!(
                        text,
                        "{}_bucket{} {}",
                        s.name,
                        label_block_with_le(&s.labels, &le),
                        cum
                    );
                }
                let _ = writeln!(
                    text,
                    "{}_sum{} {}",
                    s.name,
                    label_block(&s.labels),
                    fmt_value(snap.sum as f64 * scale)
                );
                let _ = writeln!(
                    text,
                    "{}_count{} {}",
                    s.name,
                    label_block(&s.labels),
                    snap.count
                );
                ("histogram", vec![(series_key(&s.name, &s.labels), text)])
            }
        };
        let fam = families.entry(s.name.clone()).or_insert(Family {
            kind,
            help: s.help,
            lines: Vec::new(),
        });
        fam.lines.extend(lines);
    });

    let mut out = String::new();
    for (name, mut fam) in families {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(fam.help));
        let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
        fam.lines.sort();
        for (_, line) in fam.lines {
            out.push_str(&line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name("bad-name.x"), "bad_name_x");
        assert_eq!(sanitize_metric_name("9lead"), "_9lead");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_label_name("le:gal"), "le_gal");
        assert_eq!(sanitize_label_name("0x"), "_0x");
    }

    #[test]
    fn escapes_label_values_and_help() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_help("a\\b\"c\nd"), "a\\\\b\"c\\nd");
    }

    #[test]
    fn renders_counters_gauges_sorted() {
        let r = MetricsRegistry::new();
        r.counter_with("zz_total", "last", &[]).add(3);
        r.counter_with("aa_total", "first", &[("op", "b")]).add(1);
        r.counter_with("aa_total", "first", &[("op", "a")]).add(2);
        r.gauge("mm_gauge", "middle").set(-4);
        let text = render_prometheus(&r);
        let a = text.find("aa_total").unwrap();
        let m = text.find("mm_gauge").unwrap();
        let z = text.find("zz_total").unwrap();
        assert!(a < m && m < z, "families sorted by name");
        let sa = text.find("aa_total{op=\"a\"}").unwrap();
        let sb = text.find("aa_total{op=\"b\"}").unwrap();
        assert!(sa < sb, "series sorted by label set");
        assert!(text.contains("# HELP aa_total first\n"));
        assert!(text.contains("# TYPE aa_total counter\n"));
        assert!(text.contains("mm_gauge -4\n"));
    }

    #[test]
    fn renders_cumulative_histogram() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with("lat_seconds", "h", &[], &[1_000, 1_000_000], 1e-9);
        h.observe(10); // first bucket
        h.observe(500_000); // second bucket
        h.observe(500_000);
        h.observe(5_000_000); // overflow
        let text = render_prometheus(&r);
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.000001\"} 1\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.001\"} 3\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_seconds_count 4\n"));
    }

    #[test]
    fn single_help_type_per_family() {
        let r = MetricsRegistry::new();
        r.counter_with("fam_total", "h", &[("k", "a")]).inc();
        r.counter_with("fam_total", "h", &[("k", "b")]).inc();
        let text = render_prometheus(&r);
        assert_eq!(text.matches("# HELP fam_total").count(), 1);
        assert_eq!(text.matches("# TYPE fam_total").count(), 1);
    }
}
