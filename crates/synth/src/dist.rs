//! Distribution samplers.
//!
//! Value and degree *skew* is the property that separates "works on a demo"
//! from "works on DBpedia": LOD property values and node degrees are
//! heavy-tailed. This module implements the samplers the generators need
//! without pulling in `rand_distr`: Zipf (by inverse-CDF over precomputed
//! cumulative weights), normal (Box–Muller), exponential (inverse CDF), and
//! mixtures.

use crate::rng::Rng;

/// A sampler producing `f64` draws from some distribution.
pub trait Sampler {
    /// Draws one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> f64;

    /// Draws `n` values into a vector.
    fn sample_n<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<f64>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Object-safe adapter over [`Sampler`], used by [`Mixture`] to hold
/// heterogeneous components.
trait DynSampler: Send + Sync {
    fn sample_dyn(&self, rng: &mut dyn crate::rng::RngCore) -> f64;
}

impl<S: Sampler + Send + Sync> DynSampler for S {
    fn sample_dyn(&self, mut rng: &mut dyn crate::rng::RngCore) -> f64 {
        self.sample(&mut rng)
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Sampler for Uniform {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        rng.random_range(self.lo..self.hi)
    }
}

/// Normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
}

impl Sampler for Normal {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one normal draw (the second is
        // discarded; simplicity over speed, generators are not hot paths).
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Exponential distribution with rate `lambda`, via inverse CDF.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    /// Rate parameter (1/mean).
    pub lambda: f64,
}

impl Sampler for Exponential {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random_range(f64::EPSILON..1.0);
        -u.ln() / self.lambda
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`, sampled by
/// binary search over the precomputed cumulative weights.
///
/// Rank 1 is the most frequent outcome. With `s ≈ 1` this reproduces the
/// property-usage and degree skew observed across LOD datasets.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n ≥ 1` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

impl Sampler for Zipf {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// A mixture of component samplers with given weights — used to synthesize
/// multimodal columns (the case where equal-width binning misleads and
/// equal-frequency binning shines; experiment E2).
pub struct Mixture {
    components: Vec<(f64, Box<dyn DynSampler>)>,
    total_weight: f64,
}

impl Mixture {
    /// Creates an empty mixture.
    pub fn new() -> Mixture {
        Mixture {
            components: Vec::new(),
            total_weight: 0.0,
        }
    }

    /// Adds a component with a relative weight.
    pub fn with<S: Sampler + Send + Sync + 'static>(mut self, weight: f64, sampler: S) -> Mixture {
        assert!(weight > 0.0);
        self.total_weight += weight;
        self.components.push((weight, Box::new(sampler)));
        self
    }
}

impl Default for Mixture {
    fn default() -> Self {
        Self::new()
    }
}

impl Sampler for Mixture {
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        assert!(!self.components.is_empty(), "empty mixture");
        let mut pick = rng.random_range(0.0..self.total_weight);
        for (w, s) in &self.components {
            if pick < *w {
                return s.sample_dyn(rng);
            }
            pick -= w;
        }
        self.components.last().unwrap().1.sample_dyn(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = crate::rng(1);
        let u = Uniform { lo: 2.0, hi: 5.0 };
        for _ in 0..1000 {
            let v = u.sample(&mut rng);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn normal_matches_moments() {
        let mut rng = crate::rng(2);
        let n = Normal {
            mean: 10.0,
            std_dev: 3.0,
        };
        let xs = n.sample_n(&mut rng, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd was {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_reciprocal_rate() {
        let mut rng = crate::rng(3);
        let e = Exponential { lambda: 0.5 };
        let xs = e.sample_n(&mut rng, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = crate::rng(4);
        let z = Zipf::new(100, 1.0);
        let mut counts = vec![0usize; 101];
        for _ in 0..20_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[1] > counts[50] * 5);
        assert_eq!(counts[0], 0, "rank 0 must never be drawn");
    }

    #[test]
    fn zipf_ranks_bounded() {
        let mut rng = crate::rng(5);
        let z = Zipf::new(7, 1.3);
        for _ in 0..1000 {
            let r = z.sample_rank(&mut rng);
            assert!((1..=7).contains(&r));
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn mixture_draws_from_both_modes() {
        let mut rng = crate::rng(6);
        let m = Mixture::new()
            .with(
                1.0,
                Normal {
                    mean: 0.0,
                    std_dev: 0.5,
                },
            )
            .with(
                1.0,
                Normal {
                    mean: 100.0,
                    std_dev: 0.5,
                },
            );
        let xs = m.sample_n(&mut rng, 2000);
        let low = xs.iter().filter(|&&x| x < 50.0).count();
        let high = xs.len() - low;
        assert!(low > 700 && high > 700, "low={low}, high={high}");
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let z = Zipf::new(50, 1.1);
        let a: Vec<_> = {
            let mut r = crate::rng(42);
            (0..100).map(|_| z.sample_rank(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = crate::rng(42);
            (0..100).map(|_| z.sample_rank(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
