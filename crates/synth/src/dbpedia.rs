//! DBpedia-like entity graph generator.
//!
//! Produces the shape of data that WoD browsers (§3.1) and generic
//! visualization systems (§3.2) consume: typed entities with labels,
//! numeric/temporal/spatial datatype properties, categorical properties
//! with Zipf-skewed value usage, and inter-entity links with hub structure.

use crate::dist::{Normal, Sampler, Uniform, Zipf};
use crate::rng::Rng;
use wodex_rdf::term::Literal;
use wodex_rdf::vocab::{dcterms, geo, rdf, rdfs};
use wodex_rdf::{Graph, Term, Triple};

/// Parameters for the entity graph generator.
#[derive(Debug, Clone)]
pub struct DbpediaConfig {
    /// Number of entities.
    pub entities: usize,
    /// Namespace for minted IRIs.
    pub namespace: String,
    /// Entity classes, most frequent first (usage is Zipf over this list).
    pub classes: Vec<&'static str>,
    /// Number of categorical subject values (`dcterms:subject`).
    pub categories: usize,
    /// Average number of outgoing `ex:linksTo` edges per entity.
    pub avg_links: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbpediaConfig {
    fn default() -> Self {
        DbpediaConfig {
            entities: 1000,
            namespace: "http://dbp.example.org/".to_string(),
            classes: vec!["City", "Person", "Organisation", "Country", "Film"],
            categories: 50,
            avg_links: 3.0,
            seed: 42,
        }
    }
}

/// Well-known generated property IRIs (relative to the configured
/// namespace). Exposed so tests and experiments can query them.
pub mod props {
    /// Numeric property: population.
    pub const POPULATION: &str = "ontology/population";
    /// Numeric property: area (km²).
    pub const AREA: &str = "ontology/area";
    /// Temporal property: founding date.
    pub const FOUNDING_DATE: &str = "ontology/foundingDate";
    /// Object property: generic link between entities.
    pub const LINKS_TO: &str = "ontology/linksTo";
}

/// Generates the entity graph.
pub fn generate(cfg: &DbpediaConfig) -> Graph {
    let mut rng = crate::rng(cfg.seed);
    let mut g = Graph::new();
    let ns = &cfg.namespace;
    let class_zipf = Zipf::new(cfg.classes.len(), 1.0);
    let cat_zipf = Zipf::new(cfg.categories.max(1), 1.0);
    let link_zipf = Zipf::new(cfg.entities.max(1), 1.05);
    let pop_dist = Zipf::new(1_000_000, 1.3);
    let area_dist = Normal {
        mean: 500.0,
        std_dev: 180.0,
    };
    let lat = Uniform { lo: 34.0, hi: 42.0 };
    let lon = Uniform { lo: 19.0, hi: 28.0 };

    for i in 0..cfg.entities {
        let s = format!("{ns}resource/E{i}");
        let class_idx = class_zipf.sample_rank(&mut rng) - 1;
        let class = cfg.classes[class_idx];
        g.insert(Triple::iri(
            &s,
            rdf::TYPE,
            Term::iri(format!("{ns}ontology/{class}")),
        ));
        g.insert(Triple::iri(
            &s,
            rdfs::LABEL,
            Term::literal(format!("{class} {i}")),
        ));
        g.insert(Triple::iri(
            &s,
            dcterms::SUBJECT,
            Term::iri(format!(
                "{ns}category/C{}",
                cat_zipf.sample_rank(&mut rng) - 1
            )),
        ));
        // Numeric properties: population (heavy-tailed), area (normal).
        g.insert(Triple::iri(
            &s,
            &format!("{ns}{}", props::POPULATION),
            Term::integer(pop_dist.sample_rank(&mut rng) as i64 * 37),
        ));
        g.insert(Triple::iri(
            &s,
            &format!("{ns}{}", props::AREA),
            Term::double((area_dist.sample(&mut rng).max(1.0) * 100.0).round() / 100.0),
        ));
        // Temporal property: founding date between 1800 and 2015.
        let year = rng.random_range(1800..2016);
        let month = rng.random_range(1..13u32);
        let day = rng.random_range(1..29u32);
        g.insert(Triple::iri(
            &s,
            &format!("{ns}{}", props::FOUNDING_DATE),
            Term::Literal(Literal::date(year, month, day)),
        ));
        // Spatial coordinates for cities.
        if class == "City" {
            g.insert(Triple::iri(
                &s,
                geo::LAT,
                Term::double((lat.sample(&mut rng) * 1e4).round() / 1e4),
            ));
            g.insert(Triple::iri(
                &s,
                geo::LONG,
                Term::double((lon.sample(&mut rng) * 1e4).round() / 1e4),
            ));
        }
        // Links with hub structure: targets drawn from a Zipf over ids.
        let links = sample_poissonish(cfg.avg_links, &mut rng);
        for _ in 0..links {
            let t = link_zipf.sample_rank(&mut rng) - 1;
            if t != i {
                g.insert(Triple::iri(
                    &s,
                    &format!("{ns}{}", props::LINKS_TO),
                    Term::iri(format!("{ns}resource/E{t}")),
                ));
            }
        }
    }
    g
}

/// A cheap integer draw with the given mean: `floor(mean) + Bernoulli
/// (frac)` plus a uniform ±1 jitter, clamped at zero. Close enough to
/// Poisson for workload purposes without the full sampler.
fn sample_poissonish<R: Rng>(mean: f64, rng: &mut R) -> usize {
    let base = mean.floor() as i64;
    let frac = mean - mean.floor();
    let mut v = base + i64::from(rng.random_range(0.0..1.0) < frac);
    v += rng.random_range(-1..=1i64);
    v.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::stats::DatasetStats;

    fn small() -> Graph {
        generate(&DbpediaConfig {
            entities: 200,
            ..Default::default()
        })
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(small(), small());
    }

    #[test]
    fn every_entity_is_typed_and_labeled() {
        let g = small();
        let st = DatasetStats::of(&g);
        let typed: usize = st.class_counts.values().sum();
        assert_eq!(typed, 200);
        assert_eq!(st.predicate_counts[rdfs::LABEL], 200);
    }

    #[test]
    fn class_usage_is_skewed() {
        let g = generate(&DbpediaConfig {
            entities: 2000,
            ..Default::default()
        });
        let st = DatasetStats::of(&g);
        let ns = "http://dbp.example.org/ontology/";
        let city = st.class_counts[&format!("{ns}City")];
        let film = st
            .class_counts
            .get(&format!("{ns}Film"))
            .copied()
            .unwrap_or(0);
        assert!(city > film * 2, "city={city}, film={film}");
    }

    #[test]
    fn numeric_and_temporal_properties_present() {
        let g = small();
        let st = DatasetStats::of(&g);
        let pop = format!("http://dbp.example.org/{}", props::POPULATION);
        assert_eq!(st.numeric_summaries[&pop].count, 200);
        assert!(st.datatype_counts.contains_key(wodex_rdf::vocab::xsd::DATE));
    }

    #[test]
    fn cities_have_coordinates() {
        let g = small();
        let lat_count = g.triples_for_predicate(geo::LAT).count();
        let city_count = g
            .triples_for_predicate(rdf::TYPE)
            .filter(|t| {
                t.object
                    .as_iri()
                    .is_some_and(|i| i.as_str().ends_with("City"))
            })
            .count();
        assert_eq!(lat_count, city_count);
        assert!(lat_count > 0);
    }

    #[test]
    fn links_have_hubs() {
        let g = generate(&DbpediaConfig {
            entities: 1500,
            avg_links: 4.0,
            ..Default::default()
        });
        let link = format!("http://dbp.example.org/{}", props::LINKS_TO);
        let mut indeg = std::collections::HashMap::new();
        for t in g.triples_for_predicate(&link) {
            *indeg.entry(t.object.clone()).or_insert(0usize) += 1;
        }
        let max = indeg.values().copied().max().unwrap_or(0);
        let mean = indeg.values().sum::<usize>() as f64 / indeg.len() as f64;
        assert!(max as f64 > 8.0 * mean, "max={max}, mean={mean}");
    }
}
