//! RDF Data Cube generator.
//!
//! §3.3 surveys a family of systems (CubeViz, Payola Data Cube, OpenCube,
//! LDCE, OLAP4LD) that consume statistical multidimensional data published
//! with the W3C Data Cube vocabulary. This generator produces such cubes:
//! a dataset description, dimension/measure declarations, and a grid of
//! `qb:Observation`s over configurable dimension cardinalities.

use crate::dist::{Normal, Sampler};
use wodex_rdf::term::Literal;
use wodex_rdf::vocab::{qb, rdf, rdfs};
use wodex_rdf::{Graph, Term, Triple};

/// Configuration for a synthetic data cube.
#[derive(Debug, Clone)]
pub struct CubeConfig {
    /// Namespace for minted IRIs.
    pub namespace: String,
    /// Dimension names with their cardinalities, e.g. `[("refArea", 20),
    /// ("refPeriod", 10), ("sex", 3)]`. Observations form the full cross
    /// product, so total observations = product of cardinalities.
    pub dimensions: Vec<(String, usize)>,
    /// Measure name (e.g. "population").
    pub measure: String,
    /// Mean of the measure values.
    pub measure_mean: f64,
    /// Standard deviation of the measure values.
    pub measure_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            namespace: "http://stats.example.org/".to_string(),
            dimensions: vec![
                ("refArea".to_string(), 12),
                ("refPeriod".to_string(), 8),
                ("sex".to_string(), 3),
            ],
            measure: "population".to_string(),
            measure_mean: 50_000.0,
            measure_std: 12_000.0,
            seed: 7,
        }
    }
}

impl CubeConfig {
    /// Total number of observations the full cross product will contain.
    pub fn observation_count(&self) -> usize {
        self.dimensions.iter().map(|(_, c)| *c).product()
    }

    /// IRI of the dataset resource.
    pub fn dataset_iri(&self) -> String {
        format!("{}dataset/cube", self.namespace)
    }

    /// IRI of a dimension property.
    pub fn dimension_iri(&self, name: &str) -> String {
        format!("{}dimension/{name}", self.namespace)
    }

    /// IRI of the measure property.
    pub fn measure_iri(&self) -> String {
        format!("{}measure/{}", self.namespace, self.measure)
    }

    /// IRI of dimension member `i` of dimension `name`.
    pub fn member_iri(&self, name: &str, i: usize) -> String {
        format!("{}code/{name}/{i}", self.namespace)
    }
}

/// Generates the cube as an RDF graph.
pub fn generate(cfg: &CubeConfig) -> Graph {
    let mut rng = crate::rng(cfg.seed);
    let mut g = Graph::new();
    let ds = cfg.dataset_iri();
    g.insert(Triple::iri(&ds, rdf::TYPE, Term::iri(qb::DATA_SET)));
    g.insert(Triple::iri(
        &ds,
        rdfs::LABEL,
        Term::literal(format!("Synthetic {} cube", cfg.measure)),
    ));
    for (name, card) in &cfg.dimensions {
        let dim = cfg.dimension_iri(name);
        g.insert(Triple::iri(
            &dim,
            rdf::TYPE,
            Term::iri(qb::DIMENSION_PROPERTY),
        ));
        g.insert(Triple::iri(&dim, rdfs::LABEL, Term::literal(name.clone())));
        for i in 0..*card {
            g.insert(Triple::iri(
                &cfg.member_iri(name, i),
                rdfs::LABEL,
                Term::literal(format!("{name} {i}")),
            ));
        }
    }
    let measure = cfg.measure_iri();
    g.insert(Triple::iri(
        &measure,
        rdf::TYPE,
        Term::iri(qb::MEASURE_PROPERTY),
    ));
    let dist = Normal {
        mean: cfg.measure_mean,
        std_dev: cfg.measure_std,
    };
    // Iterate the full cross product with a mixed-radix counter.
    let cards: Vec<usize> = cfg.dimensions.iter().map(|(_, c)| *c).collect();
    let total = cfg.observation_count();
    let mut idx = vec![0usize; cards.len()];
    for obs_no in 0..total {
        let o = format!("{}observation/O{obs_no}", cfg.namespace);
        g.insert(Triple::iri(&o, rdf::TYPE, Term::iri(qb::OBSERVATION)));
        g.insert(Triple::iri(&o, qb::DATASET_PROP, Term::iri(ds.clone())));
        for (d, (name, _)) in cfg.dimensions.iter().enumerate() {
            g.insert(Triple::iri(
                &o,
                &cfg.dimension_iri(name),
                Term::iri(cfg.member_iri(name, idx[d])),
            ));
        }
        // Give each area a distinct baseline so groupings differ.
        let area_shift = idx
            .first()
            .map(|&a| a as f64 * cfg.measure_std * 0.2)
            .unwrap_or(0.0);
        let v = (dist.sample(&mut rng) + area_shift).max(0.0).round();
        g.insert(Triple::iri(&o, &measure, Term::Literal(Literal::double(v))));
        // Increment the mixed-radix counter.
        for d in (0..cards.len()).rev() {
            idx[d] += 1;
            if idx[d] < cards[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (CubeConfig, Graph) {
        let cfg = CubeConfig {
            dimensions: vec![("area".into(), 4), ("year".into(), 3)],
            ..Default::default()
        };
        let g = generate(&cfg);
        (cfg, g)
    }

    #[test]
    fn observation_count_is_cross_product() {
        let (cfg, g) = small();
        assert_eq!(cfg.observation_count(), 12);
        let obs = g
            .triples_for_predicate(rdf::TYPE)
            .filter(|t| t.object == Term::iri(qb::OBSERVATION))
            .count();
        assert_eq!(obs, 12);
    }

    #[test]
    fn every_observation_has_all_dimensions_and_measure() {
        let (cfg, g) = small();
        let measure = cfg.measure_iri();
        for t in g
            .triples_for_predicate(rdf::TYPE)
            .filter(|t| t.object == Term::iri(qb::OBSERVATION))
        {
            let s = &t.subject;
            for (name, _) in &cfg.dimensions {
                assert!(
                    g.object_for(s, &cfg.dimension_iri(name)).is_some(),
                    "missing dimension {name} on {s}"
                );
            }
            let v = g.object_for(s, &measure).expect("missing measure");
            assert!(v.as_literal().is_some());
        }
    }

    #[test]
    fn dimension_declarations_present() {
        let (cfg, g) = small();
        for (name, _) in &cfg.dimensions {
            let dim = Term::iri(cfg.dimension_iri(name));
            assert!(g
                .iter()
                .any(|t| t.subject == dim && t.object == Term::iri(qb::DIMENSION_PROPERTY)));
        }
        assert!(g
            .iter()
            .any(|t| t.object == Term::iri(qb::MEASURE_PROPERTY)));
    }

    #[test]
    fn distinct_members_per_dimension() {
        let (cfg, g) = small();
        let area_dim = cfg.dimension_iri("area");
        let members: std::collections::BTreeSet<_> = g
            .triples_for_predicate(&area_dim)
            .map(|t| t.object.clone())
            .collect();
        assert_eq!(members.len(), 4);
    }

    #[test]
    fn generator_is_deterministic() {
        let (_, a) = small();
        let (_, b) = small();
        assert_eq!(a, b);
    }
}
