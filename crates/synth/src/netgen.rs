//! Network topology generators.
//!
//! The graph-based systems of §3.4 (and the hierarchical/bundling
//! techniques of §4) are evaluated on graphs whose *degree distribution*
//! drives the outcome: force-directed layout cost, coarsening quality and
//! sampling fidelity all depend on skew. Three classic models cover the
//! space:
//!
//! * **Barabási–Albert** — preferential attachment, power-law degrees; the
//!   shape of real LOD link graphs.
//! * **Erdős–Rényi** — independent edges, Poisson degrees; the "no hubs"
//!   control.
//! * **Watts–Strogatz** — ring + rewiring; high clustering, used for the
//!   community-detection tests.

use crate::rng::{Rng, SliceRandom};
use wodex_rdf::vocab::{foaf, rdfs};
use wodex_rdf::{Graph, Term, Triple};

/// An undirected simple graph as an edge list over `0..n` node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of nodes.
    pub nodes: usize,
    /// Undirected edges, stored with `a < b`.
    pub edges: Vec<(u32, u32)>,
}

impl EdgeList {
    /// Creates an empty graph with `n` nodes.
    pub fn empty(n: usize) -> EdgeList {
        EdgeList {
            nodes: n,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge, normalizing the orientation; self-loops are
    /// ignored.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.edges.push((a, b));
    }

    /// Removes duplicate edges.
    pub fn dedup(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Per-node degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.nodes];
        for &(a, b) in &self.edges {
            d[a as usize] += 1;
            d[b as usize] += 1;
        }
        d
    }

    /// Converts to an RDF graph: nodes become `ex:node{i}` resources with
    /// `rdfs:label`s, edges become `foaf:knows` triples.
    pub fn to_rdf(&self, ns: &str) -> Graph {
        let mut g = Graph::new();
        for i in 0..self.nodes {
            g.insert(Triple::iri(
                &format!("{ns}node{i}"),
                rdfs::LABEL,
                Term::literal(format!("node {i}")),
            ));
        }
        for &(a, b) in &self.edges {
            g.insert(Triple::iri(
                &format!("{ns}node{a}"),
                foaf::KNOWS,
                Term::iri(format!("{ns}node{b}")),
            ));
        }
        g
    }
}

/// Barabási–Albert preferential attachment: each new node attaches `m`
/// edges to existing nodes with probability proportional to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(m >= 1, "m must be at least 1");
    assert!(n > m, "need more nodes than attachment edges");
    let mut rng = crate::rng(seed);
    let mut g = EdgeList::empty(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m+1 nodes.
    for a in 0..=(m as u32) {
        for b in (a + 1)..=(m as u32) {
            g.add_edge(a, b);
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    for v in (m + 1)..n {
        let v = v as u32;
        // A Vec with a linear dedup check keeps insertion order (and thus
        // RNG consumption) deterministic; m is tiny.
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            g.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g.dedup();
    g
}

/// Erdős–Rényi G(n, p): every pair is an edge independently with
/// probability `p`. Uses geometric skipping so the cost is O(edges).
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> EdgeList {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = crate::rng(seed);
    let mut g = EdgeList::empty(n);
    if p <= 0.0 || n < 2 {
        return g;
    }
    // Iterate pair index k over the upper triangle via skip lengths.
    let total_pairs = n * (n - 1) / 2;
    let mut k: usize = 0;
    let log_q = (1.0 - p).ln();
    loop {
        if p >= 1.0 {
            if k >= total_pairs {
                break;
            }
        } else {
            let u: f64 = rng.random_range(f64::EPSILON..1.0);
            let skip = (u.ln() / log_q).floor() as usize;
            k = k.saturating_add(skip);
            if k >= total_pairs {
                break;
            }
        }
        let (a, b) = pair_from_index(k, n);
        g.add_edge(a as u32, b as u32);
        k += 1;
    }
    g.dedup();
    g
}

/// Maps a linear index into the upper triangle of an n×n matrix to (row,
/// col) with row < col.
fn pair_from_index(k: usize, n: usize) -> (usize, usize) {
    // Row i owns (n-1-i) pairs. Find i by walking; n is small enough that
    // the closed-form quadratic is not worth the float hazard.
    let mut i = 0usize;
    let mut rem = k;
    loop {
        let row_len = n - 1 - i;
        if rem < row_len {
            return (i, i + 1 + rem);
        }
        rem -= row_len;
        i += 1;
    }
}

/// Watts–Strogatz: ring lattice with `k` neighbours per side, each edge
/// rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> EdgeList {
    assert!(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
    let mut rng = crate::rng(seed);
    let mut g = EdgeList::empty(n);
    for i in 0..n {
        for j in 1..=k {
            let a = i as u32;
            let b = ((i + j) % n) as u32;
            if rng.random_range(0.0..1.0) < beta {
                // Rewire the far endpoint to a uniform non-self target.
                let mut t = rng.random_range(0..n as u32);
                while t == a {
                    t = rng.random_range(0..n as u32);
                }
                g.add_edge(a, t);
            } else {
                g.add_edge(a, b);
            }
        }
    }
    g.dedup();
    g
}

/// A planted-partition graph: `communities` groups of equal size, dense
/// inside (`p_in`), sparse across (`p_out`). Ground truth for the
/// community-detection and abstraction-hierarchy tests (E8).
pub fn planted_partition(
    communities: usize,
    per_community: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> (EdgeList, Vec<u32>) {
    let n = communities * per_community;
    let mut rng = crate::rng(seed);
    let mut g = EdgeList::empty(n);
    let labels: Vec<u32> = (0..n).map(|i| (i / per_community) as u32).collect();
    for a in 0..n {
        for b in (a + 1)..n {
            let p = if labels[a] == labels[b] { p_in } else { p_out };
            if rng.random_range(0.0..1.0) < p {
                g.add_edge(a as u32, b as u32);
            }
        }
    }
    g.dedup();
    (g, labels)
}

/// A *directed* multigraph-free arc list with both endpoints drawn from
/// a Zipf distribution over node ranks: hubs attract many in- and
/// out-arcs, so directed triangles and small cliques occur at the rates
/// real citation/link graphs show. This is the workload generator for
/// the cyclic-query (worst-case-optimal join) benchmarks — note
/// [`EdgeList`] cannot serve there, since its `a < b` normalization
/// erases arc direction and with it every directed cycle.
///
/// Draws `(source, target)` pairs until `arcs` *distinct* non-loop arcs
/// exist (or a draw budget of `20 × arcs` runs out, which only happens
/// when `arcs` approaches `nodes²`). Seeded and fully deterministic.
pub fn zipf_digraph(nodes: usize, arcs: usize, exponent: f64, seed: u64) -> Vec<(u32, u32)> {
    assert!(nodes >= 2, "need at least two nodes for an arc");
    let mut rng = crate::rng(seed);
    let zipf = crate::dist::Zipf::new(nodes, exponent);
    let mut seen = std::collections::HashSet::with_capacity(arcs);
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(arcs);
    let mut draws = 0usize;
    while out.len() < arcs && draws < arcs.saturating_mul(20) {
        draws += 1;
        let a = (zipf.sample_rank(&mut rng) - 1) as u32;
        let b = (zipf.sample_rank(&mut rng) - 1) as u32;
        if a != b && seen.insert((a, b)) {
            out.push((a, b));
        }
    }
    out
}

/// Shuffles node ids, relabeling edges — used to check that algorithms do
/// not depend on generator ordering.
pub fn shuffle_ids(g: &EdgeList, seed: u64) -> EdgeList {
    let mut rng = crate::rng(seed);
    let mut perm: Vec<u32> = (0..g.nodes as u32).collect();
    perm.shuffle(&mut rng);
    let mut out = EdgeList::empty(g.nodes);
    for &(a, b) in &g.edges {
        out.add_edge(perm[a as usize], perm[b as usize]);
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_has_expected_edge_count_and_skew() {
        let g = barabasi_albert(2000, 3, 1);
        assert_eq!(g.nodes, 2000);
        // ~ m per new node plus the seed clique.
        assert!(g.edges.len() >= 1990 * 3);
        let mut d = g.degrees();
        d.sort_unstable_by(|a, b| b.cmp(a));
        // Power law: max degree far above the mean.
        let mean = d.iter().sum::<usize>() as f64 / d.len() as f64;
        assert!(
            d[0] as f64 > 5.0 * mean,
            "max {} should dwarf mean {mean}",
            d[0]
        );
        // Minimum degree is m.
        assert!(*d.last().unwrap() >= 3);
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let n = 500;
        let p = 0.02;
        let g = erdos_renyi(n, p, 2);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.edges.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.25,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn er_handles_extremes() {
        assert!(erdos_renyi(100, 0.0, 1).edges.is_empty());
        let full = erdos_renyi(20, 1.0, 1);
        assert_eq!(full.edges.len(), 190);
    }

    #[test]
    fn pair_from_index_enumerates_upper_triangle() {
        let n = 5;
        let mut seen = Vec::new();
        for k in 0..(n * (n - 1) / 2) {
            seen.push(pair_from_index(k, n));
        }
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|&(a, b)| a < b && b < n));
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn ws_degree_is_regular_before_rewiring() {
        let g = watts_strogatz(100, 3, 0.0, 3);
        assert!(g.degrees().iter().all(|&d| d == 6));
    }

    #[test]
    fn ws_rewiring_preserves_edge_count_roughly() {
        let g = watts_strogatz(200, 2, 0.3, 4);
        // Rewiring can create duplicates that dedup removes; stay close.
        assert!(g.edges.len() > 350 && g.edges.len() <= 400);
    }

    #[test]
    fn planted_partition_is_denser_inside() {
        let (g, labels) = planted_partition(4, 25, 0.3, 0.01, 5);
        let mut inside = 0;
        let mut across = 0;
        for &(a, b) in &g.edges {
            if labels[a as usize] == labels[b as usize] {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > across * 2, "inside={inside}, across={across}");
    }

    #[test]
    fn to_rdf_counts() {
        let g = barabasi_albert(50, 2, 6);
        let rdf = g.to_rdf("http://e.org/");
        // One label per node plus one triple per edge.
        assert_eq!(rdf.len(), 50 + g.edges.len());
    }

    #[test]
    fn shuffle_preserves_structure() {
        let g = barabasi_albert(300, 2, 7);
        let s = shuffle_ids(&g, 8);
        assert_eq!(s.edges.len(), g.edges.len());
        let mut d1 = g.degrees();
        let mut d2 = s.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2, "degree multiset must be invariant");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(barabasi_albert(100, 2, 9), barabasi_albert(100, 2, 9));
        assert_eq!(erdos_renyi(100, 0.05, 9), erdos_renyi(100, 0.05, 9));
        assert_eq!(zipf_digraph(80, 400, 1.0, 9), zipf_digraph(80, 400, 1.0, 9));
    }

    #[test]
    fn zipf_digraph_arcs_are_distinct_directed_and_in_range() {
        let n = 100;
        let arcs = zipf_digraph(n, 800, 1.0, 11);
        assert_eq!(arcs.len(), 800, "draw budget suffices at this density");
        let mut dedup = arcs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), arcs.len(), "arcs are distinct");
        assert!(arcs
            .iter()
            .all(|&(a, b)| a != b && (a as usize) < n && (b as usize) < n));
    }

    #[test]
    fn zipf_digraph_is_skewed_and_contains_directed_triangles() {
        let n = 100usize;
        let arcs = zipf_digraph(n, 1200, 1.0, 12);
        // Skew: rank 0 (the Zipf head) touches far more arcs than the mean.
        let mut deg = vec![0usize; n];
        for &(a, b) in &arcs {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mean = deg.iter().sum::<usize>() as f64 / n as f64;
        assert!(
            deg[0] as f64 > 3.0 * mean,
            "head degree {} vs mean {mean}",
            deg[0]
        );
        // Directed 3-cycles a→b→c→a must exist (the WCO bench depends
        // on them); count by brute force over adjacency sets.
        let adj: std::collections::HashSet<(u32, u32)> = arcs.iter().copied().collect();
        let mut triangles = 0usize;
        for &(a, b) in &arcs {
            for &(b2, c) in &arcs {
                if b2 == b && adj.contains(&(c, a)) {
                    triangles += 1;
                }
            }
        }
        assert!(triangles > 0, "no directed triangles generated");
    }
}
