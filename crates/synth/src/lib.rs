//! # wodex-synth — synthetic Linked-Data workload generators
//!
//! The survey's experiments concern *very large*, *heterogeneous*,
//! *skewed* datasets (DBpedia, LinkedGeoData, statistical data cubes). No
//! such dumps ship with this repository, so every experiment in
//! `EXPERIMENTS.md` runs on synthetic data produced here. The generators
//! are **seeded and deterministic**: the same parameters always produce the
//! same dataset, making benchmarks and tests reproducible.
//!
//! What matters for the techniques under test is the *distribution shape* —
//! degree skew for graphs, value skew for numeric columns, dimension
//! cardinalities for cubes — not the identity of the entities, so each
//! generator is parameterized along exactly those axes.
//!
//! * [`dist`] — Zipf / normal / exponential / mixture samplers.
//! * [`values`] — raw numeric & temporal column generators.
//! * [`dbpedia`] — DBpedia-like entity-centric RDF graphs.
//! * [`cube`] — W3C Data Cube statistical datasets (§3.3 systems).
//! * [`geo`] — clustered geospatial POIs (§3.3 systems).
//! * [`netgen`] — network topologies (Barabási–Albert, Erdős–Rényi,
//!   Watts–Strogatz) as edge lists and as RDF (§3.4 systems).
//! * [`rng`] — vendored SplitMix64/xorshift generators (no registry access
//!   in the build environment, so `rand` cannot be a dependency).

pub mod cube;
pub mod dbpedia;
pub mod dist;
pub mod geo;
pub mod netgen;
pub mod rng;
pub mod values;

pub use dist::{Mixture, Sampler, Zipf};
pub use netgen::EdgeList;

/// Creates the workspace-standard seeded RNG for a generator.
///
/// All generators route their randomness through this so that a single
/// `seed` parameter fully determines their output.
pub fn rng(seed: u64) -> rng::StdRng {
    use rng::SeedableRng;
    rng::StdRng::seed_from_u64(seed)
}
