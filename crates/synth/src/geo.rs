//! Geospatial POI generator.
//!
//! §3.3's geospatial systems (Map4rdf, Facete, SexTant, LinkedGeoData
//! Browser, DBpedia Atlas) consume points-of-interest with WGS84
//! coordinates. Real POI data is *clustered* — dense around settlements,
//! sparse elsewhere — which is exactly the property that makes spatial
//! indexing and viewport windowing (E10) non-trivial, so the generator
//! produces a configurable number of Gaussian clusters plus uniform noise.

use crate::dist::{Normal, Sampler, Uniform};
use crate::rng::Rng;
use wodex_rdf::term::Literal;
use wodex_rdf::vocab::{geo, rdf, rdfs};
use wodex_rdf::{Graph, Term, Triple};

/// A point with WGS84 coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poi {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Cluster index, or `None` for background noise.
    pub cluster: Option<usize>,
}

/// Configuration for the POI generator.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// Number of points.
    pub points: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Fraction of points that are uniform background noise (0..1).
    pub noise_fraction: f64,
    /// Bounding box (lat_min, lat_max, lon_min, lon_max).
    pub bbox: (f64, f64, f64, f64),
    /// Cluster standard deviation in degrees.
    pub cluster_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            points: 1000,
            clusters: 8,
            noise_fraction: 0.15,
            bbox: (34.0, 42.0, 19.0, 28.0),
            cluster_std: 0.15,
            seed: 11,
        }
    }
}

/// Generates raw POIs.
pub fn points(cfg: &GeoConfig) -> Vec<Poi> {
    let mut rng = crate::rng(cfg.seed);
    let (lat_min, lat_max, lon_min, lon_max) = cfg.bbox;
    let lat_u = Uniform {
        lo: lat_min,
        hi: lat_max,
    };
    let lon_u = Uniform {
        lo: lon_min,
        hi: lon_max,
    };
    // Cluster centers.
    let centers: Vec<(f64, f64)> = (0..cfg.clusters)
        .map(|_| (lat_u.sample(&mut rng), lon_u.sample(&mut rng)))
        .collect();
    let mut out = Vec::with_capacity(cfg.points);
    for _ in 0..cfg.points {
        if centers.is_empty() || rng.random_range(0.0..1.0) < cfg.noise_fraction {
            out.push(Poi {
                lat: lat_u.sample(&mut rng),
                lon: lon_u.sample(&mut rng),
                cluster: None,
            });
        } else {
            let c = rng.random_range(0..centers.len());
            let n = Normal {
                mean: 0.0,
                std_dev: cfg.cluster_std,
            };
            out.push(Poi {
                lat: (centers[c].0 + n.sample(&mut rng)).clamp(lat_min, lat_max),
                lon: (centers[c].1 + n.sample(&mut rng)).clamp(lon_min, lon_max),
                cluster: Some(c),
            });
        }
    }
    out
}

/// Generates POIs as an RDF graph using the W3C Basic Geo vocabulary,
/// optionally with a timestamp per point (time-evolving geospatial data,
/// the SexTant/Spacetime workload).
pub fn generate(cfg: &GeoConfig, namespace: &str, with_time: bool) -> Graph {
    let pois = points(cfg);
    let ts = if with_time {
        crate::values::timestamps(pois.len(), 1_420_070_400, 365 * 86_400, cfg.seed ^ 0xABCD)
    } else {
        Vec::new()
    };
    let mut g = Graph::new();
    for (i, p) in pois.iter().enumerate() {
        let s = format!("{namespace}poi/P{i}");
        g.insert(Triple::iri(&s, rdf::TYPE, Term::iri(geo::POINT)));
        g.insert(Triple::iri(
            &s,
            rdfs::LABEL,
            Term::literal(format!("POI {i}")),
        ));
        g.insert(Triple::iri(
            &s,
            geo::LAT,
            Term::double((p.lat * 1e5).round() / 1e5),
        ));
        g.insert(Triple::iri(
            &s,
            geo::LONG,
            Term::double((p.lon * 1e5).round() / 1e5),
        ));
        if with_time {
            let secs = ts[i];
            let days = secs.div_euclid(86_400);
            let (y, m, d) = wodex_rdf::value::civil_from_days(days);
            let rem = secs.rem_euclid(86_400);
            g.insert(Triple::iri(
                &s,
                wodex_rdf::vocab::dcterms::CREATED,
                Term::Literal(Literal::date_time(
                    y,
                    m,
                    d,
                    (rem / 3600) as u32,
                    ((rem % 3600) / 60) as u32,
                    (rem % 60) as u32,
                )),
            ));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_stay_in_bbox() {
        let cfg = GeoConfig::default();
        let ps = points(&cfg);
        assert_eq!(ps.len(), 1000);
        let (a, b, c, d) = cfg.bbox;
        assert!(ps
            .iter()
            .all(|p| p.lat >= a && p.lat <= b && p.lon >= c && p.lon <= d));
    }

    #[test]
    fn clustering_is_visible() {
        // Points in clusters should be much closer to their cluster's
        // centroid than random pairs are to each other.
        let cfg = GeoConfig {
            points: 2000,
            noise_fraction: 0.0,
            ..Default::default()
        };
        let ps = points(&cfg);
        let mut sums: std::collections::HashMap<usize, (f64, f64, usize)> = Default::default();
        for p in &ps {
            let e = sums.entry(p.cluster.unwrap()).or_insert((0.0, 0.0, 0));
            e.0 += p.lat;
            e.1 += p.lon;
            e.2 += 1;
        }
        let mut total_spread = 0.0;
        for p in &ps {
            let (la, lo, n) = sums[&p.cluster.unwrap()];
            let (cl, co) = (la / n as f64, lo / n as f64);
            total_spread += ((p.lat - cl).powi(2) + (p.lon - co).powi(2)).sqrt();
        }
        let mean_spread = total_spread / ps.len() as f64;
        assert!(mean_spread < 0.5, "mean spread {mean_spread} too large");
    }

    #[test]
    fn noise_fraction_honored_roughly() {
        let cfg = GeoConfig {
            points: 4000,
            noise_fraction: 0.5,
            ..Default::default()
        };
        let ps = points(&cfg);
        let noise = ps.iter().filter(|p| p.cluster.is_none()).count();
        assert!((1700..2300).contains(&noise), "noise={noise}");
    }

    #[test]
    fn rdf_output_has_coordinates_and_time() {
        let cfg = GeoConfig {
            points: 50,
            ..Default::default()
        };
        let g = generate(&cfg, "http://e.org/", true);
        assert_eq!(g.triples_for_predicate(geo::LAT).count(), 50);
        assert_eq!(g.triples_for_predicate(geo::LONG).count(), 50);
        assert_eq!(
            g.triples_for_predicate(wodex_rdf::vocab::dcterms::CREATED)
                .count(),
            50
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = GeoConfig::default();
        assert_eq!(points(&cfg), points(&cfg));
    }
}
