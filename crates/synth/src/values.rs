//! Raw numeric & temporal column generators.
//!
//! The approximation (E1–E3) and hierarchical-aggregation (E7) experiments
//! operate on bare columns of values rather than full RDF graphs; this
//! module produces those columns with controlled distribution shapes.

use crate::dist::{Exponential, Mixture, Normal, Sampler, Uniform, Zipf};

/// The distribution shapes used across the experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Uniform on [0, 1000).
    Uniform,
    /// Normal(500, 100).
    Normal,
    /// Heavy-tailed: Zipf ranks over 10⁴ distinct values, exponent 1.07.
    Zipf,
    /// Exponential with mean 200.
    Exponential,
    /// Bimodal mixture of two well-separated normals.
    Bimodal,
}

impl Shape {
    /// All shapes, for parameter sweeps.
    pub fn all() -> [Shape; 5] {
        [
            Shape::Uniform,
            Shape::Normal,
            Shape::Zipf,
            Shape::Exponential,
            Shape::Bimodal,
        ]
    }

    /// A short identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Uniform => "uniform",
            Shape::Normal => "normal",
            Shape::Zipf => "zipf",
            Shape::Exponential => "exponential",
            Shape::Bimodal => "bimodal",
        }
    }
}

/// Generates `n` values of the given [`Shape`], deterministically from
/// `seed`.
pub fn column(shape: Shape, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = crate::rng(seed);
    match shape {
        Shape::Uniform => Uniform {
            lo: 0.0,
            hi: 1000.0,
        }
        .sample_n(&mut rng, n),
        Shape::Normal => Normal {
            mean: 500.0,
            std_dev: 100.0,
        }
        .sample_n(&mut rng, n),
        Shape::Zipf => Zipf::new(10_000, 1.07).sample_n(&mut rng, n),
        Shape::Exponential => Exponential { lambda: 0.005 }.sample_n(&mut rng, n),
        Shape::Bimodal => Mixture::new()
            .with(
                2.0,
                Normal {
                    mean: 200.0,
                    std_dev: 30.0,
                },
            )
            .with(
                1.0,
                Normal {
                    mean: 800.0,
                    std_dev: 50.0,
                },
            )
            .sample_n(&mut rng, n),
    }
}

/// Generates `n` epoch-second timestamps spanning `[start, start + span)`
/// with bursty (exponential inter-arrival) structure — the shape of event
/// streams and time-evolving geospatial data (SexTant/Spacetime workloads).
pub fn timestamps(n: usize, start: i64, span: i64, seed: u64) -> Vec<i64> {
    let mut rng = crate::rng(seed);
    let exp = Exponential { lambda: 1.0 };
    let mut raw: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0;
    for _ in 0..n {
        acc += exp.sample(&mut rng);
        raw.push(acc);
    }
    let max = raw.last().copied().unwrap_or(1.0).max(f64::MIN_POSITIVE);
    raw.iter()
        .map(|&t| start + ((t / max) * span as f64) as i64)
        .collect()
}

/// A value stream that yields chunks, emulating the §2 "dynamic setting"
/// where data arrives continuously and cannot be preprocessed.
pub struct ChunkStream {
    shape: Shape,
    chunk: usize,
    produced: usize,
    total: usize,
    seed: u64,
}

impl ChunkStream {
    /// Creates a stream of `total` values delivered in `chunk`-sized pieces.
    pub fn new(shape: Shape, total: usize, chunk: usize, seed: u64) -> ChunkStream {
        assert!(chunk > 0, "chunk size must be positive");
        ChunkStream {
            shape,
            chunk,
            produced: 0,
            total,
            seed,
        }
    }

    /// Values remaining.
    pub fn remaining(&self) -> usize {
        self.total - self.produced
    }
}

impl Iterator for ChunkStream {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Vec<f64>> {
        if self.produced >= self.total {
            return None;
        }
        let k = self.chunk.min(self.total - self.produced);
        // Each chunk is seeded independently so that streams are
        // restartable and chunks are reproducible in isolation.
        let vals = column(
            self.shape,
            k,
            self.seed ^ (self.produced as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.produced += k;
        Some(vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_is_deterministic() {
        assert_eq!(column(Shape::Normal, 100, 7), column(Shape::Normal, 100, 7));
        assert_ne!(column(Shape::Normal, 100, 7), column(Shape::Normal, 100, 8));
    }

    #[test]
    fn column_shapes_differ() {
        let u = column(Shape::Uniform, 5000, 1);
        let z = column(Shape::Zipf, 5000, 1);
        // Zipf values are dominated by small ranks; uniform spreads evenly.
        let umed = {
            let mut v = u.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let zmed = {
            let mut v = z.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!(umed > 300.0 && umed < 700.0);
        assert!(zmed < 100.0, "zipf median should be tiny, was {zmed}");
    }

    #[test]
    fn timestamps_are_sorted_and_in_range() {
        let ts = timestamps(1000, 1_000_000, 86_400, 3);
        assert_eq!(ts.len(), 1000);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert!(*ts.first().unwrap() >= 1_000_000);
        assert!(*ts.last().unwrap() <= 1_000_000 + 86_400);
    }

    #[test]
    fn chunk_stream_covers_total() {
        let s = ChunkStream::new(Shape::Uniform, 1050, 100, 1);
        let chunks: Vec<_> = s.collect();
        assert_eq!(chunks.len(), 11);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 1050);
        assert_eq!(chunks.last().unwrap().len(), 50);
    }

    #[test]
    fn chunk_stream_is_reproducible() {
        let a: Vec<_> = ChunkStream::new(Shape::Bimodal, 500, 64, 9).collect();
        let b: Vec<_> = ChunkStream::new(Shape::Bimodal, 500, 64, 9).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn chunk_stream_rejects_zero_chunk() {
        let _ = ChunkStream::new(Shape::Uniform, 10, 0, 1);
    }
}
