//! Vendored pseudo-random number generation.
//!
//! The build environment has no registry access, so the workspace cannot
//! depend on the `rand` crate. This module provides the small slice of its
//! API that the generators actually use — `random_range` over integer and
//! float ranges, `shuffle`, and a seedable deterministic generator — on top
//! of a SplitMix64 core. Streams are fixed by construction: the same seed
//! always yields the same sequence, on every platform and thread count.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics on an empty range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                // Unbiased-enough multiply-shift: maps 64 random bits onto
                // [0, span) with bias < span / 2^64.
                let off = ((rng.next_u64() as u128 * span) >> 64) as $u;
                (self.start as $u).wrapping_add(off) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as $u;
                (lo as $u).wrapping_add(off) as $t
            }
        }
    )*};
}

int_sample_range!(i32 => u32, u32 => u32, i64 => u64, u64 => u64, usize => u64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            // Rounding pushed us onto the open bound; step back inside.
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        (lo + (hi - lo) * unit).clamp(lo, hi)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / ((1u32 << 24) - 1) as f32;
        (lo + (hi - lo) * unit).clamp(lo, hi)
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace-standard generator: SplitMix64.
///
/// Fast, passes BigCrush on its output stream, and — crucial here — tiny
/// enough to vendor. One `u64` of state; each draw advances by the golden
/// ratio and mixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xorshift64*: a second independent stream family, used where a cheap
/// decorrelated generator is handy (e.g. per-chunk jitter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl SeedableRng for XorShift64 {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        XorShift64 {
            state: seed | 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RngCore for XorShift64 {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// In-place slice shuffling (Fisher–Yates).
pub trait SliceRandom {
    /// Uniformly permutes the slice using `rng`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample(rng);
            self.swap(i, j);
        }
    }
}

/// Mirrors `rand::rngs` so call sites can keep a familiar path.
pub mod rngs {
    pub use super::{StdRng, XorShift64};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-1i64..=1);
            assert!((-1..=1).contains(&w));
            let u: usize = rng.random_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn int_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut edge = [false; 3];
        for _ in 0..1000 {
            edge[(rng.random_range(-1..=1i64) + 1) as usize] = true;
        }
        assert!(edge.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            let w: f32 = rng.random_range(0.0..=100.0f32);
            assert!((0.0..=100.0f32).contains(&w));
        }
    }

    #[test]
    fn float_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn shuffle_permutes_and_is_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_supports_range_sampling() {
        let mut base = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn RngCore = &mut base;
        fn draw<R: Rng>(mut rng: R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let v = draw(dyn_rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn xorshift_differs_from_splitmix() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = XorShift64::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
