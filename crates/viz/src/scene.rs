//! The renderer-independent scene graph.
//!
//! Charts produce a [`Scene`] of primitive [`Mark`]s; the [`crate::render`]
//! back ends turn scenes into SVG or ASCII. Keeping this layer explicit is
//! what makes visual output *unit-testable* — tests assert on marks, not
//! pixels — and it is the "Visualization Abstraction" stage of the LDVM.

/// An RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red.
    pub r: u8,
    /// Green.
    pub g: u8,
    /// Blue.
    pub b: u8,
}

impl Color {
    /// Creates a color.
    pub const fn new(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b }
    }

    /// Black.
    pub const BLACK: Color = Color::new(0, 0, 0);
    /// Mid gray.
    pub const GRAY: Color = Color::new(128, 128, 128);

    /// The default categorical palette (ten distinguishable hues).
    pub fn palette(i: usize) -> Color {
        const P: [Color; 10] = [
            Color::new(31, 119, 180),
            Color::new(255, 127, 14),
            Color::new(44, 160, 44),
            Color::new(214, 39, 40),
            Color::new(148, 103, 189),
            Color::new(140, 86, 75),
            Color::new(227, 119, 194),
            Color::new(127, 127, 127),
            Color::new(188, 189, 34),
            Color::new(23, 190, 207),
        ];
        P[i % P.len()]
    }

    /// A sequential light→dark blue ramp for `t` in \[0, 1\] (heatmaps).
    pub fn sequential(t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let lerp = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * t) as u8;
        Color::new(lerp(222, 8), lerp(235, 48), lerp(247, 107))
    }

    /// CSS hex form (`#rrggbb`).
    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

/// A drawing primitive. Coordinates are in scene units with the origin at
/// the top-left, x rightward, y downward.
#[derive(Debug, Clone, PartialEq)]
pub enum Mark {
    /// A filled rectangle.
    Rect {
        /// Left edge.
        x: f64,
        /// Top edge.
        y: f64,
        /// Width.
        w: f64,
        /// Height.
        h: f64,
        /// Fill color.
        color: Color,
        /// Tooltip/label payload.
        label: Option<String>,
    },
    /// A filled circle.
    Circle {
        /// Center x.
        cx: f64,
        /// Center y.
        cy: f64,
        /// Radius.
        r: f64,
        /// Fill color.
        color: Color,
        /// Tooltip/label payload.
        label: Option<String>,
    },
    /// A polyline.
    Line {
        /// The points of the polyline.
        points: Vec<(f64, f64)>,
        /// Stroke color.
        color: Color,
        /// Stroke width.
        width: f64,
    },
    /// A text label.
    Text {
        /// Anchor x.
        x: f64,
        /// Anchor y (baseline).
        y: f64,
        /// The text.
        text: String,
        /// Font size in scene units.
        size: f64,
        /// Text color.
        color: Color,
    },
}

/// A scene: a viewport plus an ordered list of marks (painter's order).
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Viewport width in scene units.
    pub width: f64,
    /// Viewport height in scene units.
    pub height: f64,
    /// Scene title (rendered by back ends).
    pub title: String,
    /// The marks, back to front.
    pub marks: Vec<Mark>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new(width: f64, height: f64, title: impl Into<String>) -> Scene {
        Scene {
            width,
            height,
            title: title.into(),
            marks: Vec::new(),
        }
    }

    /// Number of marks.
    pub fn mark_count(&self) -> usize {
        self.marks.len()
    }

    /// Counts marks of each primitive kind: (rects, circles, lines, texts).
    pub fn mark_breakdown(&self) -> (usize, usize, usize, usize) {
        let mut b = (0, 0, 0, 0);
        for m in &self.marks {
            match m {
                Mark::Rect { .. } => b.0 += 1,
                Mark::Circle { .. } => b.1 += 1,
                Mark::Line { .. } => b.2 += 1,
                Mark::Text { .. } => b.3 += 1,
            }
        }
        b
    }

    /// True if every mark lies inside the viewport (with `slack` units of
    /// tolerance) — the invariant chart constructors must maintain.
    pub fn in_bounds(&self, slack: f64) -> bool {
        let ok = |x: f64, y: f64| {
            x >= -slack && x <= self.width + slack && y >= -slack && y <= self.height + slack
        };
        self.marks.iter().all(|m| match m {
            Mark::Rect { x, y, w, h, .. } => ok(*x, *y) && ok(x + w, y + h),
            Mark::Circle { cx, cy, r, .. } => ok(cx - r, cy - r) && ok(cx + r, cy + r),
            Mark::Line { points, .. } => points.iter().all(|&(x, y)| ok(x, y)),
            Mark::Text { x, y, .. } => ok(*x, *y),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_helpers() {
        assert_eq!(Color::new(255, 0, 128).hex(), "#ff0080");
        assert_ne!(Color::palette(0), Color::palette(1));
        assert_eq!(Color::palette(0), Color::palette(10)); // wraps
        let light = Color::sequential(0.0);
        let dark = Color::sequential(1.0);
        assert!(light.r > dark.r);
        // Clamped.
        assert_eq!(Color::sequential(-5.0), light);
        assert_eq!(Color::sequential(5.0), dark);
    }

    #[test]
    fn breakdown_counts_by_kind() {
        let mut s = Scene::new(100.0, 100.0, "t");
        s.marks.push(Mark::Rect {
            x: 0.0,
            y: 0.0,
            w: 10.0,
            h: 10.0,
            color: Color::BLACK,
            label: None,
        });
        s.marks.push(Mark::Circle {
            cx: 5.0,
            cy: 5.0,
            r: 2.0,
            color: Color::BLACK,
            label: None,
        });
        s.marks.push(Mark::Text {
            x: 0.0,
            y: 0.0,
            text: "x".into(),
            size: 10.0,
            color: Color::BLACK,
        });
        assert_eq!(s.mark_breakdown(), (1, 1, 0, 1));
        assert_eq!(s.mark_count(), 3);
    }

    #[test]
    fn in_bounds_detects_overflow() {
        let mut s = Scene::new(100.0, 100.0, "t");
        s.marks.push(Mark::Circle {
            cx: 50.0,
            cy: 50.0,
            r: 10.0,
            color: Color::BLACK,
            label: None,
        });
        assert!(s.in_bounds(0.0));
        s.marks.push(Mark::Circle {
            cx: 99.0,
            cy: 50.0,
            r: 10.0,
            color: Color::BLACK,
            label: None,
        });
        assert!(!s.in_bounds(0.0));
        assert!(s.in_bounds(10.0));
    }
}
