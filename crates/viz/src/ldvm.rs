//! The Linked Data Visualization Model (LDVM) pipeline.
//!
//! LDVM \[29\] (Brunetti, Auer, García, Klímek & Nečaský) structures WoD
//! visualization as four connected stages:
//!
//! 1. **Source Data** — the RDF graph (or SPARQL result) as-is.
//! 2. **Analytical Abstraction** — data extracted & *reduced*: here a
//!    profiled property turned into a histogram / category counts /
//!    points / a laid-out network (this is where `wodex-approx` does the
//!    survey's approximation work).
//! 3. **Visualization Abstraction** — a chart type bound to the
//!    abstraction (chosen by [`crate::recommend`] unless overridden).
//! 4. **View** — a concrete [`Scene`] plus its SVG rendering.
//!
//! The pipeline is deliberately re-runnable per stage: changing the chart
//! type re-runs only stages 3–4, changing preferences re-runs 2–4 —
//! LDVM's "connect different datasets with various kinds of
//! visualizations in a dynamic way".

use crate::charts;
use crate::prefs::UserPreferences;
use crate::profile::{profile_property, DataKind, FieldProfile};
use crate::recommend::{recommend, Recommendation, VisKind};
use crate::render;
use crate::scene::Scene;
use wodex_graph::adjacency::Adjacency;
use wodex_graph::layout::{self, FrParams, Layout};
use wodex_rdf::vocab::geo;
use wodex_rdf::{Graph, Term, Value};

/// Stage 2 output: the reduced, visualization-ready form of the data.
#[derive(Debug, Clone)]
pub enum Abstraction {
    /// A binned numeric/temporal distribution.
    Distribution {
        /// The field profile.
        profile: FieldProfile,
        /// The binned histogram.
        histogram: wodex_approx::binning::Histogram,
    },
    /// Category → count (or summed measure).
    Categories {
        /// The field profile.
        profile: FieldProfile,
        /// Sorted (label, weight) pairs.
        pairs: Vec<(String, f64)>,
    },
    /// Geographic points.
    GeoPoints {
        /// (lat, lon) pairs.
        points: Vec<(f64, f64)>,
    },
    /// A laid-out network.
    Network {
        /// Node positions.
        layout: Layout,
        /// Edges between node indexes.
        edges: Vec<(u32, u32)>,
    },
}

impl Abstraction {
    /// The profiles this abstraction exposes to the recommender.
    pub fn profiles(&self) -> Vec<FieldProfile> {
        match self {
            Abstraction::Distribution { profile, .. } => vec![profile.clone()],
            Abstraction::Categories { profile, .. } => vec![profile.clone()],
            Abstraction::GeoPoints { points } => {
                let n = points.len();
                let f = |name: &str| FieldProfile {
                    name: name.into(),
                    kind: DataKind::Spatial,
                    count: n,
                    distinct: n,
                    numeric: None,
                };
                vec![f("lat"), f("long")]
            }
            Abstraction::Network { layout, edges } => vec![FieldProfile {
                name: "network".into(),
                kind: DataKind::Graph,
                count: edges.len(),
                distinct: layout.len(),
                numeric: None,
            }],
        }
    }
}

/// Stage 4 output: the rendered view plus full provenance of the run.
#[derive(Debug, Clone)]
pub struct View {
    /// The chosen chart type.
    pub kind: VisKind,
    /// The scene graph.
    pub scene: Scene,
    /// The SVG rendering.
    pub svg: String,
    /// The ranked recommendations that led to `kind`.
    pub recommendations: Vec<Recommendation>,
}

/// A user-defined analyzer: the Payola \[84\] plugin mechanism and §2's
/// "define her own operations for data manipulation and analysis". An
/// analyzer inspects the profiled property and, when it applies, replaces
/// stage 2 with its own analytical abstraction.
pub trait Analyzer: Send + Sync {
    /// A short name for provenance/debugging.
    fn name(&self) -> &str;
    /// True if this analyzer wants to handle the property.
    fn applies(&self, profile: &FieldProfile) -> bool;
    /// Builds the abstraction (stage 2) for the property.
    fn analyze(&self, source: &Graph, predicate: &str, prefs: &UserPreferences) -> Abstraction;
}

/// The four-stage pipeline over one source graph.
pub struct LdvmPipeline {
    source: Graph,
    prefs: UserPreferences,
    analyzers: Vec<Box<dyn Analyzer>>,
}

impl LdvmPipeline {
    /// Stage 1: wraps the source data.
    pub fn new(source: Graph) -> LdvmPipeline {
        LdvmPipeline {
            source,
            prefs: UserPreferences::default(),
            analyzers: Vec::new(),
        }
    }

    /// Registers a custom analyzer; the first applicable analyzer wins
    /// over the built-in stage 2.
    pub fn with_analyzer(mut self, analyzer: Box<dyn Analyzer>) -> LdvmPipeline {
        self.analyzers.push(analyzer);
        self
    }

    /// Sets the preferences used by stages 2–4.
    pub fn with_prefs(mut self, prefs: UserPreferences) -> LdvmPipeline {
        self.prefs = prefs;
        self
    }

    /// The source graph.
    pub fn source(&self) -> &Graph {
        &self.source
    }

    /// Stage 2 for a single property: profile it and build the matching
    /// reduced abstraction.
    pub fn analyze_property(&self, predicate: &str) -> Abstraction {
        let profile = profile_property(&self.source, predicate);
        if let Some(a) = self.analyzers.iter().find(|a| a.applies(&profile)) {
            return a.analyze(&self.source, predicate, &self.prefs);
        }
        match profile.kind {
            DataKind::Numeric | DataKind::Temporal => {
                let values: Vec<f64> = self
                    .source
                    .triples_for_predicate(predicate)
                    .filter_map(|t| t.object.as_literal())
                    .map(Value::from_literal)
                    .filter_map(|v| {
                        v.as_f64()
                            .or_else(|| v.as_epoch_seconds().map(|s| s as f64))
                    })
                    .collect();
                let histogram = wodex_approx::binning::Histogram::build(
                    &values,
                    self.prefs.bins,
                    wodex_approx::binning::BinningStrategy::EqualWidth,
                );
                Abstraction::Distribution { profile, histogram }
            }
            DataKind::Spatial => Abstraction::GeoPoints {
                points: self.extract_geo(),
            },
            DataKind::Graph => {
                // Induce the subgraph of this object property.
                let sub: Graph = self
                    .source
                    .triples_for_predicate(predicate)
                    .filter(|t| t.object.is_resource())
                    .cloned()
                    .collect();
                let (adj, _) = Adjacency::from_rdf(&sub);
                let lay = layout::fruchterman_reingold(
                    &adj,
                    FrParams {
                        iterations: 30,
                        ..Default::default()
                    },
                );
                Abstraction::Network {
                    layout: lay,
                    edges: adj.edges().collect(),
                }
            }
            _ => {
                // Categorical/text: count object values.
                let mut counts: std::collections::BTreeMap<String, f64> = Default::default();
                for t in self.source.triples_for_predicate(predicate) {
                    let label = match &t.object {
                        Term::Iri(i) => i.local_name().to_string(),
                        Term::Literal(l) => l.lexical().to_string(),
                        Term::Blank(b) => format!("_:{}", b.label()),
                    };
                    *counts.entry(label).or_insert(0.0) += 1.0;
                }
                let mut pairs: Vec<(String, f64)> = counts.into_iter().collect();
                pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite counts"));
                pairs.truncate(self.prefs.bins.max(8));
                Abstraction::Categories { profile, pairs }
            }
        }
    }

    /// Extracts (lat, lon) pairs joined per subject.
    fn extract_geo(&self) -> Vec<(f64, f64)> {
        let mut lat: std::collections::BTreeMap<&Term, f64> = Default::default();
        let mut lon: std::collections::BTreeMap<&Term, f64> = Default::default();
        for t in self.source.iter() {
            if let Some(l) = t.object.as_literal() {
                if let Some(v) = Value::from_literal(l).as_f64() {
                    if t.predicate.as_iri().is_some_and(|p| p.as_str() == geo::LAT) {
                        lat.insert(&t.subject, v);
                    } else if t
                        .predicate
                        .as_iri()
                        .is_some_and(|p| p.as_str() == geo::LONG)
                    {
                        lon.insert(&t.subject, v);
                    }
                }
            }
        }
        lat.iter()
            .filter_map(|(s, &la)| lon.get(s).map(|&lo| (la, lo)))
            .collect()
    }

    /// Stage 3: rank chart types for an abstraction, folding in user
    /// preferences.
    pub fn recommendations(&self, abstraction: &Abstraction) -> Vec<Recommendation> {
        self.prefs.apply(recommend(&abstraction.profiles()))
    }

    /// Stage 3+4: build the view — with the top-ranked chart type, or an
    /// explicit override.
    pub fn view(&self, abstraction: &Abstraction, kind: Option<VisKind>) -> View {
        let recommendations = self.recommendations(abstraction);
        let kind = kind
            .or_else(|| recommendations.first().map(|r| r.kind))
            .unwrap_or(VisKind::Table);
        let (w, h) = (self.prefs.width, self.prefs.height);
        let scene = match (abstraction, kind) {
            (Abstraction::Distribution { histogram, profile }, VisKind::HistogramChart)
            | (Abstraction::Distribution { histogram, profile }, VisKind::Line) => {
                if kind == VisKind::Line {
                    let pts: Vec<(f64, f64)> = histogram
                        .bins
                        .iter()
                        .map(|b| ((b.lo + b.hi) / 2.0, b.count as f64))
                        .collect();
                    charts::line_chart(&title_of(profile), &pts, w, h)
                } else {
                    charts::histogram(&title_of(profile), histogram, w, h)
                }
            }
            (Abstraction::Distribution { histogram, profile }, _) => {
                charts::histogram(&title_of(profile), histogram, w, h)
            }
            (Abstraction::Categories { pairs, profile }, VisKind::Pie) => {
                charts::pie(&title_of(profile), pairs, w, h)
            }
            (Abstraction::Categories { pairs, profile }, VisKind::Treemap) => {
                charts::treemap(&title_of(profile), pairs, w, h)
            }
            (Abstraction::Categories { pairs, profile }, _) => {
                charts::bar_chart(&title_of(profile), pairs, w, h)
            }
            (Abstraction::GeoPoints { points }, _) => {
                // The pipeline's own scalability rule: beyond the point
                // budget, a raw dot map becomes a density heatmap.
                if points.len() > self.prefs.max_points {
                    let cells = wodex_approx::binning::grid2d(points, 64, 48);
                    charts::heatmap("map density", &cells, 64, 48, w, h)
                } else {
                    charts::geo_scatter("map", points, w, h)
                }
            }
            (Abstraction::Network { layout, edges }, _) => {
                charts::node_link("network", layout, edges, None, w, h)
            }
        };
        let svg = render::to_svg(&scene);
        View {
            kind,
            scene,
            svg,
            recommendations,
        }
    }

    /// The whole pipeline for one property: stages 2→3→4.
    pub fn run(&self, predicate: &str) -> View {
        let a = self.analyze_property(predicate);
        self.view(&a, None)
    }
}

fn title_of(p: &FieldProfile) -> String {
    wodex_rdf::vocab::abbreviate(&p.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::vocab::rdf;
    use wodex_rdf::Triple;

    fn source() -> Graph {
        let mut g = Graph::new();
        for i in 0..300 {
            let s = format!("http://e.org/e{i}");
            g.insert(Triple::iri(
                &s,
                "http://e.org/value",
                Term::double((i % 50) as f64),
            ));
            g.insert(Triple::iri(
                &s,
                rdf::TYPE,
                Term::iri(format!("http://e.org/Class{}", i % 4)),
            ));
            g.insert(Triple::iri(
                &s,
                geo::LAT,
                Term::double(35.0 + (i % 10) as f64 * 0.1),
            ));
            g.insert(Triple::iri(
                &s,
                geo::LONG,
                Term::double(23.0 + (i % 7) as f64 * 0.1),
            ));
            g.insert(Triple::iri(
                &s,
                "http://e.org/links",
                Term::iri(format!("http://e.org/e{}", (i + 1) % 300)),
            ));
        }
        g
    }

    #[test]
    fn numeric_property_becomes_histogram_view() {
        let p = LdvmPipeline::new(source());
        let v = p.run("http://e.org/value");
        assert_eq!(v.kind, VisKind::HistogramChart);
        assert!(v.svg.contains("<rect"));
        assert!(v.scene.in_bounds(1.0));
        // Mark count bounded by bins, not by the 300 records.
        let (rects, _, _, _) = v.scene.mark_breakdown();
        assert!(rects <= UserPreferences::default().bins);
    }

    #[test]
    fn type_property_becomes_bar_view() {
        let p = LdvmPipeline::new(source());
        let a = p.analyze_property(rdf::TYPE);
        match &a {
            Abstraction::Categories { pairs, .. } => {
                assert_eq!(pairs.len(), 4);
                assert_eq!(pairs.iter().map(|&(_, c)| c).sum::<f64>(), 300.0);
            }
            other => panic!("expected categories, got {other:?}"),
        }
        let v = p.view(&a, None);
        assert_eq!(v.kind, VisKind::Bar);
    }

    #[test]
    fn spatial_property_becomes_map_view() {
        let p = LdvmPipeline::new(source());
        let v = p.run(geo::LAT);
        assert_eq!(v.kind, VisKind::Map);
        let (_, circles, _, _) = v.scene.mark_breakdown();
        assert_eq!(circles, 300);
    }

    #[test]
    fn object_property_becomes_network_view() {
        let p = LdvmPipeline::new(source());
        let v = p.run("http://e.org/links");
        assert_eq!(v.kind, VisKind::NodeLink);
        let (_, circles, lines, _) = v.scene.mark_breakdown();
        assert_eq!(circles, 300);
        assert_eq!(lines, 300);
    }

    #[test]
    fn override_rebinds_stage_three_only() {
        let p = LdvmPipeline::new(source());
        let a = p.analyze_property(rdf::TYPE);
        let pie = p.view(&a, Some(VisKind::Pie));
        assert_eq!(pie.kind, VisKind::Pie);
        let tm = p.view(&a, Some(VisKind::Treemap));
        assert_eq!(tm.kind, VisKind::Treemap);
        // Same abstraction, different scenes.
        assert_ne!(pie.scene, tm.scene);
    }

    #[test]
    fn preferences_flow_into_views_and_ranking() {
        let prefs = UserPreferences {
            bins: 8,
            ..Default::default()
        }
        .boost(VisKind::Treemap, 0.5);
        let p = LdvmPipeline::new(source()).with_prefs(prefs);
        let v = p.run("http://e.org/value");
        let (rects, _, _, _) = v.scene.mark_breakdown();
        assert!(rects <= 8, "bins preference must bound the marks");
        let a = p.analyze_property(rdf::TYPE);
        let v = p.view(&a, None);
        assert_eq!(v.kind, VisKind::Treemap, "boost must win stage 3");
    }

    #[test]
    fn views_carry_their_recommendation_provenance() {
        let p = LdvmPipeline::new(source());
        let v = p.run("http://e.org/value");
        assert!(!v.recommendations.is_empty());
        assert_eq!(v.recommendations[0].kind, v.kind);
        assert!(!v.recommendations[0].reason.is_empty());
    }
}
#[cfg(test)]
mod geo_budget_tests {
    use super::*;
    use wodex_rdf::{Graph, Term, Triple};

    fn geo_source(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            let s = format!("http://e.org/p{i}");
            g.insert(Triple::iri(
                &s,
                geo::LAT,
                Term::double(35.0 + (i % 100) as f64 * 0.01),
            ));
            g.insert(Triple::iri(
                &s,
                geo::LONG,
                Term::double(23.0 + (i / 100) as f64 * 0.01),
            ));
        }
        g
    }

    #[test]
    fn small_geo_view_is_a_dot_map() {
        let prefs = UserPreferences {
            max_points: 1000,
            ..Default::default()
        };
        let p = LdvmPipeline::new(geo_source(200)).with_prefs(prefs);
        let v = p.run(geo::LAT);
        let (rects, circles, _, _) = v.scene.mark_breakdown();
        assert_eq!(circles, 200);
        assert_eq!(rects, 0);
    }

    #[test]
    fn large_geo_view_degrades_to_density_heatmap() {
        let prefs = UserPreferences {
            max_points: 1000,
            ..Default::default()
        };
        let p = LdvmPipeline::new(geo_source(3000)).with_prefs(prefs);
        let v = p.run(geo::LAT);
        let (rects, circles, _, _) = v.scene.mark_breakdown();
        assert_eq!(circles, 0, "no per-point marks above the budget");
        assert!(rects > 0 && rects <= 64 * 48, "bounded by the grid");
        assert!(v.scene.in_bounds(1.0));
    }
}
#[cfg(test)]
mod analyzer_tests {
    use super::*;
    use wodex_rdf::{Graph, Term, Triple};

    /// A log-scale histogram analyzer — the classic custom operation for
    /// heavy-tailed properties.
    struct LogHistogram;

    impl Analyzer for LogHistogram {
        fn name(&self) -> &str {
            "log-histogram"
        }

        fn applies(&self, profile: &FieldProfile) -> bool {
            profile.kind == DataKind::Numeric
                && profile
                    .numeric
                    .as_ref()
                    .is_some_and(|s| s.min > 0.0 && s.max / s.min.max(1e-12) > 1e3)
        }

        fn analyze(&self, source: &Graph, predicate: &str, prefs: &UserPreferences) -> Abstraction {
            let values: Vec<f64> = source
                .triples_for_predicate(predicate)
                .filter_map(|t| t.object.as_literal())
                .map(Value::from_literal)
                .filter_map(|v| v.as_f64())
                .filter(|v| *v > 0.0)
                .map(f64::log10)
                .collect();
            let histogram = wodex_approx::binning::Histogram::build(
                &values,
                prefs.bins,
                wodex_approx::binning::BinningStrategy::EqualWidth,
            );
            Abstraction::Distribution {
                profile: crate::profile::FieldProfile::detect(
                    format!("log10({predicate})"),
                    &values.iter().map(|&v| Value::Double(v)).collect::<Vec<_>>(),
                ),
                histogram,
            }
        }
    }

    fn heavy_tailed_source() -> Graph {
        let mut g = Graph::new();
        for i in 0..500usize {
            g.insert(Triple::iri(
                &format!("http://e.org/e{i}"),
                "http://e.org/pop",
                Term::double(10f64.powf(1.0 + (i % 500) as f64 / 100.0)),
            ));
        }
        g
    }

    #[test]
    fn custom_analyzer_overrides_builtin_stage_two() {
        let p = LdvmPipeline::new(heavy_tailed_source()).with_analyzer(Box::new(LogHistogram));
        let a = p.analyze_property("http://e.org/pop");
        match &a {
            Abstraction::Distribution { profile, histogram } => {
                assert!(profile.name.starts_with("log10("));
                // Log-domain edges: min ≈ 1, max ≈ 5.99.
                assert!(histogram.bins[0].lo >= 0.9 && histogram.bins[0].lo <= 1.1);
                let hi = histogram.bins.last().unwrap().hi;
                assert!((5.5..=6.1).contains(&hi), "top edge {hi}");
            }
            other => panic!("expected distribution, got {other:?}"),
        }
        // The view still renders through stages 3–4.
        let v = p.view(&a, None);
        assert_eq!(v.kind, VisKind::HistogramChart);
    }

    #[test]
    fn analyzer_that_does_not_apply_is_skipped() {
        // Uniform small-range data: the guard rejects, builtin path runs.
        let mut g = Graph::new();
        for i in 0..100usize {
            g.insert(Triple::iri(
                &format!("http://e.org/e{i}"),
                "http://e.org/v",
                Term::double(50.0 + (i % 10) as f64),
            ));
        }
        let p = LdvmPipeline::new(g).with_analyzer(Box::new(LogHistogram));
        let a = p.analyze_property("http://e.org/v");
        match &a {
            Abstraction::Distribution { profile, .. } => {
                assert!(!profile.name.starts_with("log10("), "builtin must run");
            }
            other => panic!("expected distribution, got {other:?}"),
        }
        assert_eq!(LogHistogram.name(), "log-histogram");
    }
}
