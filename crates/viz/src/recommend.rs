//! Visualization recommendation.
//!
//! The survey's §4 highlights recommendation as the trend among recent
//! generic systems: "*an increasing number of recent systems (e.g.,
//! LinkDaViz, Vis Wizard, LDVizWiz, LDVM) focus on providing
//! recommendation mechanisms \[which\] mainly recommend the most suitable
//! visualization technique by considering the type of input data.*"
//!
//! [`recommend`] implements that mapping as a transparent rule table:
//! every candidate chart type is scored against the profiled fields, and
//! each score carries its *reason* — the explanation facility the survey
//! asks of user-assisting systems.

use crate::profile::{DataKind, FieldProfile};

/// The chart-type vocabulary (the union of Table 1's "Vis. Types").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VisKind {
    /// Bar chart.
    Bar,
    /// Histogram of a numeric column.
    HistogramChart,
    /// Line chart / timeline.
    Line,
    /// Scatter plot.
    Scatter,
    /// Pie chart.
    Pie,
    /// Treemap.
    Treemap,
    /// Geographic map.
    Map,
    /// Density heatmap.
    Heatmap,
    /// Node-link graph diagram.
    NodeLink,
    /// Plain table (always applicable fallback).
    Table,
}

impl VisKind {
    /// All kinds, for sweeps.
    pub fn all() -> [VisKind; 10] {
        [
            VisKind::Bar,
            VisKind::HistogramChart,
            VisKind::Line,
            VisKind::Scatter,
            VisKind::Pie,
            VisKind::Treemap,
            VisKind::Map,
            VisKind::Heatmap,
            VisKind::NodeLink,
            VisKind::Table,
        ]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            VisKind::Bar => "bar chart",
            VisKind::HistogramChart => "histogram",
            VisKind::Line => "line chart / timeline",
            VisKind::Scatter => "scatter plot",
            VisKind::Pie => "pie chart",
            VisKind::Treemap => "treemap",
            VisKind::Map => "map",
            VisKind::Heatmap => "heatmap",
            VisKind::NodeLink => "node-link graph",
            VisKind::Table => "table",
        }
    }
}

/// A scored recommendation with its explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended chart type.
    pub kind: VisKind,
    /// Fitness score in \[0, 1\].
    pub score: f64,
    /// Why this chart fits (or what was penalized).
    pub reason: String,
}

/// Scores every chart type against the given field profiles and returns
/// recommendations sorted best-first. Only kinds scoring above zero are
/// returned; `Table` is always present as the floor.
pub fn recommend(fields: &[FieldProfile]) -> Vec<Recommendation> {
    let has = |k: DataKind| fields.iter().any(|f| f.kind == k);
    let count_of = |k: DataKind| fields.iter().filter(|f| f.kind == k).count();
    let first = |k: DataKind| fields.iter().find(|f| f.kind == k);
    let n_records = fields.iter().map(|f| f.count).max().unwrap_or(0);

    let mut out: Vec<Recommendation> = Vec::new();
    let mut push = |kind: VisKind, score: f64, reason: String| {
        if score > 0.0 {
            out.push(Recommendation {
                kind,
                score: score.min(1.0),
                reason,
            });
        }
    };

    let numeric = count_of(DataKind::Numeric);
    let categorical = first(DataKind::Categorical);
    let temporal = has(DataKind::Temporal);
    let spatial = count_of(DataKind::Spatial);

    // Histogram: any numeric field; the bigger the data the better the
    // fit (aggregation-first).
    if numeric >= 1 {
        let bonus = if n_records > 10_000 { 0.05 } else { 0.0 };
        push(
            VisKind::HistogramChart,
            0.85 + bonus,
            "numeric field: distribution via binning scales to any size".into(),
        );
    }
    // Bar / pie / treemap: categorical (+ optional numeric measure).
    if let Some(cat) = categorical {
        let measure = if numeric >= 1 {
            " with numeric measure"
        } else {
            " with counts"
        };
        push(
            VisKind::Bar,
            if numeric >= 1 { 0.9 } else { 0.8 },
            format!("categorical field ({} values){measure}", cat.distinct),
        );
        if cat.distinct <= 6 {
            push(
                VisKind::Pie,
                0.65,
                format!(
                    "categorical with only {} values: part-of-whole",
                    cat.distinct
                ),
            );
        } else {
            push(
                VisKind::Pie,
                0.2,
                format!("{} categories is too many slices for a pie", cat.distinct),
            );
        }
        push(
            VisKind::Treemap,
            if cat.distinct > 12 { 0.7 } else { 0.5 },
            "categorical weights as nested area".into(),
        );
    }
    if has(DataKind::Hierarchical) {
        push(
            VisKind::Treemap,
            0.9,
            "hierarchical data: containment layout".into(),
        );
    }
    // Line: temporal + numeric (or temporal alone as event counts).
    if temporal {
        push(
            VisKind::Line,
            if numeric >= 1 { 0.95 } else { 0.8 },
            "temporal field: trend over time".into(),
        );
    }
    // Scatter / heatmap: two numerics.
    if numeric >= 2 {
        let (scatter_score, scatter_reason) = if n_records > 50_000 {
            (
                0.55,
                "two numeric fields, but at this size overplotting favors a heatmap".to_string(),
            )
        } else {
            (0.9, "two numeric fields: correlation view".to_string())
        };
        push(VisKind::Scatter, scatter_score, scatter_reason);
        push(
            VisKind::Heatmap,
            if n_records > 50_000 { 0.9 } else { 0.5 },
            "two numeric fields binned to a density grid".into(),
        );
    }
    // Map: a lat/long pair.
    if spatial >= 2 {
        push(
            VisKind::Map,
            0.95,
            "latitude/longitude pair: geographic view".into(),
        );
    } else if spatial == 1 {
        push(
            VisKind::Map,
            0.4,
            "one coordinate present; the pair is needed for a full map".into(),
        );
    }
    // Node-link: graph-shaped field.
    if has(DataKind::Graph) {
        push(
            VisKind::NodeLink,
            0.9,
            "object property links resources: network view".into(),
        );
    }
    // Table: always possible.
    push(
        VisKind::Table,
        0.3,
        "a table is always applicable (fallback)".into(),
    );

    // Deduplicate by kind keeping the max score.
    out.sort_by(|a, b| {
        a.kind
            .cmp(&b.kind)
            .then(b.score.partial_cmp(&a.score).expect("finite scores"))
    });
    out.dedup_by_key(|r| r.kind);
    out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::Value;

    fn field(name: &str, kind: DataKind, count: usize, distinct: usize) -> FieldProfile {
        FieldProfile {
            name: name.into(),
            kind,
            count,
            distinct,
            numeric: None,
        }
    }

    #[test]
    fn numeric_alone_recommends_histogram_first() {
        let f = [field("v", DataKind::Numeric, 1000, 900)];
        let r = recommend(&f);
        assert_eq!(r[0].kind, VisKind::HistogramChart);
        assert!(r.iter().any(|x| x.kind == VisKind::Table));
    }

    #[test]
    fn temporal_plus_numeric_recommends_line() {
        let f = [
            field("t", DataKind::Temporal, 500, 400),
            field("v", DataKind::Numeric, 500, 400),
        ];
        let r = recommend(&f);
        assert_eq!(r[0].kind, VisKind::Line);
        assert!(r[0].score > 0.9);
    }

    #[test]
    fn categorical_small_allows_pie_large_does_not() {
        let small = [field("c", DataKind::Categorical, 100, 4)];
        let r = recommend(&small);
        let pie = r.iter().find(|x| x.kind == VisKind::Pie).unwrap();
        assert!(pie.score > 0.5);
        let large = [field("c", DataKind::Categorical, 100, 30)];
        let r = recommend(&large);
        let pie = r.iter().find(|x| x.kind == VisKind::Pie).unwrap();
        assert!(pie.score < 0.3);
        assert!(pie.reason.contains("too many"));
    }

    #[test]
    fn two_numerics_small_scatter_large_heatmap() {
        let small = [
            field("x", DataKind::Numeric, 1000, 1000),
            field("y", DataKind::Numeric, 1000, 1000),
        ];
        let r = recommend(&small);
        let scatter = r.iter().find(|x| x.kind == VisKind::Scatter).unwrap();
        let heat = r.iter().find(|x| x.kind == VisKind::Heatmap).unwrap();
        assert!(scatter.score > heat.score);
        let big = [
            field("x", DataKind::Numeric, 1_000_000, 1000),
            field("y", DataKind::Numeric, 1_000_000, 1000),
        ];
        let r = recommend(&big);
        let scatter = r.iter().find(|x| x.kind == VisKind::Scatter).unwrap();
        let heat = r.iter().find(|x| x.kind == VisKind::Heatmap).unwrap();
        assert!(
            heat.score > scatter.score,
            "at 10^6 records the density view must win"
        );
    }

    #[test]
    fn spatial_pair_recommends_map() {
        let f = [
            field("lat", DataKind::Spatial, 100, 90),
            field("long", DataKind::Spatial, 100, 95),
        ];
        let r = recommend(&f);
        assert_eq!(r[0].kind, VisKind::Map);
    }

    #[test]
    fn graph_field_recommends_node_link() {
        let f = [field("links", DataKind::Graph, 500, 300)];
        let r = recommend(&f);
        assert_eq!(r[0].kind, VisKind::NodeLink);
    }

    #[test]
    fn every_recommendation_has_a_reason_and_valid_score() {
        let f = [
            field("c", DataKind::Categorical, 100, 5),
            field("v", DataKind::Numeric, 100, 80),
            field("t", DataKind::Temporal, 100, 100),
        ];
        for r in recommend(&f) {
            assert!(!r.reason.is_empty());
            assert!((0.0..=1.0).contains(&r.score));
        }
    }

    #[test]
    fn recommendations_are_sorted_and_unique() {
        let f = [
            field("c", DataKind::Categorical, 100, 5),
            field("v", DataKind::Numeric, 100, 80),
        ];
        let r = recommend(&f);
        assert!(r.windows(2).all(|w| w[0].score >= w[1].score));
        let kinds: std::collections::HashSet<_> = r.iter().map(|x| x.kind).collect();
        assert_eq!(kinds.len(), r.len());
    }

    #[test]
    fn end_to_end_with_detected_profiles() {
        let values: Vec<Value> = (0..200).map(|i| Value::Double(i as f64)).collect();
        let p = FieldProfile::detect("v", &values);
        let r = recommend(&[p]);
        assert_eq!(r[0].kind, VisKind::HistogramChart);
    }
}
