//! # wodex-viz — the visualization abstraction layer
//!
//! This crate is the "front half" of every system in the survey's Table 1:
//! given data (usually a SPARQL result or a profiled RDF property), decide
//! *what* to draw and *draw* it — scalably, through the abstractions of
//! `wodex-approx` rather than one mark per record.
//!
//! * [`profile`] — data-characteristic detection: the **N**umeric /
//!   **T**emporal / **S**patial / **H**ierarchical / **G**raph data-type
//!   taxonomy of Table 1, derived automatically from values.
//! * [`scene`] — a renderer-independent scene graph of marks.
//! * [`charts`] — chart constructors (bar, histogram, line/timeline,
//!   scatter, pie, treemap, geo scatter, node-link) that build scenes
//!   whose mark count is bounded by bins/pixels, not records.
//! * [`render`] — SVG and ASCII back ends.
//! * [`recommend`] — **visualization recommendation**
//!   (LinkDaViz \[129\], Vis Wizard \[131\], LDVizWiz \[11\]): rank chart types
//!   by fitness for the profiled fields, with explanations.
//! * [`prefs`] — user preferences (Table 1's "Preferences" column):
//!   boosts/penalties folded into recommendation scores and a point
//!   budget folded into chart construction.
//! * [`dashboard`] — VizBoard-style \[135\] composite dashboards and the
//!   brushing-and-linking selection of Vis Wizard \[131\].
//! * [`ontology`] — the §3.5 ontology chart family: layered class trees,
//!   CropCircles containment \[137\], sunbursts and nested treemaps over the
//!   extracted `rdfs:subClassOf` hierarchy.
//! * [`ldvm`] — the **Linked Data Visualization Model** \[29\] pipeline:
//!   Source Data → Analytical Abstraction → Visualization Abstraction →
//!   View, as a concrete, composable type.

pub mod charts;
pub mod dashboard;
pub mod ldvm;
pub mod ontology;
pub mod prefs;
pub mod profile;
pub mod recommend;
pub mod render;
pub mod scene;

pub use ldvm::LdvmPipeline;
pub use prefs::UserPreferences;
pub use profile::{DataKind, FieldProfile};
pub use recommend::{recommend, Recommendation, VisKind};
pub use scene::{Color, Mark, Scene};
