//! Chart constructors.
//!
//! Every constructor here obeys the survey's scalability rule: the number
//! of marks is bounded by *display* quantities (bins, grid cells, a point
//! budget) rather than by record counts — this is how "a billion records"
//! fit "a million pixels" \[119\]. Aggregation-first constructors take the
//! outputs of `wodex-approx` (histograms, grid cells) directly.

use crate::scene::{Color, Mark, Scene};
use wodex_approx::binning::{GridCell, Histogram};
use wodex_graph::layout::Layout;

const MARGIN: f64 = 40.0;

/// Linear scale from `[d0, d1]` to `[r0, r1]` (degenerate domains map to
/// the range midpoint).
fn scale(d0: f64, d1: f64, r0: f64, r1: f64) -> impl Fn(f64) -> f64 {
    move |v| {
        if (d1 - d0).abs() < f64::EPSILON {
            (r0 + r1) / 2.0
        } else {
            r0 + (v - d0) / (d1 - d0) * (r1 - r0)
        }
    }
}

fn frame(scene: &mut Scene) {
    let (w, h) = (scene.width, scene.height);
    scene.marks.push(Mark::Line {
        points: vec![
            (MARGIN, MARGIN),
            (MARGIN, h - MARGIN),
            (w - MARGIN, h - MARGIN),
        ],
        color: Color::GRAY,
        width: 1.0,
    });
    let title = scene.title.clone();
    scene.marks.push(Mark::Text {
        x: MARGIN,
        y: MARGIN / 2.0,
        text: title,
        size: 14.0,
        color: Color::BLACK,
    });
}

/// A bar chart over `(category, value)` pairs.
pub fn bar_chart(title: &str, data: &[(String, f64)], width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, title);
    frame(&mut s);
    if data.is_empty() {
        return s;
    }
    let max = data
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let plot_w = width - 2.0 * MARGIN;
    let plot_h = height - 2.0 * MARGIN;
    let bw = plot_w / data.len() as f64;
    for (i, (label, v)) in data.iter().enumerate() {
        let h = (v / max).max(0.0) * plot_h;
        s.marks.push(Mark::Rect {
            x: MARGIN + i as f64 * bw + bw * 0.1,
            y: height - MARGIN - h,
            w: bw * 0.8,
            h,
            color: Color::palette(i),
            label: Some(format!("{label}: {v}")),
        });
        if data.len() <= 20 {
            s.marks.push(Mark::Text {
                x: MARGIN + i as f64 * bw + bw * 0.1,
                y: height - MARGIN / 4.0,
                text: truncate(label, 12),
                size: 9.0,
                color: Color::BLACK,
            });
        }
    }
    s
}

/// A histogram chart from a binned column: one bar per bin, so the scene
/// size is `O(bins)` regardless of input size.
pub fn histogram(title: &str, hist: &Histogram, width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, title);
    frame(&mut s);
    if hist.bins.is_empty() {
        return s;
    }
    let max = hist.bins.iter().map(|b| b.count).max().unwrap_or(1).max(1) as f64;
    let lo = hist.bins[0].lo;
    let hi = hist.bins.last().expect("non-empty").hi;
    let sx = scale(lo, hi, MARGIN, width - MARGIN);
    let plot_h = height - 2.0 * MARGIN;
    for b in &hist.bins {
        let x0 = sx(b.lo);
        let x1 = sx(b.hi);
        let h = b.count as f64 / max * plot_h;
        s.marks.push(Mark::Rect {
            x: x0,
            y: height - MARGIN - h,
            w: (x1 - x0).max(0.5),
            h,
            color: Color::palette(0),
            label: Some(format!("[{:.2},{:.2}): {}", b.lo, b.hi, b.count)),
        });
    }
    // Min/max axis labels.
    s.marks.push(Mark::Text {
        x: MARGIN,
        y: height - MARGIN / 4.0,
        text: format!("{lo:.2}"),
        size: 9.0,
        color: Color::BLACK,
    });
    s.marks.push(Mark::Text {
        x: width - MARGIN - 30.0,
        y: height - MARGIN / 4.0,
        text: format!("{hi:.2}"),
        size: 9.0,
        color: Color::BLACK,
    });
    s
}

/// A line chart over `(x, y)` points (sorted by x internally). With more
/// points than horizontal pixels the series is M4-downsampled (per-pixel
/// min/max envelope \[73\]) so the polyline stays pixel-exact but bounded.
pub fn line_chart(title: &str, points: &[(f64, f64)], width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, title);
    frame(&mut s);
    if points.is_empty() {
        return s;
    }
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let budget = (width - 2.0 * MARGIN).max(2.0) as usize;
    let pts = if pts.len() > budget * 4 {
        m4_downsample(&pts, budget)
    } else {
        pts
    };
    let (x0, x1) = (pts[0].0, pts[pts.len() - 1].0);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, y) in &pts {
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let sx = scale(x0, x1, MARGIN, width - MARGIN);
    let sy = scale(y0, y1, height - MARGIN, MARGIN);
    s.marks.push(Mark::Line {
        points: pts.iter().map(|&(x, y)| (sx(x), sy(y))).collect(),
        color: Color::palette(0),
        width: 1.5,
    });
    s
}

/// M4 aggregation: per pixel column keep (first, min, max, last).
pub fn m4_downsample(sorted: &[(f64, f64)], columns: usize) -> Vec<(f64, f64)> {
    if sorted.is_empty() || columns == 0 {
        return Vec::new();
    }
    let x0 = sorted[0].0;
    let x1 = sorted[sorted.len() - 1].0;
    let span = (x1 - x0).max(f64::MIN_POSITIVE);
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(columns * 4);
    let mut col = 0usize;
    let mut bucket: Vec<(f64, f64)> = Vec::new();
    let flush = |bucket: &mut Vec<(f64, f64)>, out: &mut Vec<(f64, f64)>| {
        if bucket.is_empty() {
            return;
        }
        let first = bucket[0];
        let last = bucket[bucket.len() - 1];
        let min = *bucket
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        let max = *bucket
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        let mut reps = vec![first, min, max, last];
        reps.sort_by(|a, b| a.0.total_cmp(&b.0));
        reps.dedup();
        out.extend(reps);
        bucket.clear();
    };
    for &(x, y) in sorted {
        let c = (((x - x0) / span) * columns as f64) as usize;
        let c = c.min(columns - 1);
        if c != col {
            flush(&mut bucket, &mut out);
            col = c;
        }
        bucket.push((x, y));
    }
    flush(&mut bucket, &mut out);
    out
}

/// A scatter plot with a hard point budget: above it, points are thinned
/// by visualization-aware index selection on the y extent.
pub fn scatter(
    title: &str,
    points: &[(f64, f64)],
    width: f64,
    height: f64,
    max_points: usize,
) -> Scene {
    let mut s = Scene::new(width, height, title);
    frame(&mut s);
    if points.is_empty() {
        return s;
    }
    let selected: Vec<(f64, f64)> = if points.len() > max_points {
        let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        wodex_approx::sampling::visualization_aware(&ys, max_points)
            .into_iter()
            .map(|i| points[i])
            .collect()
    } else {
        points.to_vec()
    };
    let (mut x0, mut x1, mut y0, mut y1) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in &selected {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let sx = scale(x0, x1, MARGIN, width - MARGIN);
    let sy = scale(y0, y1, height - MARGIN, MARGIN);
    for &(x, y) in &selected {
        s.marks.push(Mark::Circle {
            cx: sx(x),
            cy: sy(y),
            r: 2.0,
            color: Color::palette(0),
            label: None,
        });
    }
    s
}

/// A pie chart (sector outlines sampled as polylines; filled pies are a
/// renderer concern).
pub fn pie(title: &str, data: &[(String, f64)], width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, title);
    s.marks.push(Mark::Text {
        x: MARGIN,
        y: MARGIN / 2.0,
        text: title.to_string(),
        size: 14.0,
        color: Color::BLACK,
    });
    let total: f64 = data.iter().map(|&(_, v)| v.max(0.0)).sum();
    if total <= 0.0 {
        return s;
    }
    let cx = width / 2.0;
    let cy = height / 2.0;
    let r = (width.min(height) / 2.0 - MARGIN).max(4.0);
    let mut angle = -std::f64::consts::FRAC_PI_2;
    for (i, (label, v)) in data.iter().enumerate() {
        let frac = v.max(0.0) / total;
        let sweep = frac * std::f64::consts::TAU;
        // Sector outline: center → arc → center.
        let steps = (sweep / 0.1).ceil().max(2.0) as usize;
        let mut pts = vec![(cx, cy)];
        for k in 0..=steps {
            let a = angle + sweep * k as f64 / steps as f64;
            pts.push((cx + r * a.cos(), cy + r * a.sin()));
        }
        pts.push((cx, cy));
        s.marks.push(Mark::Line {
            points: pts,
            color: Color::palette(i),
            width: 2.0,
        });
        // Label at the sector midpoint (kept inside the viewport).
        let mid = angle + sweep / 2.0;
        s.marks.push(Mark::Text {
            x: (cx + (r * 0.6) * mid.cos()).clamp(0.0, width - 1.0),
            y: (cy + (r * 0.6) * mid.sin()).clamp(10.0, height - 1.0),
            text: format!("{} {:.0}%", truncate(label, 10), frac * 100.0),
            size: 9.0,
            color: Color::BLACK,
        });
        angle += sweep;
    }
    s
}

/// A slice-and-dice treemap over `(label, weight)` items.
pub fn treemap(title: &str, data: &[(String, f64)], width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, title);
    s.marks.push(Mark::Text {
        x: 4.0,
        y: 12.0,
        text: title.to_string(),
        size: 12.0,
        color: Color::BLACK,
    });
    let total: f64 = data.iter().map(|&(_, v)| v.max(0.0)).sum();
    if total <= 0.0 {
        return s;
    }
    let top = 18.0;
    slice_dice(
        &mut s,
        data,
        total,
        (0.0, top, width, height - top),
        true,
        0,
    );
    s
}

fn slice_dice(
    scene: &mut Scene,
    data: &[(String, f64)],
    total: f64,
    rect: (f64, f64, f64, f64),
    horizontal: bool,
    color_offset: usize,
) {
    let (x, y, w, h) = rect;
    let mut pos = 0.0;
    for (i, (label, v)) in data.iter().enumerate() {
        let frac = v.max(0.0) / total;
        let (rx, ry, rw, rh) = if horizontal {
            (x + pos * w, y, frac * w, h)
        } else {
            (x, y + pos * h, w, frac * h)
        };
        scene.marks.push(Mark::Rect {
            x: rx,
            y: ry,
            w: rw,
            h: rh,
            color: Color::palette(color_offset + i),
            label: Some(format!("{label}: {v}")),
        });
        if rw > 40.0 && rh > 12.0 {
            scene.marks.push(Mark::Text {
                x: rx + 2.0,
                y: ry + 11.0,
                text: truncate(label, (rw / 7.0) as usize),
                size: 9.0,
                color: Color::BLACK,
            });
        }
        pos += frac;
    }
}

/// A geographic scatter: WGS84 points via equirectangular projection onto
/// the viewport (the Map visualization type of Table 1).
pub fn geo_scatter(title: &str, points: &[(f64, f64)], width: f64, height: f64) -> Scene {
    // points are (lat, lon).
    let mut s = Scene::new(width, height, title);
    frame(&mut s);
    if points.is_empty() {
        return s;
    }
    let (mut lat0, mut lat1, mut lon0, mut lon1) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(lat, lon) in points {
        lat0 = lat0.min(lat);
        lat1 = lat1.max(lat);
        lon0 = lon0.min(lon);
        lon1 = lon1.max(lon);
    }
    let sx = scale(lon0, lon1, MARGIN, width - MARGIN);
    let sy = scale(lat0, lat1, height - MARGIN, MARGIN); // north up
    for &(lat, lon) in points {
        s.marks.push(Mark::Circle {
            cx: sx(lon),
            cy: sy(lat),
            r: 2.0,
            color: Color::palette(2),
            label: None,
        });
    }
    s
}

/// A density heatmap from 2-D grid cells (the imMens-style aggregate
/// view): one rect per *non-empty cell*.
pub fn heatmap(
    title: &str,
    cells: &[GridCell],
    cols: usize,
    rows: usize,
    width: f64,
    height: f64,
) -> Scene {
    let mut s = Scene::new(width, height, title);
    frame(&mut s);
    if cells.is_empty() {
        return s;
    }
    let max = cells.iter().map(|c| c.count).max().unwrap_or(1) as f64;
    let cw = (width - 2.0 * MARGIN) / cols as f64;
    let ch = (height - 2.0 * MARGIN) / rows as f64;
    for c in cells {
        s.marks.push(Mark::Rect {
            x: MARGIN + c.col as f64 * cw,
            y: MARGIN + c.row as f64 * ch,
            w: cw,
            h: ch,
            color: Color::sequential(c.count as f64 / max),
            label: Some(format!("{}", c.count)),
        });
    }
    s
}

/// A node-link diagram from a layout and an edge list. Node ids index the
/// layout; node `sizes` (optional) scale radii — supernode weights in
/// abstraction views.
pub fn node_link(
    title: &str,
    layout: &Layout,
    edges: &[(u32, u32)],
    sizes: Option<&[f64]>,
    width: f64,
    height: f64,
) -> Scene {
    let mut s = Scene::new(width, height, title);
    s.marks.push(Mark::Text {
        x: 4.0,
        y: 12.0,
        text: title.to_string(),
        size: 12.0,
        color: Color::BLACK,
    });
    if layout.is_empty() {
        return s;
    }
    let mut lay = layout.clone();
    lay.normalize(
        (width - 2.0 * MARGIN) as f32,
        (height - 2.0 * MARGIN) as f32,
    );
    let pos = |v: u32| {
        let p = lay.positions[v as usize];
        (p.x as f64 + MARGIN, p.y as f64 + MARGIN)
    };
    for &(a, b) in edges {
        s.marks.push(Mark::Line {
            points: vec![pos(a), pos(b)],
            color: Color::GRAY,
            width: 0.5,
        });
    }
    let max_size = sizes
        .map(|ss| ss.iter().cloned().fold(1.0f64, f64::max))
        .unwrap_or(1.0);
    for v in 0..lay.positions.len() as u32 {
        let r = sizes
            .map(|ss| 3.0 + 9.0 * (ss[v as usize] / max_size).sqrt())
            .unwrap_or(3.0);
        let (cx, cy) = pos(v);
        s.marks.push(Mark::Circle {
            cx,
            cy,
            r,
            color: Color::palette(v as usize % 10),
            label: None,
        });
    }
    s
}

/// Parallel coordinates over multi-dimensional records (Vis Wizard's PC
/// type in Table 1): one vertical axis per dimension, one polyline per
/// record, each axis independently scaled to its own min/max. Records
/// beyond `max_lines` are thinned by visualization-aware selection on the
/// first dimension.
pub fn parallel_coords(
    title: &str,
    axes: &[String],
    records: &[Vec<f64>],
    width: f64,
    height: f64,
    max_lines: usize,
) -> Scene {
    let mut s = Scene::new(width, height, title);
    frame(&mut s);
    let d = axes.len();
    if d < 2 || records.is_empty() {
        return s;
    }
    debug_assert!(records.iter().all(|r| r.len() == d), "ragged records");
    // Per-axis extents.
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for r in records {
        for (j, &v) in r.iter().enumerate() {
            if v.is_finite() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
    }
    let ax = |j: usize| MARGIN + j as f64 / (d - 1) as f64 * (width - 2.0 * MARGIN);
    // Axes + labels.
    for (j, name) in axes.iter().enumerate() {
        s.marks.push(Mark::Line {
            points: vec![(ax(j), MARGIN), (ax(j), height - MARGIN)],
            color: Color::GRAY,
            width: 1.0,
        });
        s.marks.push(Mark::Text {
            x: (ax(j) - 20.0).max(0.0),
            y: height - MARGIN / 4.0,
            text: truncate(name, 10),
            size: 8.0,
            color: Color::BLACK,
        });
    }
    // Record selection.
    let selected: Vec<&Vec<f64>> = if records.len() > max_lines {
        let firsts: Vec<f64> = records.iter().map(|r| r[0]).collect();
        wodex_approx::sampling::visualization_aware(&firsts, max_lines)
            .into_iter()
            .map(|i| &records[i])
            .collect()
    } else {
        records.iter().collect()
    };
    for (i, r) in selected.iter().enumerate() {
        let pts: Vec<(f64, f64)> = r
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let t = if hi[j] > lo[j] {
                    (v - lo[j]) / (hi[j] - lo[j])
                } else {
                    0.5
                };
                (ax(j), height - MARGIN - t * (height - 2.0 * MARGIN))
            })
            .collect();
        s.marks.push(Mark::Line {
            points: pts,
            color: Color::palette(i % 10),
            width: 0.7,
        });
    }
    s
}

/// An adjacency-matrix view of a (sub)graph — the matrix half of the
/// NodeTrix \[61\] / OntoTrix \[14\] hybrids of §3.5. Dense communities that
/// turn node-link views into hairballs read as clean blocks here. `order`
/// permutes rows/columns (e.g. by community) to make the blocks visible;
/// `labels` (optional) annotate rows when the matrix is small enough.
pub fn adjacency_matrix(
    title: &str,
    n: usize,
    edges: &[(u32, u32)],
    order: Option<&[u32]>,
    labels: Option<&[String]>,
    width: f64,
    height: f64,
) -> Scene {
    let mut s = Scene::new(width, height, title);
    s.marks.push(Mark::Text {
        x: 4.0,
        y: 12.0,
        text: title.to_string(),
        size: 12.0,
        color: Color::BLACK,
    });
    if n == 0 {
        return s;
    }
    // Position of each node in the permuted order.
    let mut pos = vec![0usize; n];
    match order {
        Some(o) => {
            for (i, &v) in o.iter().enumerate() {
                pos[v as usize] = i;
            }
        }
        None => {
            for (i, p) in pos.iter_mut().enumerate() {
                *p = i;
            }
        }
    }
    let label_gutter = if labels.is_some() { 70.0 } else { 4.0 };
    let top = 18.0;
    let cell = ((width - label_gutter - 4.0) / n as f64)
        .min((height - top - 4.0) / n as f64)
        .max(0.5);
    // Grid frame.
    s.marks.push(Mark::Line {
        points: vec![
            (label_gutter, top),
            (label_gutter + cell * n as f64, top),
            (label_gutter + cell * n as f64, top + cell * n as f64),
            (label_gutter, top + cell * n as f64),
            (label_gutter, top),
        ],
        color: Color::GRAY,
        width: 0.5,
    });
    // Cells: symmetric fill per undirected edge.
    for &(a, b) in edges {
        if (a as usize) >= n || (b as usize) >= n {
            continue;
        }
        for (r, c) in [
            (pos[a as usize], pos[b as usize]),
            (pos[b as usize], pos[a as usize]),
        ] {
            s.marks.push(Mark::Rect {
                x: label_gutter + c as f64 * cell,
                y: top + r as f64 * cell,
                w: cell,
                h: cell,
                color: Color::palette(0),
                label: None,
            });
        }
    }
    if let Some(labels) = labels {
        if n <= 40 {
            for (v, l) in labels.iter().enumerate().take(n) {
                s.marks.push(Mark::Text {
                    x: 2.0,
                    y: top + (pos[v] as f64 + 0.8) * cell,
                    text: truncate(l, 10),
                    size: (cell * 0.8).min(9.0),
                    color: Color::BLACK,
                });
            }
        }
    }
    s
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n.saturating_sub(1)).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_approx::binning::BinningStrategy;

    #[test]
    fn bar_chart_marks_and_bounds() {
        let data = vec![("a".to_string(), 3.0), ("b".to_string(), 7.0)];
        let s = bar_chart("bars", &data, 400.0, 300.0);
        let (rects, _, _, _) = s.mark_breakdown();
        assert_eq!(rects, 2);
        assert!(s.in_bounds(1.0));
        // Taller value → taller bar.
        let heights: Vec<f64> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Rect { h, .. } => Some(*h),
                _ => None,
            })
            .collect();
        assert!(heights[1] > heights[0]);
    }

    #[test]
    fn histogram_scene_is_bounded_by_bins() {
        let values: Vec<f64> = (0..100_000).map(|i| (i % 997) as f64).collect();
        let h = Histogram::build(&values, 32, BinningStrategy::EqualWidth);
        let s = histogram("h", &h, 640.0, 480.0);
        let (rects, _, _, _) = s.mark_breakdown();
        assert_eq!(rects, 32);
        assert!(s.in_bounds(1.0));
    }

    #[test]
    fn line_chart_downsamples_beyond_pixel_budget() {
        let pts: Vec<(f64, f64)> = (0..200_000).map(|i| (i as f64, (i as f64).sin())).collect();
        let s = line_chart("line", &pts, 600.0, 300.0);
        let line_len = s
            .marks
            .iter()
            .find_map(|m| match m {
                Mark::Line { points, .. } if points.len() > 3 => Some(points.len()),
                _ => None,
            })
            .unwrap();
        assert!(line_len <= 4 * 600, "line kept {line_len} points");
        assert!(s.in_bounds(1.0));
    }

    #[test]
    fn m4_keeps_extremes_per_column() {
        let pts: Vec<(f64, f64)> = (0..1000)
            .map(|i| (i as f64, if i == 500 { 100.0 } else { 0.0 }))
            .collect();
        let ds = m4_downsample(&pts, 10);
        assert!(ds.iter().any(|&(_, y)| y == 100.0), "spike must survive");
        assert!(ds.len() <= 40);
        // Sorted by x within tolerance.
        assert!(ds.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn scatter_respects_point_budget() {
        let pts: Vec<(f64, f64)> = (0..50_000)
            .map(|i| ((i % 100) as f64, (i / 100) as f64))
            .collect();
        let s = scatter("sc", &pts, 640.0, 480.0, 500);
        let (_, circles, _, _) = s.mark_breakdown();
        assert!(circles <= 500);
        assert!(s.in_bounds(1.0));
    }

    #[test]
    fn pie_fractions_cover_the_circle() {
        let data = vec![
            ("a".to_string(), 1.0),
            ("b".to_string(), 1.0),
            ("c".to_string(), 2.0),
        ];
        let s = pie("pie", &data, 300.0, 300.0);
        let (_, _, lines, texts) = s.mark_breakdown();
        assert_eq!(lines, 3);
        assert_eq!(texts, 4); // title + 3 labels
        assert!(s.in_bounds(1.0));
        // 50% label for c.
        assert!(s
            .marks
            .iter()
            .any(|m| matches!(m, Mark::Text { text, .. } if text.contains("50%"))));
    }

    #[test]
    fn treemap_areas_proportional_to_weights() {
        let data = vec![("big".to_string(), 30.0), ("small".to_string(), 10.0)];
        let s = treemap("tm", &data, 400.0, 300.0);
        let areas: Vec<f64> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Rect { w, h, .. } => Some(w * h),
                _ => None,
            })
            .collect();
        assert_eq!(areas.len(), 2);
        assert!((areas[0] / areas[1] - 3.0).abs() < 0.01);
        assert!(s.in_bounds(1.0));
    }

    #[test]
    fn geo_scatter_keeps_north_up() {
        let pts = vec![(35.0, 20.0), (40.0, 25.0)]; // (lat, lon)
        let s = geo_scatter("map", &pts, 400.0, 400.0);
        let circles: Vec<(f64, f64)> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Circle { cx, cy, .. } => Some((*cx, *cy)),
                _ => None,
            })
            .collect();
        // Higher latitude → smaller y (up).
        assert!(circles[1].1 < circles[0].1);
        assert!(circles[1].0 > circles[0].0);
    }

    #[test]
    fn heatmap_colors_scale_with_count() {
        let cells = vec![
            GridCell {
                col: 0,
                row: 0,
                count: 1,
            },
            GridCell {
                col: 1,
                row: 0,
                count: 100,
            },
        ];
        let s = heatmap("hm", &cells, 2, 1, 300.0, 200.0);
        let colors: Vec<Color> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Rect { color, .. } => Some(*color),
                _ => None,
            })
            .collect();
        assert_eq!(colors.len(), 2);
        assert!(colors[0].r > colors[1].r, "denser cell must be darker");
    }

    #[test]
    fn node_link_draws_all_nodes_and_edges() {
        let layout = wodex_graph::layout::circular(5, 10.0);
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let s = node_link("g", &layout, &edges, None, 400.0, 400.0);
        let (_, circles, lines, _) = s.mark_breakdown();
        assert_eq!(circles, 5);
        assert_eq!(lines, 3);
        assert!(s.in_bounds(1.0));
    }

    #[test]
    fn node_link_sizes_scale_radii() {
        let layout = wodex_graph::layout::circular(3, 10.0);
        let sizes = vec![1.0, 100.0, 1.0];
        let s = node_link("g", &layout, &[], Some(&sizes), 300.0, 300.0);
        let radii: Vec<f64> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Circle { r, .. } => Some(*r),
                _ => None,
            })
            .collect();
        assert!(radii[1] > radii[0]);
    }

    #[test]
    fn parallel_coords_one_line_per_record_plus_axes() {
        let axes = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let records = vec![vec![1.0, 10.0, 100.0], vec![2.0, 20.0, 200.0]];
        let s = parallel_coords("pc", &axes, &records, 500.0, 300.0, 100);
        let (_, _, lines, _) = s.mark_breakdown();
        // 1 frame + 3 axes + 2 records.
        assert_eq!(lines, 6);
        assert!(s.in_bounds(1.0));
    }

    #[test]
    fn parallel_coords_scales_each_axis_independently() {
        let axes = vec!["small".to_string(), "huge".to_string()];
        let records = vec![vec![0.0, 0.0], vec![1.0, 1_000_000.0]];
        let s = parallel_coords("pc", &axes, &records, 400.0, 300.0, 10);
        // Both record lines span the full vertical range on both axes.
        let record_lines: Vec<&Vec<(f64, f64)>> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                // Record lines span axes (different x); axis lines are
                // vertical (same x).
                Mark::Line { points, .. } if points.len() == 2 && points[0].0 != points[1].0 => {
                    Some(points)
                }
                _ => None,
            })
            .collect();
        // Record 0 maps to the bottom on both axes; record 1 to the top.
        assert!(record_lines
            .iter()
            .any(|pts| pts.iter().all(|&(_, y)| y > 200.0)));
        assert!(record_lines
            .iter()
            .any(|pts| pts.iter().all(|&(_, y)| y < 100.0)));
    }

    #[test]
    fn parallel_coords_respects_line_budget() {
        let axes = vec!["a".to_string(), "b".to_string()];
        let records: Vec<Vec<f64>> = (0..5000).map(|i| vec![i as f64, (i * 7) as f64]).collect();
        let s = parallel_coords("pc", &axes, &records, 400.0, 300.0, 50);
        let (_, _, lines, _) = s.mark_breakdown();
        assert!(lines <= 50 + 3); // budget + axes + frame
    }

    #[test]
    fn parallel_coords_degenerate_inputs() {
        let one_axis = parallel_coords("pc", &["a".to_string()], &[vec![1.0]], 200.0, 200.0, 10);
        let (_, _, lines, _) = one_axis.mark_breakdown();
        assert_eq!(lines, 1); // frame only
        let empty = parallel_coords(
            "pc",
            &["a".to_string(), "b".to_string()],
            &[],
            200.0,
            200.0,
            10,
        );
        assert!(empty.in_bounds(1.0));
    }

    #[test]
    fn adjacency_matrix_is_symmetric_and_in_bounds() {
        let edges = vec![(0u32, 1), (1, 2), (0, 3)];
        let s = adjacency_matrix("m", 4, &edges, None, None, 300.0, 300.0);
        let (rects, _, _, _) = s.mark_breakdown();
        assert_eq!(rects, 6, "each undirected edge fills two cells");
        assert!(s.in_bounds(1.0));
        // Symmetry: for every filled (r,c) cell there is a (c,r) cell.
        let cells: Vec<(i64, i64)> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Rect { x, y, .. } => Some(((*x * 10.0) as i64, (*y * 10.0) as i64)),
                _ => None,
            })
            .collect();
        // x and y offsets differ (gutter vs top), so compare index pairs
        // reconstructed from the geometry instead.
        assert_eq!(cells.len() % 2, 0);
    }

    #[test]
    fn adjacency_matrix_ordering_groups_communities() {
        // Two 3-cliques: community ordering puts all intra-edges in two
        // diagonal blocks (row index distance ≤ 2).
        let edges = vec![(0u32, 2), (2, 4), (0, 4), (1, 3), (3, 5), (1, 5)];
        let order = [0u32, 2, 4, 1, 3, 5]; // group the cliques
        let s = adjacency_matrix("m", 6, &edges, Some(&order), None, 320.0, 320.0);
        let cell = (320.0 - 8.0) / 6.0;
        let mut max_band = 0i64;
        for m in &s.marks {
            if let Mark::Rect { x, y, .. } = m {
                let c = ((x - 4.0) / cell).round() as i64;
                let r = ((y - 18.0) / cell).round() as i64;
                max_band = max_band.max((r - c).abs());
            }
        }
        assert!(
            max_band <= 2,
            "blocks must hug the diagonal, band={max_band}"
        );
    }

    #[test]
    fn adjacency_matrix_labels_render_when_small() {
        let labels = vec!["alpha".to_string(), "beta".to_string()];
        let s = adjacency_matrix("m", 2, &[(0, 1)], None, Some(&labels), 200.0, 200.0);
        let texts: Vec<&str> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Text { text, .. } => Some(text.as_str()),
                _ => None,
            })
            .collect();
        assert!(texts.contains(&"alpha"));
        assert!(texts.contains(&"beta"));
    }

    #[test]
    fn empty_inputs_yield_frame_only_scenes() {
        assert!(bar_chart("e", &[], 100.0, 100.0).in_bounds(1.0));
        assert!(scatter("e", &[], 100.0, 100.0, 10).in_bounds(1.0));
        assert!(pie("e", &[], 100.0, 100.0).mark_count() <= 2);
        let h = Histogram::build(&[], 4, BinningStrategy::EqualWidth);
        assert!(histogram("e", &h, 100.0, 100.0).in_bounds(1.0));
    }
}
