//! Data-characteristic detection.
//!
//! Table 1 classifies systems by supported data types — Numeric, Temporal,
//! Spatial, Hierarchical, Graph. Recommendation (LinkDaViz \[129\], Vis
//! Wizard \[131\]) starts by *detecting* which of those a given field is.
//! [`FieldProfile::detect`] does that from a column of [`Value`]s, and
//! [`profile_property`] from an RDF property in a graph.

use wodex_rdf::stats::NumericSummary;
use wodex_rdf::vocab::geo;
use wodex_rdf::{Graph, Term, Value};

/// The data-type taxonomy of the survey's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataKind {
    /// Quantitative values.
    Numeric,
    /// Dates / instants.
    Temporal,
    /// Geographic coordinates.
    Spatial,
    /// Tree-shaped data (class hierarchies, containment).
    Hierarchical,
    /// Network-shaped data (resource links).
    Graph,
    /// Discrete labels with manageable cardinality.
    Categorical,
    /// Free text / high-cardinality labels.
    Text,
}

/// The profile of one field (column / property).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldProfile {
    /// Field name (e.g. the property IRI or SPARQL variable).
    pub name: String,
    /// Detected kind.
    pub kind: DataKind,
    /// Total non-null values observed.
    pub count: usize,
    /// Distinct values observed.
    pub distinct: usize,
    /// Numeric summary when the field is numeric/temporal.
    pub numeric: Option<NumericSummary>,
}

impl FieldProfile {
    /// Detects a profile from a column of typed values.
    ///
    /// Detection rules (majority vote with an 80% threshold):
    /// temporal if ≥80% temporal; numeric if ≥80% numeric; otherwise
    /// categorical when distinct ≤ max(20, 5% of count), else text.
    pub fn detect(name: impl Into<String>, values: &[Value]) -> FieldProfile {
        let name = name.into();
        let count = values.len();
        let mut distinct_set: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut numeric_n = 0usize;
        let mut temporal_n = 0usize;
        let mut nums: Vec<f64> = Vec::new();
        for v in values {
            distinct_set.insert(v.to_string());
            if v.is_temporal() {
                temporal_n += 1;
                nums.push(v.as_epoch_seconds().expect("temporal") as f64);
            } else if v.is_numeric() {
                numeric_n += 1;
                nums.push(v.as_f64().expect("numeric"));
            }
        }
        let distinct = distinct_set.len();
        let kind = if count == 0 {
            DataKind::Text
        } else if temporal_n * 10 >= count * 8 {
            DataKind::Temporal
        } else if numeric_n * 10 >= count * 8 {
            // Low-cardinality integers function as categories (codes).
            if distinct <= 12 && distinct * 20 <= count {
                DataKind::Categorical
            } else {
                DataKind::Numeric
            }
        } else if distinct <= 20.max(count / 20) {
            DataKind::Categorical
        } else {
            DataKind::Text
        };
        let numeric = if matches!(kind, DataKind::Numeric | DataKind::Temporal) {
            NumericSummary::of(&nums)
        } else {
            None
        };
        FieldProfile {
            name,
            kind,
            count,
            distinct,
            numeric,
        }
    }
}

/// Profiles one property of an RDF graph: collects its object values and
/// detects the kind, with two RDF-specific overrides — `geo:lat/long`
/// properties are spatial, and object properties (resource objects) are
/// graph-shaped.
pub fn profile_property(graph: &Graph, predicate: &str) -> FieldProfile {
    if predicate == geo::LAT || predicate == geo::LONG {
        let values: Vec<Value> = graph
            .triples_for_predicate(predicate)
            .filter_map(|t| t.object.as_literal().map(Value::from_literal))
            .collect();
        let mut p = FieldProfile::detect(predicate, &values);
        p.kind = DataKind::Spatial;
        return p;
    }
    // `rdf:type` objects are IRIs, but semantically they are categories
    // (class membership) — the field every faceted browser starts from.
    if predicate == wodex_rdf::vocab::rdf::TYPE {
        let values: Vec<Value> = graph
            .triples_for_predicate(predicate)
            .map(|t| Value::Text(t.object.to_string()))
            .collect();
        let mut p = FieldProfile::detect(predicate, &values);
        if p.count > 0 {
            p.kind = DataKind::Categorical;
        }
        return p;
    }
    let mut resource_objects = 0usize;
    let mut values = Vec::new();
    let mut total = 0usize;
    for t in graph.triples_for_predicate(predicate) {
        total += 1;
        match &t.object {
            Term::Literal(l) => values.push(Value::from_literal(l)),
            _ => resource_objects += 1,
        }
    }
    if total > 0 && resource_objects * 10 >= total * 8 {
        return FieldProfile {
            name: predicate.to_string(),
            kind: DataKind::Graph,
            count: total,
            distinct: graph
                .triples_for_predicate(predicate)
                .map(|t| t.object.to_string())
                .collect::<std::collections::HashSet<_>>()
                .len(),
            numeric: None,
        };
    }
    FieldProfile::detect(predicate, &values)
}

/// Profiles every predicate of a graph (the dataset-level view a
/// recommendation wizard starts from).
pub fn profile_graph(graph: &Graph) -> Vec<FieldProfile> {
    let mut predicates: Vec<String> = graph
        .predicates()
        .into_iter()
        .filter_map(|t| t.as_iri().map(|i| i.as_str().to_string()))
        .collect();
    predicates.sort();
    predicates
        .into_iter()
        .map(|p| profile_property(graph, &p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::vocab::rdfs;
    use wodex_rdf::Triple;

    #[test]
    fn numeric_detection() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Double(i as f64 * 1.5)).collect();
        let p = FieldProfile::detect("x", &vals);
        assert_eq!(p.kind, DataKind::Numeric);
        assert_eq!(p.count, 100);
        assert!(p.numeric.is_some());
    }

    #[test]
    fn temporal_detection() {
        let vals: Vec<Value> = (0..50).map(|i| Value::Date(i * 30)).collect();
        let p = FieldProfile::detect("d", &vals);
        assert_eq!(p.kind, DataKind::Temporal);
        assert!(p.numeric.is_some());
    }

    #[test]
    fn categorical_detection() {
        let vals: Vec<Value> = (0..200)
            .map(|i| Value::Text(format!("cat{}", i % 5)))
            .collect();
        let p = FieldProfile::detect("c", &vals);
        assert_eq!(p.kind, DataKind::Categorical);
        assert_eq!(p.distinct, 5);
    }

    #[test]
    fn low_cardinality_integers_are_categorical() {
        let vals: Vec<Value> = (0..500).map(|i| Value::Integer(i % 3)).collect();
        let p = FieldProfile::detect("code", &vals);
        assert_eq!(p.kind, DataKind::Categorical);
    }

    #[test]
    fn text_detection() {
        let vals: Vec<Value> = (0..100)
            .map(|i| Value::Text(format!("unique text {i}")))
            .collect();
        assert_eq!(FieldProfile::detect("t", &vals).kind, DataKind::Text);
        assert_eq!(FieldProfile::detect("e", &[]).kind, DataKind::Text);
    }

    #[test]
    fn mixed_column_falls_back_sensibly() {
        // 50/50 numeric and text: neither majority reaches 80%.
        let mut vals = Vec::new();
        for i in 0..50 {
            vals.push(Value::Integer(i));
            vals.push(Value::Text(format!("t{i}")));
        }
        let p = FieldProfile::detect("m", &vals);
        assert_eq!(p.kind, DataKind::Text);
    }

    fn geo_graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..10 {
            let s = format!("http://e.org/p{i}");
            g.insert(Triple::iri(
                &s,
                geo::LAT,
                Term::double(38.0 + i as f64 * 0.1),
            ));
            g.insert(Triple::iri(&s, geo::LONG, Term::double(23.0)));
            g.insert(Triple::iri(&s, rdfs::LABEL, Term::literal(format!("p{i}"))));
            g.insert(Triple::iri(
                &s,
                "http://e.org/links",
                Term::iri(format!("http://e.org/p{}", (i + 1) % 10)),
            ));
        }
        g
    }

    #[test]
    fn geo_properties_are_spatial() {
        let g = geo_graph();
        assert_eq!(profile_property(&g, geo::LAT).kind, DataKind::Spatial);
        assert_eq!(profile_property(&g, geo::LONG).kind, DataKind::Spatial);
    }

    #[test]
    fn object_properties_are_graph() {
        let g = geo_graph();
        let p = profile_property(&g, "http://e.org/links");
        assert_eq!(p.kind, DataKind::Graph);
        assert_eq!(p.count, 10);
    }

    #[test]
    fn profile_graph_covers_all_predicates() {
        let g = geo_graph();
        let profiles = profile_graph(&g);
        assert_eq!(profiles.len(), 4);
        let kinds: std::collections::HashMap<&str, DataKind> =
            profiles.iter().map(|p| (p.name.as_str(), p.kind)).collect();
        assert_eq!(kinds[geo::LAT], DataKind::Spatial);
        assert_eq!(kinds["http://e.org/links"], DataKind::Graph);
    }
}
