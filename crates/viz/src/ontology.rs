//! Ontology visualization (§3.5 of the survey).
//!
//! The survey catalogs three ways to draw a class hierarchy:
//!
//! * the dominant **node-link** paradigm (OntoGraf, OWLViz, VOWL, KC-Viz
//!   ...) — [`class_tree`], a layered tree drawing;
//! * **geometric containment** — CropCircles \[137\] "represent\[s\] the
//!   class hierarchy as a set of concentric circles" — [`crop_circles`];
//! * **space-filling partitions** — the treemap/sunburst family the LDVM
//!   stack uses — [`nested_treemap`] and [`sunburst`].
//!
//! All four consume the extracted [`ClassHierarchy`] and size elements by
//! transitive instance counts, so sparse branches stay visible and heavy
//! branches dominate — the overview behaviour ontology browsers need.

use crate::scene::{Color, Mark, Scene};
use wodex_rdf::schema::ClassHierarchy;

/// A layered node-link tree: depth → rows, siblings spread along x,
/// parent centered over its children.
pub fn class_tree(h: &ClassHierarchy, width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, "class hierarchy");
    if h.is_empty() {
        return s;
    }
    // In-order x coordinates for leaves, parents centered.
    let mut x = vec![0.0f64; h.len()];
    let mut next_leaf = 0.0f64;
    // Post-order walk.
    fn assign(h: &ClassHierarchy, i: usize, x: &mut [f64], next_leaf: &mut f64) {
        if h.nodes[i].children.is_empty() {
            x[i] = *next_leaf;
            *next_leaf += 1.0;
        } else {
            for &c in &h.nodes[i].children {
                assign(h, c, x, next_leaf);
            }
            let kids = &h.nodes[i].children;
            x[i] = kids.iter().map(|&c| x[c]).sum::<f64>() / kids.len() as f64;
        }
    }
    for &r in &h.roots {
        assign(h, r, &mut x, &mut next_leaf);
    }
    let cols = next_leaf.max(1.0);
    let rows = (h.max_depth() + 1) as f64;
    let sx = |v: f64| 30.0 + v / (cols - 1.0).max(1.0) * (width - 60.0);
    let sy = |d: usize| 30.0 + d as f64 / (rows - 1.0).max(1.0) * (height - 60.0);
    // Edges first.
    for (i, n) in h.nodes.iter().enumerate() {
        if let Some(p) = n.parent {
            s.marks.push(Mark::Line {
                points: vec![(sx(x[p]), sy(h.nodes[p].depth)), (sx(x[i]), sy(n.depth))],
                color: Color::GRAY,
                width: 0.8,
            });
        }
    }
    let max_w = h
        .nodes
        .iter()
        .map(|n| n.transitive_instances)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    for (i, n) in h.nodes.iter().enumerate() {
        let r = 3.0 + 8.0 * (n.transitive_instances as f64 / max_w).sqrt();
        s.marks.push(Mark::Circle {
            cx: sx(x[i]),
            cy: sy(n.depth),
            r,
            color: Color::palette(n.depth),
            label: Some(format!("{} ({})", n.label, n.transitive_instances)),
        });
        s.marks.push(Mark::Text {
            x: sx(x[i]) + r + 2.0,
            y: sy(n.depth) + 3.0,
            text: truncate(&n.label, 14),
            size: 8.0,
            color: Color::BLACK,
        });
    }
    s
}

/// CropCircles-style geometric containment: each class is a circle whose
/// area tracks its transitive weight; children are packed on a ring
/// inside their parent.
pub fn crop_circles(h: &ClassHierarchy, width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, "class containment (CropCircles)");
    if h.is_empty() {
        return s;
    }
    // Layout recursively: the forest packs into a virtual super-root.
    let total: f64 = h
        .roots
        .iter()
        .map(|&r| h.nodes[r].transitive_instances.max(1) as f64)
        .sum();
    let root_r = (width.min(height) / 2.0 - 10.0).max(10.0);
    let cx = width / 2.0;
    let cy = height / 2.0;
    // (index, center, radius) accumulated.
    let mut placed: Vec<(usize, f64, f64, f64)> = Vec::new();
    place_children(h, &h.roots, cx, cy, root_r, total.max(1.0), &mut placed);
    for (i, x, y, r) in placed {
        let n = &h.nodes[i];
        s.marks.push(Mark::Circle {
            cx: x,
            cy: y,
            r,
            color: Color::palette(n.depth),
            label: Some(format!("{} ({})", n.label, n.transitive_instances)),
        });
    }
    s
}

/// Packs `children` inside a circle at (cx, cy, radius): one child fills
/// the disk alone; several sit on a ring, each with radius proportional
/// to the square root of its weight share.
fn place_children(
    h: &ClassHierarchy,
    children: &[usize],
    cx: f64,
    cy: f64,
    radius: f64,
    total_weight: f64,
    out: &mut Vec<(usize, f64, f64, f64)>,
) {
    if children.is_empty() || radius < 1.0 {
        return;
    }
    let k = children.len();
    if k == 1 {
        let i = children[0];
        let r = radius * 0.85;
        out.push((i, cx, cy, r));
        let w: f64 = h.nodes[i]
            .children
            .iter()
            .map(|&c| h.nodes[c].transitive_instances.max(1) as f64)
            .sum();
        place_children(h, &h.nodes[i].children, cx, cy, r, w.max(1.0), out);
        return;
    }
    // Ring placement: centers on a ring of radius ring_r; child radius
    // bounded by both its weight share and the ring spacing.
    let ring_r = radius * 0.55;
    let max_child_r = (radius - ring_r).min(ring_r * (std::f64::consts::PI / k as f64).sin());
    for (j, &i) in children.iter().enumerate() {
        let share = h.nodes[i].transitive_instances.max(1) as f64 / total_weight;
        let r = (max_child_r * share.sqrt().max(0.25))
            .min(max_child_r)
            .max(1.0);
        let a = std::f64::consts::TAU * j as f64 / k as f64;
        let (x, y) = (cx + ring_r * a.cos(), cy + ring_r * a.sin());
        out.push((i, x, y, r));
        let w: f64 = h.nodes[i]
            .children
            .iter()
            .map(|&c| h.nodes[c].transitive_instances.max(1) as f64)
            .sum();
        place_children(h, &h.nodes[i].children, x, y, r, w.max(1.0), out);
    }
}

/// A sunburst: depth → ring, angular span ∝ transitive weight, drawn as
/// sampled arc polylines.
pub fn sunburst(h: &ClassHierarchy, width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, "class sunburst");
    if h.is_empty() {
        return s;
    }
    let cx = width / 2.0;
    let cy = height / 2.0;
    let rings = (h.max_depth() + 2) as f64;
    let ring_w = (width.min(height) / 2.0 - 10.0) / rings;
    let total: f64 = h
        .roots
        .iter()
        .map(|&r| h.nodes[r].transitive_instances.max(1) as f64)
        .sum::<f64>()
        .max(1.0);
    // (index, start_angle, sweep) via DFS.
    let mut segs: Vec<(usize, f64, f64)> = Vec::new();
    let mut stack: Vec<(usize, f64, f64)> = Vec::new();
    let mut a0 = 0.0;
    for &r in &h.roots {
        let sweep = h.nodes[r].transitive_instances.max(1) as f64 / total * std::f64::consts::TAU;
        stack.push((r, a0, sweep));
        a0 += sweep;
    }
    while let Some((i, start, sweep)) = stack.pop() {
        segs.push((i, start, sweep));
        let kid_total: f64 = h.nodes[i]
            .children
            .iter()
            .map(|&c| h.nodes[c].transitive_instances.max(1) as f64)
            .sum();
        let mut a = start;
        for &c in &h.nodes[i].children {
            let frac = h.nodes[c].transitive_instances.max(1) as f64 / kid_total.max(1.0);
            let child_sweep = sweep * frac;
            stack.push((c, a, child_sweep));
            a += child_sweep;
        }
    }
    for (i, start, sweep) in segs {
        let n = &h.nodes[i];
        let r0 = ring_w * (n.depth as f64 + 1.0);
        let r1 = r0 + ring_w * 0.9;
        // Donut segment outline: inner arc → outer arc (reversed) → close.
        let steps = ((sweep / 0.15).ceil() as usize).max(2);
        let mut pts = Vec::with_capacity(2 * steps + 3);
        for k in 0..=steps {
            let a = start + sweep * k as f64 / steps as f64;
            pts.push((cx + r0 * a.cos(), cy + r0 * a.sin()));
        }
        for k in (0..=steps).rev() {
            let a = start + sweep * k as f64 / steps as f64;
            pts.push((cx + r1 * a.cos(), cy + r1 * a.sin()));
        }
        pts.push(pts[0]);
        s.marks.push(Mark::Line {
            points: pts,
            color: Color::palette(i),
            width: 1.5,
        });
    }
    s
}

/// A nested treemap: each class's rectangle contains its children,
/// alternating split orientation by depth.
pub fn nested_treemap(h: &ClassHierarchy, width: f64, height: f64) -> Scene {
    let mut s = Scene::new(width, height, "class treemap");
    if h.is_empty() {
        return s;
    }
    let total: f64 = h
        .roots
        .iter()
        .map(|&r| h.nodes[r].transitive_instances.max(1) as f64)
        .sum::<f64>()
        .max(1.0);
    nest(
        h,
        &h.roots,
        total,
        (2.0, 16.0, width - 4.0, height - 18.0),
        true,
        &mut s,
    );
    s
}

fn nest(
    h: &ClassHierarchy,
    children: &[usize],
    total: f64,
    rect: (f64, f64, f64, f64),
    horizontal: bool,
    s: &mut Scene,
) {
    let (x, y, w, hgt) = rect;
    if w < 2.0 || hgt < 2.0 {
        return;
    }
    let mut pos = 0.0;
    for &i in children {
        let node = &h.nodes[i];
        let frac = node.transitive_instances.max(1) as f64 / total;
        let (rx, ry, rw, rh) = if horizontal {
            (x + pos * w, y, frac * w, hgt)
        } else {
            (x, y + pos * hgt, w, frac * hgt)
        };
        s.marks.push(Mark::Rect {
            x: rx,
            y: ry,
            w: rw,
            h: rh,
            color: Color::palette(node.depth),
            label: Some(format!("{} ({})", node.label, node.transitive_instances)),
        });
        if rw > 36.0 && rh > 11.0 {
            s.marks.push(Mark::Text {
                x: rx + 2.0,
                y: ry + 9.0,
                text: truncate(&node.label, (rw / 7.0) as usize),
                size: 8.0,
                color: Color::BLACK,
            });
        }
        let kid_total: f64 = node
            .children
            .iter()
            .map(|&c| h.nodes[c].transitive_instances.max(1) as f64)
            .sum();
        if !node.children.is_empty() {
            nest(
                h,
                &node.children,
                kid_total.max(1.0),
                (
                    rx + 2.0,
                    ry + 11.0,
                    (rw - 4.0).max(0.0),
                    (rh - 13.0).max(0.0),
                ),
                !horizontal,
                s,
            );
        }
        pos += frac;
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n.saturating_sub(1)).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::vocab::{rdf, rdfs};
    use wodex_rdf::{Graph, Term, Triple};

    fn hierarchy() -> ClassHierarchy {
        let mut g = Graph::new();
        let sub = |a: &str, b: &str| {
            Triple::iri(
                &format!("http://e.org/{a}"),
                rdfs::SUB_CLASS_OF,
                Term::iri(format!("http://e.org/{b}")),
            )
        };
        g.insert(sub("City", "Settlement"));
        g.insert(sub("Town", "Settlement"));
        g.insert(sub("Settlement", "Place"));
        g.insert(sub("Mountain", "Place"));
        for i in 0..20 {
            let class = ["City", "City", "City", "Town", "Mountain"][i % 5];
            g.insert(Triple::iri(
                &format!("http://e.org/i{i}"),
                rdf::TYPE,
                Term::iri(format!("http://e.org/{class}")),
            ));
        }
        ClassHierarchy::extract(&g)
    }

    #[test]
    fn class_tree_draws_every_class_and_edge() {
        let h = hierarchy();
        let s = class_tree(&h, 640.0, 480.0);
        let (_, circles, lines, texts) = s.mark_breakdown();
        assert_eq!(circles, 5);
        assert_eq!(lines, 4); // tree edges = n - roots
        assert_eq!(texts, 5);
        assert!(s.in_bounds(2.0));
    }

    #[test]
    fn class_tree_layers_by_depth() {
        let h = hierarchy();
        let s = class_tree(&h, 640.0, 480.0);
        // Root circles must be strictly above depth-2 circles.
        let ys: Vec<(String, f64)> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Circle {
                    cy, label: Some(l), ..
                } => Some((l.clone(), *cy)),
                _ => None,
            })
            .collect();
        let y = |name: &str| ys.iter().find(|(l, _)| l.starts_with(name)).unwrap().1;
        assert!(y("Place") < y("Settlement"));
        assert!(y("Settlement") < y("City"));
    }

    #[test]
    fn crop_circles_children_are_inside_parents() {
        let h = hierarchy();
        let s = crop_circles(&h, 500.0, 500.0);
        let circles: Vec<(String, f64, f64, f64)> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Circle {
                    cx,
                    cy,
                    r,
                    label: Some(l),
                    ..
                } => Some((l.clone(), *cx, *cy, *r)),
                _ => None,
            })
            .collect();
        assert_eq!(circles.len(), 5);
        let get = |name: &str| {
            circles
                .iter()
                .find(|(l, ..)| l.starts_with(name))
                .unwrap()
                .clone()
        };
        let (_, px, py, pr) = get("Settlement");
        for child in ["City", "Town"] {
            let (_, cx, cy, cr) = get(child);
            let d = ((cx - px).powi(2) + (cy - py).powi(2)).sqrt();
            assert!(
                d + cr <= pr + 1e-6,
                "{child} circle (d={d}, r={cr}) escapes Settlement (r={pr})"
            );
        }
        assert!(s.in_bounds(1.0));
    }

    #[test]
    fn sunburst_sweeps_sum_to_full_circle_per_ring() {
        let h = hierarchy();
        let s = sunburst(&h, 400.0, 400.0);
        // One closed polyline per class.
        let (_, _, lines, _) = s.mark_breakdown();
        assert_eq!(lines, 5);
        assert!(s.in_bounds(1.0));
        // Every segment polyline is closed.
        for m in &s.marks {
            if let Mark::Line { points, .. } = m {
                assert_eq!(points.first(), points.last());
            }
        }
    }

    #[test]
    fn nested_treemap_rects_nest_geometrically() {
        let h = hierarchy();
        let s = nested_treemap(&h, 600.0, 400.0);
        let rects: Vec<(String, f64, f64, f64, f64)> = s
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Rect {
                    x,
                    y,
                    w,
                    h,
                    label: Some(l),
                    ..
                } => Some((l.clone(), *x, *y, *w, *h)),
                _ => None,
            })
            .collect();
        assert_eq!(rects.len(), 5);
        let get = |name: &str| {
            rects
                .iter()
                .find(|(l, ..)| l.starts_with(name))
                .cloned()
                .unwrap()
        };
        let (_, px, py, pw, ph) = get("Place");
        let (_, cx, cy, cw, ch) = get("City");
        assert!(cx >= px - 1e-6 && cy >= py - 1e-6);
        assert!(cx + cw <= px + pw + 1e-6 && cy + ch <= py + ph + 1e-6);
        // Area ordering: City (12 instances) > Town (4).
        let (_, _, _, tw, th) = get("Town");
        assert!(cw * ch > tw * th);
    }

    #[test]
    fn empty_hierarchy_renders_empty_scenes() {
        let h = ClassHierarchy::extract(&Graph::new());
        for s in [
            class_tree(&h, 100.0, 100.0),
            crop_circles(&h, 100.0, 100.0),
            sunburst(&h, 100.0, 100.0),
            nested_treemap(&h, 100.0, 100.0),
        ] {
            assert_eq!(s.mark_count(), 0);
        }
    }
}
