//! Scene renderers: SVG and ASCII back ends.
//!
//! The surveyed systems render to browsers; a library renders to strings.
//! SVG is the portable vector target (viewable in any browser, diffable in
//! tests); the ASCII canvas is the terminal preview used by the examples.

use crate::scene::{Mark, Scene};

/// Renders a scene to an SVG document string.
pub fn to_svg(scene: &Scene) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(scene.marks.len() * 80 + 256);
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
        scene.width, scene.height, scene.width, scene.height
    );
    let _ = writeln!(out, "  <title>{}</title>", xml_escape(&scene.title));
    for m in &scene.marks {
        match m {
            Mark::Rect {
                x,
                y,
                w,
                h,
                color,
                label,
            } => {
                let _ = write!(
                    out,
                    "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{}\"",
                    color.hex()
                );
                match label {
                    Some(l) => {
                        let _ = writeln!(out, "><title>{}</title></rect>", xml_escape(l));
                    }
                    None => {
                        let _ = writeln!(out, "/>");
                    }
                }
            }
            Mark::Circle {
                cx,
                cy,
                r,
                color,
                label,
            } => {
                let _ = write!(
                    out,
                    "  <circle cx=\"{cx:.2}\" cy=\"{cy:.2}\" r=\"{r:.2}\" fill=\"{}\"",
                    color.hex()
                );
                match label {
                    Some(l) => {
                        let _ = writeln!(out, "><title>{}</title></circle>", xml_escape(l));
                    }
                    None => {
                        let _ = writeln!(out, "/>");
                    }
                }
            }
            Mark::Line {
                points,
                color,
                width,
            } => {
                let pts: Vec<String> = points
                    .iter()
                    .map(|&(x, y)| format!("{x:.2},{y:.2}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  <polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{width:.2}\"/>",
                    pts.join(" "),
                    color.hex()
                );
            }
            Mark::Text {
                x,
                y,
                text,
                size,
                color,
            } => {
                let _ = writeln!(
                    out,
                    "  <text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size:.1}\" fill=\"{}\">{}</text>",
                    color.hex(),
                    xml_escape(text)
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders a scene onto a `cols × rows` character canvas (terminal
/// preview; aspect handled by the caller's cols/rows choice).
pub fn to_ascii(scene: &Scene, cols: usize, rows: usize) -> String {
    let mut canvas = vec![vec![' '; cols]; rows];
    let sx = |x: f64| ((x / scene.width) * cols as f64) as isize;
    let sy = |y: f64| ((y / scene.height) * rows as f64) as isize;
    let put = |c: char, x: isize, y: isize, canvas: &mut Vec<Vec<char>>| {
        if x >= 0 && (x as usize) < cols && y >= 0 && (y as usize) < rows {
            canvas[y as usize][x as usize] = c;
        }
    };
    for m in &scene.marks {
        match m {
            Mark::Rect { x, y, w, h, .. } => {
                for cy in sy(*y)..=sy(y + h) {
                    for cx in sx(*x)..=sx(x + w) {
                        put('#', cx, cy, &mut canvas);
                    }
                }
            }
            Mark::Circle { cx, cy, .. } => {
                put('o', sx(*cx), sy(*cy), &mut canvas);
            }
            Mark::Line { points, .. } => {
                for w in points.windows(2) {
                    draw_line(
                        sx(w[0].0),
                        sy(w[0].1),
                        sx(w[1].0),
                        sy(w[1].1),
                        &mut canvas,
                        cols,
                        rows,
                    );
                }
            }
            Mark::Text { x, y, text, .. } => {
                let (mut cx, cy) = (sx(*x), sy(*y));
                for ch in text.chars() {
                    put(ch, cx, cy, &mut canvas);
                    cx += 1;
                }
            }
        }
    }
    let mut out = String::with_capacity((cols + 1) * rows);
    for row in canvas {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Bresenham line rasterization with '.' pixels.
fn draw_line(
    mut x0: isize,
    mut y0: isize,
    x1: isize,
    y1: isize,
    canvas: &mut [Vec<char>],
    cols: usize,
    rows: usize,
) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        if x0 >= 0 && (x0 as usize) < cols && y0 >= 0 && (y0 as usize) < rows {
            let cell = &mut canvas[y0 as usize][x0 as usize];
            if *cell == ' ' {
                *cell = '.';
            }
        }
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Color, Mark, Scene};

    fn scene() -> Scene {
        let mut s = Scene::new(100.0, 100.0, "test & <scene>");
        s.marks.push(Mark::Rect {
            x: 10.0,
            y: 10.0,
            w: 30.0,
            h: 20.0,
            color: Color::new(255, 0, 0),
            label: Some("a \"bar\"".into()),
        });
        s.marks.push(Mark::Circle {
            cx: 70.0,
            cy: 70.0,
            r: 5.0,
            color: Color::BLACK,
            label: None,
        });
        s.marks.push(Mark::Line {
            points: vec![(0.0, 0.0), (99.0, 99.0)],
            color: Color::GRAY,
            width: 1.0,
        });
        s.marks.push(Mark::Text {
            x: 5.0,
            y: 95.0,
            text: "hi".into(),
            size: 10.0,
            color: Color::BLACK,
        });
        s
    }

    #[test]
    fn svg_contains_all_marks_and_is_escaped() {
        let svg = to_svg(&scene());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<text"));
        assert!(svg.contains("test &amp; &lt;scene&gt;"));
        assert!(svg.contains("a &quot;bar&quot;"));
        assert!(svg.contains("#ff0000"));
    }

    #[test]
    fn svg_mark_count_matches_scene() {
        let svg = to_svg(&scene());
        assert_eq!(svg.matches("<rect").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 1);
        assert_eq!(svg.matches("<polyline").count(), 1);
    }

    #[test]
    fn ascii_renders_marks() {
        let a = to_ascii(&scene(), 50, 25);
        assert!(a.contains('#'), "rect fill missing");
        assert!(a.contains('o'), "circle missing");
        assert!(a.contains('.'), "line missing");
        assert!(a.contains("hi"), "text missing");
        assert_eq!(a.lines().count(), 25);
    }

    #[test]
    fn ascii_clips_out_of_canvas_marks() {
        let mut s = Scene::new(100.0, 100.0, "t");
        s.marks.push(Mark::Circle {
            cx: 500.0,
            cy: 500.0,
            r: 1.0,
            color: Color::BLACK,
            label: None,
        });
        let a = to_ascii(&s, 20, 10);
        assert!(!a.contains('o'));
    }

    #[test]
    fn empty_scene_renders_cleanly() {
        let s = Scene::new(10.0, 10.0, "empty");
        assert!(to_svg(&s).contains("</svg>"));
        assert_eq!(to_ascii(&s, 5, 3), "\n\n\n");
    }
}
