//! Dashboard composition (VizBoard \[135, 136\]).
//!
//! VizBoard "presents datasets in a dashboard-like, composite, and
//! interactive visualization": several coordinated views in one canvas.
//! [`compose`] lays child scenes into a grid, scaling and translating
//! their marks; [`Brush`] implements the brushing-and-linking mechanism
//! Vis Wizard \[131\] adds on top — a selection made in one view (a value
//! interval) highlights the matching items in every linked view.

use crate::scene::{Mark, Scene};

/// Composes child scenes into a `cols`-wide grid on one canvas of
/// `width × height`, preserving each child's aspect by uniform scaling.
pub fn compose(title: &str, views: &[Scene], cols: usize, width: f64, height: f64) -> Scene {
    assert!(cols >= 1);
    let mut out = Scene::new(width, height, title);
    if views.is_empty() {
        return out;
    }
    let rows = views.len().div_ceil(cols);
    let cell_w = width / cols as f64;
    let cell_h = height / rows as f64;
    for (i, view) in views.iter().enumerate() {
        let ox = (i % cols) as f64 * cell_w;
        let oy = (i / cols) as f64 * cell_h;
        let scale = (cell_w / view.width).min(cell_h / view.height);
        for m in &view.marks {
            out.marks.push(transform(m, scale, ox, oy));
        }
        // A light cell border so views read as panels.
        out.marks.push(Mark::Line {
            points: vec![
                (ox, oy),
                (ox + cell_w, oy),
                (ox + cell_w, oy + cell_h),
                (ox, oy + cell_h),
                (ox, oy),
            ],
            color: crate::scene::Color::GRAY,
            width: 0.5,
        });
    }
    out
}

fn transform(m: &Mark, s: f64, ox: f64, oy: f64) -> Mark {
    match m {
        Mark::Rect {
            x,
            y,
            w,
            h,
            color,
            label,
        } => Mark::Rect {
            x: x * s + ox,
            y: y * s + oy,
            w: w * s,
            h: h * s,
            color: *color,
            label: label.clone(),
        },
        Mark::Circle {
            cx,
            cy,
            r,
            color,
            label,
        } => Mark::Circle {
            cx: cx * s + ox,
            cy: cy * s + oy,
            r: (r * s).max(0.5),
            color: *color,
            label: label.clone(),
        },
        Mark::Line {
            points,
            color,
            width,
        } => Mark::Line {
            points: points
                .iter()
                .map(|&(x, y)| (x * s + ox, y * s + oy))
                .collect(),
            color: *color,
            width: (width * s).max(0.3),
        },
        Mark::Text {
            x,
            y,
            text,
            size,
            color,
        } => Mark::Text {
            x: x * s + ox,
            y: y * s + oy,
            text: text.clone(),
            size: (size * s).max(4.0),
            color: *color,
        },
    }
}

/// A brushing-and-linking selection over a shared numeric field: items
/// whose value falls in `[lo, hi]` are "brushed". Views register their
/// items by (item id, value); the brush answers membership for all of
/// them, so every linked view highlights the same subset.
#[derive(Debug, Clone, Default)]
pub struct Brush {
    range: Option<(f64, f64)>,
}

impl Brush {
    /// An empty (inactive) brush.
    pub fn new() -> Brush {
        Brush::default()
    }

    /// Sets the brushed interval (normalized so lo ≤ hi).
    pub fn select(&mut self, lo: f64, hi: f64) {
        self.range = Some(if lo <= hi { (lo, hi) } else { (hi, lo) });
    }

    /// Clears the brush.
    pub fn clear(&mut self) {
        self.range = None;
    }

    /// True if an interval is active.
    pub fn is_active(&self) -> bool {
        self.range.is_some()
    }

    /// True if the value is brushed (inactive brush selects everything).
    pub fn contains(&self, value: f64) -> bool {
        match self.range {
            Some((lo, hi)) => value >= lo && value <= hi,
            None => true,
        }
    }

    /// Splits items into (brushed, unbrushed) index sets.
    pub fn partition(&self, values: &[f64]) -> (Vec<usize>, Vec<usize>) {
        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if self.contains(v) {
                inside.push(i);
            } else {
                outside.push(i);
            }
        }
        (inside, outside)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charts;
    use crate::scene::Color;

    fn small_views() -> Vec<Scene> {
        let bars = charts::bar_chart(
            "a",
            &[("x".to_string(), 1.0), ("y".to_string(), 2.0)],
            200.0,
            100.0,
        );
        let pie = charts::pie("b", &[("p".to_string(), 1.0)], 100.0, 100.0);
        let scat = charts::scatter("c", &[(0.0, 0.0), (1.0, 1.0)], 200.0, 200.0, 10);
        vec![bars, pie, scat]
    }

    #[test]
    fn compose_keeps_all_marks_plus_borders() {
        let views = small_views();
        let total: usize = views.iter().map(Scene::mark_count).sum();
        let dash = compose("dash", &views, 2, 800.0, 600.0);
        assert_eq!(dash.mark_count(), total + views.len());
        assert!(dash.in_bounds(1.0));
    }

    #[test]
    fn compose_scales_into_cells() {
        let views = small_views();
        let dash = compose("dash", &views, 3, 900.0, 300.0);
        // Every mark must land inside the canvas; the first view's marks
        // inside the first cell (x < 300).
        assert!(dash.in_bounds(1.0));
        let first_view_rects: Vec<f64> = dash
            .marks
            .iter()
            .filter_map(|m| match m {
                Mark::Rect { x, w, .. } => Some(x + w),
                _ => None,
            })
            .take(2)
            .collect();
        assert!(first_view_rects.iter().all(|&r| r <= 300.0 + 1.0));
    }

    #[test]
    fn compose_empty_and_single() {
        let dash = compose("empty", &[], 2, 100.0, 100.0);
        assert_eq!(dash.mark_count(), 0);
        let one = compose("one", &small_views()[..1], 1, 400.0, 400.0);
        assert!(one.mark_count() > 0);
    }

    #[test]
    fn transform_preserves_relative_geometry() {
        let m = Mark::Circle {
            cx: 10.0,
            cy: 20.0,
            r: 5.0,
            color: Color::BLACK,
            label: None,
        };
        let t = transform(&m, 2.0, 100.0, 200.0);
        match t {
            Mark::Circle { cx, cy, r, .. } => {
                assert_eq!((cx, cy, r), (120.0, 240.0, 10.0));
            }
            _ => panic!("kind changed"),
        }
    }

    #[test]
    fn brush_membership_and_partition() {
        let mut b = Brush::new();
        assert!(b.contains(5.0), "inactive brush selects everything");
        b.select(10.0, 3.0); // reversed bounds normalize
        assert!(b.is_active());
        assert!(b.contains(5.0));
        assert!(!b.contains(11.0));
        let (inside, outside) = b.partition(&[1.0, 5.0, 20.0]);
        assert_eq!(inside, vec![1]);
        assert_eq!(outside, vec![0, 2]);
        b.clear();
        assert!(b.contains(999.0));
    }
}
