//! User preferences and environment adaptation.
//!
//! Table 1's "Preferences" column marks systems that let the user shape
//! the visualization (VizBoard, SemLens, SynopsViz, Vis Wizard,
//! LinkDaViz), and §2 asks that systems "*automatically adjust their
//! parameters by taking into account the environment setting (e.g., screen
//! resolution, memory size)*". [`UserPreferences`] carries both: explicit
//! chart-type boosts and data budgets, and an environment-derived default.

use crate::recommend::{Recommendation, VisKind};
use std::collections::HashMap;

/// User + environment preferences applied across the pipeline.
#[derive(Debug, Clone)]
pub struct UserPreferences {
    /// Additive score boosts (may be negative) per chart type.
    pub boosts: HashMap<VisKind, f64>,
    /// Maximum raw points a chart may draw before reduction kicks in.
    pub max_points: usize,
    /// Number of bins for distribution views.
    pub bins: usize,
    /// HETree-style abstraction fanout for multilevel views.
    pub hierarchy_degree: usize,
    /// Viewport width in scene units.
    pub width: f64,
    /// Viewport height in scene units.
    pub height: f64,
}

impl Default for UserPreferences {
    fn default() -> Self {
        UserPreferences {
            boosts: HashMap::new(),
            max_points: 2000,
            bins: 32,
            hierarchy_degree: 4,
            width: 640.0,
            height: 480.0,
        }
    }
}

impl UserPreferences {
    /// Derives budgets from a screen resolution and a memory budget in
    /// MiB — the §2 environment-adaptation rule: point budget ≈ one per
    /// horizontal pixel ×4 (M4), bins ≈ width/20, all clamped by memory.
    pub fn for_environment(screen_w: u32, screen_h: u32, memory_mib: u32) -> UserPreferences {
        let max_points_by_screen = (screen_w as usize) * 4;
        let max_points_by_memory = (memory_mib as usize) * 1024; // ~16B/point
        UserPreferences {
            max_points: max_points_by_screen.min(max_points_by_memory).max(100),
            bins: ((screen_w / 20) as usize).clamp(8, 256),
            width: screen_w as f64,
            height: screen_h as f64,
            ..Default::default()
        }
    }

    /// Adds a chart-type boost (chainable).
    pub fn boost(mut self, kind: VisKind, delta: f64) -> UserPreferences {
        *self.boosts.entry(kind).or_insert(0.0) += delta;
        self
    }

    /// Applies boosts to recommendations and re-sorts them, annotating
    /// boosted entries.
    pub fn apply(&self, mut recs: Vec<Recommendation>) -> Vec<Recommendation> {
        for r in &mut recs {
            if let Some(&b) = self.boosts.get(&r.kind) {
                r.score = (r.score + b).clamp(0.0, 1.0);
                r.reason = format!("{} [user preference {b:+.2}]", r.reason);
            }
        }
        recs.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        recs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: VisKind, score: f64) -> Recommendation {
        Recommendation {
            kind,
            score,
            reason: "r".into(),
        }
    }

    #[test]
    fn boost_reorders_recommendations() {
        let prefs = UserPreferences::default().boost(VisKind::Pie, 0.5);
        let recs = vec![rec(VisKind::Bar, 0.8), rec(VisKind::Pie, 0.5)];
        let out = prefs.apply(recs);
        assert_eq!(out[0].kind, VisKind::Pie);
        assert!(out[0].reason.contains("user preference"));
    }

    #[test]
    fn negative_boost_demotes() {
        let prefs = UserPreferences::default().boost(VisKind::Bar, -0.6);
        let out = prefs.apply(vec![rec(VisKind::Bar, 0.8), rec(VisKind::Table, 0.3)]);
        assert_eq!(out[0].kind, VisKind::Table);
    }

    #[test]
    fn scores_stay_clamped() {
        let prefs = UserPreferences::default()
            .boost(VisKind::Bar, 5.0)
            .boost(VisKind::Pie, -5.0);
        let out = prefs.apply(vec![rec(VisKind::Bar, 0.8), rec(VisKind::Pie, 0.5)]);
        assert_eq!(out[0].score, 1.0);
        assert_eq!(out[1].score, 0.0);
    }

    #[test]
    fn environment_budgets_scale_with_screen() {
        let laptop = UserPreferences::for_environment(1280, 800, 4096);
        let phone = UserPreferences::for_environment(360, 640, 512);
        assert!(laptop.max_points > phone.max_points);
        assert!(laptop.bins >= phone.bins);
        assert_eq!(phone.width, 360.0);
    }

    #[test]
    fn memory_caps_point_budget() {
        // Huge screen, tiny memory: memory wins.
        let p = UserPreferences::for_environment(10_000, 1000, 1);
        assert_eq!(p.max_points, 1024);
    }
}
