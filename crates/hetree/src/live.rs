//! Incremental HETree maintenance under insert/delete deltas.
//!
//! SynopsViz-style exploration over *live* data needs the aggregation
//! tree patched per write batch, never rebuilt — the survey's
//! incremental-maintenance challenge. [`LiveHETree`] maintains a fully
//! materialized range-based tree with a **pinned domain**
//! ([`HETree::build_with_domain`]) and guarantees the maintained tree is
//! **bit-identical** to a from-scratch rebuild over the current item
//! multiset after every batch ([`tree_eq`] is the checked relation).
//!
//! Why this works:
//!
//! * The sorted item array evolves exactly as a stable re-sort of the
//!   stream would: inserts land at the *upper bound* among equal values
//!   (later stream position ⇒ later array position), deletes remove the
//!   exact `(value, id)` item, preserving the relative order of the
//!   rest.
//! * With the domain pinned, a node's child cut points depend only on
//!   its value range — never on the data — so structure changes are
//!   local to the nodes whose item slices actually changed.
//! * [`Stats`] are recomputed per dirty node with the same sequential
//!   [`Stats::of`] fold over the same slice the builder uses. Float
//!   addition is not associative; recomputing (rather than merging the
//!   delta in) is what makes the result identical rather than merely
//!   close.
//!
//! Per batch, reconciliation walks the tree top-down once: subtrees
//! whose content is untouched are index-shifted without recomputation;
//! dirty nodes recompute their cut points and stats; leaves that
//! overflow re-expand, interior nodes that underflow collapse.

use crate::{HETree, Item, Node, NodeId, Stats, Variant};

/// A range-based [`HETree`] maintained incrementally under deltas.
pub struct LiveHETree {
    tree: HETree,
    domain: (f64, f64),
}

impl LiveHETree {
    /// Builds the initial tree eagerly over `data` with a pinned
    /// `domain` (see [`HETree::new_with_domain`]).
    pub fn new(data: Vec<Item>, degree: usize, leaf_capacity: usize, domain: (f64, f64)) -> Self {
        LiveHETree {
            tree: HETree::build_with_domain(data, degree, leaf_capacity, domain),
            domain,
        }
    }

    /// The maintained tree (always fully materialized).
    pub fn tree(&self) -> &HETree {
        &self.tree
    }

    /// The maintained tree, mutably — for exploration calls like
    /// [`HETree::cover`] that take `&mut self` (their expansions are
    /// no-ops here: every node is already materialized).
    pub fn tree_mut(&mut self) -> &mut HETree {
        &mut self.tree
    }

    /// The pinned domain.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// Applies one delta batch — deletes, then inserts, the write-batch
    /// order of the MVCC store — and reconciles the tree. Cost is one
    /// compaction/merge pass over the item array plus the touched
    /// subtrees — never a per-item `Vec::insert` memmove, never a
    /// rebuild.
    pub fn apply(&mut self, inserts: &[Item], deletes: &[Item]) {
        // Every edit leaves a "dirty point": an index (in the
        // coordinates of the final array) at/around which content
        // changed. Delete points are first computed in the compacted
        // (pre-insert) array, then remapped across the insert merge.
        let mut delete_edits: Vec<usize> = Vec::new();

        // Deletes: locate every victim first, then compact in ONE pass.
        let mut gone: Vec<usize> = Vec::new();
        for &(v, id) in deletes {
            if !v.is_finite() {
                continue;
            }
            if let Some(p) = self.find_item(v, id, &gone) {
                gone.push(p);
            }
        }
        if !gone.is_empty() {
            gone.sort_unstable();
            // An edit at original index p lands at p - |removed below p|
            // once the array is compacted.
            for (k, &p) in gone.iter().enumerate() {
                delete_edits.push(p - k);
            }
            let mut next = 0usize;
            let mut keep = 0usize;
            let data = &mut self.tree.data;
            for i in 0..data.len() {
                if next < gone.len() && gone[next] == i {
                    next += 1;
                } else {
                    data[keep] = data[i];
                    keep += 1;
                }
            }
            data.truncate(keep);
        }

        // Inserts: each lands at the *upper bound* among equal values,
        // batch items among themselves in stream order — exactly what a
        // stable sort of the batch merged behind equal incumbents
        // yields. One backward merge instead of k memmoves.
        let mut batch: Vec<Item> = inserts
            .iter()
            .copied()
            .filter(|&(v, _)| v.is_finite())
            .collect();
        let mut edits: Vec<usize> = Vec::new();
        if !batch.is_empty() {
            batch.sort_by(|a, b| a.0.total_cmp(&b.0)); // stable
            let data = &mut self.tree.data;
            let old_len = data.len();
            let cuts: Vec<usize> = batch
                .iter()
                .map(|&(v, _)| data.partition_point(|x| x.0.total_cmp(&v).is_le()))
                .collect();
            data.resize(old_len + batch.len(), (0.0, 0));
            let mut src = old_len;
            let mut dst = data.len();
            for j in (0..batch.len()).rev() {
                while src > cuts[j] {
                    src -= 1;
                    dst -= 1;
                    data[dst] = data[src];
                }
                dst -= 1;
                data[dst] = batch[j];
                edits.push(dst);
            }
            debug_assert_eq!(src, dst);
            // A pre-insert point e sits after every batch item whose cut
            // is ≤ e (cuts are sorted: the batch is).
            for e in &mut delete_edits {
                *e += cuts.partition_point(|&c| c <= *e);
            }
        }
        edits.append(&mut delete_edits);

        if edits.is_empty() {
            return;
        }
        edits.sort_unstable();
        edits.dedup();
        let len = self.tree.data.len();
        self.reconcile(self.tree.root(), 0, len, &edits);
    }

    /// Inserts one item.
    pub fn insert(&mut self, item: Item) {
        self.apply(&[item], &[]);
    }

    /// Deletes one item; `false` if it was not present.
    pub fn delete(&mut self, item: Item) -> bool {
        let before = self.tree.len();
        self.apply(&[], &[item]);
        self.tree.len() < before
    }

    /// A from-scratch rebuild over the current items — the equivalence
    /// baseline for tests and benches.
    pub fn rebuild_reference(&self) -> HETree {
        HETree::build_with_domain(
            self.tree.data.clone(),
            self.tree.degree,
            self.tree.leaf_capacity,
            self.domain,
        )
    }

    /// Finds the exact `(v, id)` item's index, skipping indices already
    /// claimed by earlier deletes of the same batch.
    fn find_item(&self, v: f64, id: u64, claimed: &[usize]) -> Option<usize> {
        let data = &self.tree.data;
        let start = data.partition_point(|x| x.0.total_cmp(&v).is_lt());
        let mut i = start;
        while let Some(&(x, xid)) = data.get(i) {
            if x.total_cmp(&v).is_ne() {
                return None;
            }
            if xid == id && !claimed.contains(&i) {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Top-down reconciliation: brings the subtree at `id` to cover
    /// `[new_lo, new_hi)` of the (already edited) data array, exactly as
    /// a fresh build would shape it.
    fn reconcile(&mut self, id: NodeId, new_lo: usize, new_hi: usize, edits: &[usize]) {
        let (old_lo, old_hi) = {
            let n = &self.tree.nodes[id];
            (n.lo, n.hi)
        };
        // Dirty iff some edit point touches [new_lo, new_hi] (inclusive
        // hi: an edit at the boundary may belong to either sibling; the
        // redundant recompute folds identical items to identical bits).
        let from = edits.partition_point(|&e| e < new_lo);
        let dirty = edits.get(from).is_some_and(|&e| e <= new_hi);
        if !dirty {
            if (old_lo, old_hi) != (new_lo, new_hi) {
                debug_assert_eq!(new_hi - new_lo, old_hi - old_lo, "clean subtree resized");
                self.shift_subtree(id, new_lo as isize - old_lo as isize);
            }
            return;
        }
        {
            let stats = Stats::of(&self.tree.data[new_lo..new_hi]);
            let n = &mut self.tree.nodes[id];
            n.lo = new_lo;
            n.hi = new_hi;
            n.stats = stats;
        }
        if self.tree.is_leaf(id) {
            // A leaf now (possibly collapsed from an interior node; the
            // orphaned descendants stay in the arena unreferenced, as
            // ICO's unexpanded twins never exist at all).
            self.tree.nodes[id].children = Some(Vec::new());
            return;
        }
        let kids = match &self.tree.nodes[id].children {
            Some(k) if !k.is_empty() => k.clone(),
            // A former leaf overflowed (or a collapsed node regrew):
            // build the subtree fresh, exactly as the builder would.
            _ => {
                self.tree.nodes[id].children = None;
                let mut stack = vec![id];
                while let Some(nid) = stack.pop() {
                    for c in self.tree.expand(nid).to_vec() {
                        stack.push(c);
                    }
                }
                return;
            }
        };
        // Interior stays interior: recompute the child cuts with the
        // exact formula `expand` uses, then reconcile each child.
        debug_assert_eq!(self.tree.variant, Variant::RangeBased);
        let (rlo, rhi) = self.tree.nodes[id].range;
        let d = self.tree.degree;
        let w = (rhi - rlo) / d as f64;
        let mut a = new_lo;
        for (i, &kid) in kids.iter().enumerate() {
            let b = if i == d - 1 {
                new_hi
            } else {
                let cut_hi = rlo + w * (i + 1) as f64;
                new_lo + self.tree.data[new_lo..new_hi].partition_point(|&(v, _)| v < cut_hi)
            };
            self.reconcile(kid, a, b, edits);
            a = b;
        }
    }

    /// Shifts a content-unchanged subtree's item indices by `delta`.
    /// Stats and structure are untouched — identical items in identical
    /// order fold to identical bits.
    fn shift_subtree(&mut self, id: NodeId, delta: isize) {
        let mut stack = vec![id];
        while let Some(nid) = stack.pop() {
            let n = &mut self.tree.nodes[nid];
            n.lo = (n.lo as isize + delta) as usize;
            n.hi = (n.hi as isize + delta) as usize;
            if let Some(kids) = &n.children {
                stack.extend(kids.iter().copied());
            }
        }
    }
}

/// Structural bit-equality of two trees: same configuration, same item
/// array (bit-for-bit), and recursively identical nodes from the roots —
/// slice bounds, ranges, stats (all float fields compared by bits) and
/// child lists. Arena layout is deliberately ignored: an incrementally
/// maintained tree orders (and orphans) arena slots differently from a
/// bulk build of the same logical tree.
pub fn tree_eq(a: &HETree, b: &HETree) -> bool {
    if a.variant != b.variant
        || a.degree != b.degree
        || a.leaf_capacity != b.leaf_capacity
        || a.data.len() != b.data.len()
    {
        return false;
    }
    if !a
        .data
        .iter()
        .zip(&b.data)
        .all(|(x, y)| x.0.to_bits() == y.0.to_bits() && x.1 == y.1)
    {
        return false;
    }
    node_eq(a, a.root(), b, b.root())
}

fn node_eq(a: &HETree, ai: NodeId, b: &HETree, bi: NodeId) -> bool {
    let (x, y): (&Node, &Node) = (&a.nodes[ai], &b.nodes[bi]);
    let stats_eq = |s: &Stats, t: &Stats| {
        s.count == t.count
            && s.min.to_bits() == t.min.to_bits()
            && s.max.to_bits() == t.max.to_bits()
            && s.sum.to_bits() == t.sum.to_bits()
            && s.sum_sq.to_bits() == t.sum_sq.to_bits()
    };
    if x.lo != y.lo
        || x.hi != y.hi
        || x.depth != y.depth
        || x.range.0.to_bits() != y.range.0.to_bits()
        || x.range.1.to_bits() != y.range.1.to_bits()
        || !stats_eq(&x.stats, &y.stats)
    {
        return false;
    }
    match (&x.children, &y.children) {
        (None, None) => true,
        (Some(xs), Some(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(&xc, &yc)| node_eq(a, xc, b, yc))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<Item> {
        (0..n).map(|i| ((i * 7 % n) as f64, i as u64)).collect()
    }

    #[test]
    fn fresh_live_tree_equals_its_own_rebuild() {
        let live = LiveHETree::new(items(500), 4, 20, (0.0, 500.0));
        assert!(tree_eq(live.tree(), &live.rebuild_reference()));
    }

    #[test]
    fn single_inserts_and_deletes_track_rebuild_exactly() {
        let mut live = LiveHETree::new(items(300), 3, 10, (0.0, 300.0));
        let mut next_id = 1000u64;
        for i in 0..120u64 {
            let v = ((i.wrapping_mul(2654435761) >> 5) % 300) as f64 + 0.5;
            if i % 4 == 3 {
                live.delete((v - 0.5, (v - 0.5) as u64 * 7 % 300));
            } else {
                live.insert((v, next_id));
                next_id += 1;
            }
            assert!(
                tree_eq(live.tree(), &live.rebuild_reference()),
                "diverged at step {i}"
            );
        }
    }

    #[test]
    fn leaf_overflow_and_interior_collapse_round_trip() {
        // Tiny capacity: inserts overflow leaves fast; deletes collapse.
        let mut live = LiveHETree::new(items(16), 2, 2, (0.0, 16.0));
        let inserted: Vec<Item> = (0..40).map(|i| ((i % 16) as f64 + 0.25, 500 + i)).collect();
        live.apply(&inserted, &[]);
        assert!(tree_eq(live.tree(), &live.rebuild_reference()));
        live.apply(&[], &inserted);
        assert!(tree_eq(live.tree(), &live.rebuild_reference()));
        assert_eq!(live.tree().len(), 16);
    }

    #[test]
    fn batch_apply_equals_stepwise() {
        let mut batched = LiveHETree::new(items(200), 4, 8, (0.0, 200.0));
        let mut stepwise = LiveHETree::new(items(200), 4, 8, (0.0, 200.0));
        let ins: Vec<Item> = (0..30)
            .map(|i| ((i * 13 % 200) as f64 + 0.1, 900 + i))
            .collect();
        let del: Vec<Item> = (0..10).map(|i| ((i * 7 * 7 % 200) as f64, i * 7)).collect();
        batched.apply(&ins, &del);
        for &d in &del {
            stepwise.delete(d);
        }
        for &i in &ins {
            stepwise.insert(i);
        }
        assert!(tree_eq(batched.tree(), stepwise.tree()));
        assert!(tree_eq(batched.tree(), &batched.rebuild_reference()));
    }

    #[test]
    fn duplicate_values_keep_stream_order() {
        let mut live = LiveHETree::new(vec![(5.0, 1), (5.0, 2)], 2, 1, (0.0, 10.0));
        live.insert((5.0, 3));
        // The rebuild's stable sort keeps ids 1,2,3 in stream order.
        assert_eq!(live.tree().data, vec![(5.0, 1), (5.0, 2), (5.0, 3)]);
        assert!(tree_eq(live.tree(), &live.rebuild_reference()));
        assert!(live.delete((5.0, 2)));
        assert_eq!(live.tree().data, vec![(5.0, 1), (5.0, 3)]);
        assert!(!live.delete((5.0, 2)));
        assert!(tree_eq(live.tree(), &live.rebuild_reference()));
    }

    #[test]
    fn signed_zero_runs_over_capacity_terminate() {
        // -0.0 and 0.0 are total-order distinct but no range cut can
        // separate them (cuts compare with numeric `<`); a mixed run
        // larger than leaf_capacity must become a leaf, not recurse.
        let mut data: Vec<Item> = (0..6).map(|i| (-0.0, i)).collect();
        data.extend((6..12).map(|i| (0.0, i)));
        data.push((3.0, 99));
        let mut live = LiveHETree::new(data, 2, 4, (-8.0, 8.0));
        assert!(tree_eq(live.tree(), &live.rebuild_reference()));
        live.apply(&[(0.0, 100), (-0.0, 101)], &[(3.0, 99)]);
        assert!(tree_eq(live.tree(), &live.rebuild_reference()));
        assert_eq!(live.tree().len(), 14);
    }

    #[test]
    fn exploration_queries_work_on_the_live_tree() {
        let mut live = LiveHETree::new(items(2000), 4, 50, (0.0, 2000.0));
        live.apply(&[(123.5, 9000), (777.7, 9001)], &[]);
        let frontier = live.tree_mut().cover(100.0, 900.0, 16);
        assert!(!frontier.is_empty() && frontier.len() <= 16);
        let total: usize = {
            let t = live.tree_mut();
            t.level(1).iter().map(|&n| t.stats(n).count).sum()
        };
        assert_eq!(total, 2002);
    }
}
