//! # wodex-hetree — the HETree hierarchical aggregation framework
//!
//! An implementation of **HETree** (Bikakis et al. \[25, 26\]), the
//! tree-based model behind SynopsViz — the one system the survey's §4
//! credits with both approximation *and* runtime external-memory use, and
//! the structure its closing paragraph names as a model for future WoD
//! systems ("such as ... HETree in numeric and temporal datasets").
//!
//! The model organizes a numeric/temporal column into a balanced tree of
//! aggregates enabling **multilevel exploration**: the root summarizes the
//! whole dataset, each level refines the one above, leaves hold the actual
//! data items. Two constructions:
//!
//! * **HETree-C** (content-based): leaves hold equal *counts* of items —
//!   quantile-style, robust to skew.
//! * **HETree-R** (range-based): each node splits its value *range* into
//!   `d` equal subranges — intervals are regular, counts vary.
//!
//! Scalability features reproduced from the paper:
//!
//! * **ICO — incremental construction**: the tree materializes only the
//!   subtrees the user actually drills into ([`HETree::expand`],
//!   experiment E7).
//! * **ADA — adaptation**: an already-built (sub)tree is re-derived with a
//!   different fanout without re-sorting the data
//!   ([`HETree::adapt_degree`]).
//! * Per-node statistics (count/min/max/mean/variance) computed from
//!   mergeable aggregates ([`Stats`]).

use std::fmt;

pub mod live;
pub use live::{tree_eq, LiveHETree};

/// A data item: a numeric (or epoch-mapped temporal) value plus the id of
/// the RDF object it came from.
pub type Item = (f64, u64);

/// Mergeable aggregate statistics of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of items under the node.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sum of values.
    pub sum: f64,
    /// Sum of squared values (for variance).
    pub sum_sq: f64,
}

impl Stats {
    /// Computes stats over a slice of items.
    pub fn of(items: &[Item]) -> Stats {
        let mut s = Stats {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
        };
        for &(v, _) in items {
            s.count += 1;
            s.min = s.min.min(v);
            s.max = s.max.max(v);
            s.sum += v;
            s.sum_sq += v * v;
        }
        s
    }

    /// Merges two aggregates (associative, commutative).
    pub fn merge(&self, other: &Stats) -> Stats {
        Stats {
            count: self.count + other.count,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            sum: self.sum + other.sum,
            sum_sq: self.sum_sq + other.sum_sq,
        }
    }

    /// Mean (NaN for empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance (NaN for empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0)
    }
}

/// Which HETree construction a tree uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Content-based: equal item counts per leaf.
    ContentBased,
    /// Range-based: equal value subranges per node.
    RangeBased,
}

/// Identifier of a node within its tree's arena.
pub type NodeId = usize;

/// A node of the tree.
#[derive(Debug, Clone)]
struct Node {
    /// Item slice `[lo, hi)` into the sorted data array.
    lo: usize,
    hi: usize,
    /// Value interval covered by the node.
    range: (f64, f64),
    stats: Stats,
    parent: Option<NodeId>,
    depth: usize,
    /// `None` = not yet materialized (ICO); `Some(vec![])` = leaf.
    children: Option<Vec<NodeId>>,
}

/// A hierarchical exploration tree over a sorted numeric column.
pub struct HETree {
    variant: Variant,
    degree: usize,
    leaf_capacity: usize,
    data: Vec<Item>,
    nodes: Vec<Node>,
    /// Nodes whose children have been derived (work accounting for E7).
    expansions: usize,
}

impl HETree {
    /// Creates a tree in **ICO mode**: only the root exists; subtrees
    /// materialize on [`HETree::expand`]. `degree ≥ 2` is the fanout,
    /// `leaf_capacity ≥ 1` the maximum items per leaf.
    pub fn new(
        mut data: Vec<Item>,
        variant: Variant,
        degree: usize,
        leaf_capacity: usize,
    ) -> HETree {
        assert!(degree >= 2, "degree must be at least 2");
        assert!(leaf_capacity >= 1, "leaf capacity must be at least 1");
        data.sort_by(|a, b| a.0.total_cmp(&b.0));
        let stats = Stats::of(&data);
        let range = if data.is_empty() {
            (0.0, 0.0)
        } else {
            (stats.min, stats.max)
        };
        let root = Node {
            lo: 0,
            hi: data.len(),
            range,
            stats,
            parent: None,
            depth: 0,
            children: None,
        };
        HETree {
            variant,
            degree,
            leaf_capacity,
            data,
            nodes: vec![root],
            expansions: 0,
        }
    }

    /// Builds the **whole** tree eagerly (the non-incremental baseline).
    pub fn build(data: Vec<Item>, variant: Variant, degree: usize, leaf_capacity: usize) -> HETree {
        let mut t = HETree::new(data, variant, degree, leaf_capacity);
        t.expand_all();
        t
    }

    /// Creates a **range-based** tree whose root covers the explicit
    /// `domain` instead of the data's min/max. Pinning the domain makes
    /// every node's cut points a function of the domain alone — the
    /// precondition for incremental maintenance ([`live::LiveHETree`]):
    /// with data-derived ranges, a single insert outside the current
    /// min/max would move every cut in the tree. (Content-based trees
    /// have data-dependent boundaries by construction and can only be
    /// rebuilt.)
    pub fn new_with_domain(
        mut data: Vec<Item>,
        degree: usize,
        leaf_capacity: usize,
        domain: (f64, f64),
    ) -> HETree {
        assert!(degree >= 2, "degree must be at least 2");
        assert!(leaf_capacity >= 1, "leaf capacity must be at least 1");
        assert!(
            domain.0 < domain.1 && domain.0.is_finite() && domain.1.is_finite(),
            "domain must be a finite non-empty interval"
        );
        data.sort_by(|a, b| a.0.total_cmp(&b.0));
        let stats = Stats::of(&data);
        let root = Node {
            lo: 0,
            hi: data.len(),
            range: domain,
            stats,
            parent: None,
            depth: 0,
            children: None,
        };
        HETree {
            variant: Variant::RangeBased,
            degree,
            leaf_capacity,
            data,
            nodes: vec![root],
            expansions: 0,
        }
    }

    /// [`HETree::new_with_domain`], built eagerly — the from-scratch
    /// rebuild baseline the incremental path is tested against.
    pub fn build_with_domain(
        data: Vec<Item>,
        degree: usize,
        leaf_capacity: usize,
        domain: (f64, f64),
    ) -> HETree {
        let mut t = HETree::new_with_domain(data, degree, leaf_capacity, domain);
        t.expand_all();
        t
    }

    /// Materializes every reachable node.
    fn expand_all(&mut self) {
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            for c in self.expand(id).to_vec() {
                stack.push(c);
            }
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        0
    }

    /// The construction variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The fanout.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Total items.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tree indexes no items.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of materialized nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of expand operations performed (ICO work accounting).
    pub fn expansions(&self) -> usize {
        self.expansions
    }

    /// A node's statistics.
    pub fn stats(&self, id: NodeId) -> &Stats {
        &self.nodes[id].stats
    }

    /// A node's value interval.
    pub fn range(&self, id: NodeId) -> (f64, f64) {
        self.nodes[id].range
    }

    /// A node's depth (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.nodes[id].depth
    }

    /// A node's parent.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id].parent
    }

    /// The items under a node.
    pub fn items(&self, id: NodeId) -> &[Item] {
        let n = &self.nodes[id];
        &self.data[n.lo..n.hi]
    }

    /// Materialized children, if any ([`HETree::expand`] to force).
    pub fn children(&self, id: NodeId) -> Option<&[NodeId]> {
        self.nodes[id].children.as_deref()
    }

    /// True if the node can never have children: at or under leaf
    /// capacity, or (range-based only) a run no value cut can ever
    /// separate — expanding such a node would recurse forever on an
    /// ever-shrinking range with no progress. "Uncuttable" must use the
    /// cut's own comparison (numeric `<`, see `expand`), not total
    /// order: `-0.0` and `0.0` are total-order distinct, yet every cut
    /// point sends them to the same child.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        let n = &self.nodes[id];
        if n.hi - n.lo <= self.leaf_capacity {
            return true;
        }
        // Sorted by total_cmp, so first ≤ last; `!(first < last)` means
        // the run is numerically one value (or NaNs, which no cut
        // moves — `>=` would wrongly report NaN runs cuttable).
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let uncuttable = !(self.data[n.lo].0 < self.data[n.hi - 1].0);
        self.variant == Variant::RangeBased && uncuttable
    }

    /// Materializes the children of a node (idempotent). Returns the
    /// children (empty for leaves). This is the **ICO** drill-down: the
    /// cost of exploration is proportional to the subtrees visited, not to
    /// the dataset.
    pub fn expand(&mut self, id: NodeId) -> &[NodeId] {
        if self.nodes[id].children.is_some() {
            return self.nodes[id].children.as_deref().expect("just checked");
        }
        self.expansions += 1;
        if self.is_leaf(id) {
            self.nodes[id].children = Some(Vec::new());
            return self.nodes[id].children.as_deref().expect("set above");
        }
        let (lo, hi, depth, range) = {
            let n = &self.nodes[id];
            (n.lo, n.hi, n.depth, n.range)
        };
        let cuts: Vec<(usize, usize, (f64, f64))> = match self.variant {
            Variant::ContentBased => {
                // Split [lo, hi) into `degree` near-equal count parts.
                let n = hi - lo;
                let d = self.degree;
                (0..d)
                    .map(|i| {
                        let a = lo + i * n / d;
                        let b = lo + (i + 1) * n / d;
                        let r = if a < b {
                            (self.data[a].0, self.data[b - 1].0)
                        } else {
                            (f64::NAN, f64::NAN)
                        };
                        (a, b, r)
                    })
                    .filter(|&(a, b, _)| a < b)
                    .collect()
            }
            Variant::RangeBased => {
                // Split the value range into `degree` equal intervals and
                // locate the item boundaries by binary search.
                let (rlo, rhi) = range;
                let d = self.degree;
                let w = (rhi - rlo) / d as f64;
                let mut out = Vec::with_capacity(d);
                let mut a = lo;
                for i in 0..d {
                    let cut_hi = if i == d - 1 {
                        rhi
                    } else {
                        rlo + w * (i + 1) as f64
                    };
                    let b = if i == d - 1 {
                        hi
                    } else {
                        lo + self.data[lo..hi].partition_point(|&(v, _)| v < cut_hi)
                    };
                    let sub_lo = rlo + w * i as f64;
                    out.push((a, b, (sub_lo, cut_hi)));
                    a = b;
                }
                // Keep empty range children only if they are interior to
                // non-empty siblings? HETree-R keeps all: regular grid.
                out
            }
        };
        let mut kids = Vec::with_capacity(cuts.len());
        for (a, b, r) in cuts {
            let stats = Stats::of(&self.data[a..b]);
            let child = Node {
                lo: a,
                hi: b,
                range: r,
                stats,
                parent: Some(id),
                depth: depth + 1,
                children: None,
            };
            self.nodes.push(child);
            kids.push(self.nodes.len() - 1);
        }
        self.nodes[id].children = Some(kids);
        self.nodes[id].children.as_deref().expect("set above")
    }

    /// Expands down to `depth`, returning the materialized frontier at
    /// that depth (nodes shallower than `depth` that are leaves are
    /// included — they are their own frontier).
    pub fn level(&mut self, depth: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            if self.depth(id) == depth || self.is_leaf(id) {
                out.push(id);
                continue;
            }
            for c in self.expand(id).to_vec() {
                stack.push(c);
            }
        }
        out.sort_unstable();
        out
    }

    /// The leaf whose interval contains `v`, expanding along the path
    /// (point drill-down).
    pub fn locate(&mut self, v: f64) -> NodeId {
        let mut id = self.root();
        loop {
            if self.is_leaf(id) {
                return id;
            }
            let kids = self.expand(id).to_vec();
            let next = kids
                .iter()
                .copied()
                .find(|&c| {
                    let (lo, hi) = self.range(c);
                    v >= lo && v <= hi
                })
                .or_else(|| {
                    // Out-of-range values clamp to the nearest child.
                    if v < self.range(id).0 {
                        kids.first().copied()
                    } else {
                        kids.last().copied()
                    }
                });
            match next {
                Some(c) if c != id => id = c,
                _ => return id,
            }
        }
    }

    /// Covers the value window `[lo, hi]` with at most `max_nodes`
    /// frontier nodes at *adaptive* granularity: nodes fully inside the
    /// window are refined breadth-first (largest count first) while the
    /// budget lasts; nodes overlapping the window edge stay coarse. This
    /// is the render query of a SynopsViz-style view — the window always
    /// maps to a display-bounded set of bars whose detail follows zoom.
    pub fn cover(&mut self, lo: f64, hi: f64, max_nodes: usize) -> Vec<NodeId> {
        assert!(max_nodes >= 1);
        let root = self.root();
        let overlaps = |t: &HETree, id: NodeId| {
            let (a, b) = t.range(id);
            b >= lo && a <= hi && t.stats(id).count > 0
        };
        if !overlaps(self, root) {
            return Vec::new();
        }
        let mut frontier: Vec<NodeId> = vec![root];
        loop {
            // Refine the heaviest refinable node if the budget allows.
            let candidate = frontier
                .iter()
                .copied()
                .filter(|&id| !self.is_leaf(id))
                .max_by_key(|&id| self.stats(id).count);
            let Some(target) = candidate else { break };
            let kids: Vec<NodeId> = self
                .expand(target)
                .to_vec()
                .into_iter()
                .filter(|&c| overlaps(self, c))
                .collect();
            if kids.is_empty() || frontier.len() - 1 + kids.len() > max_nodes {
                break;
            }
            frontier.retain(|&id| id != target);
            frontier.extend(kids);
        }
        frontier.sort_by(|&a, &b| self.range(a).0.total_cmp(&self.range(b).0));
        frontier
    }

    /// **ADA**: re-derives the hierarchy with a new fanout. The sorted
    /// data array is reused — only the (cheap) node arena is rebuilt, and
    /// lazily at that.
    pub fn adapt_degree(self, new_degree: usize) -> HETree {
        assert!(new_degree >= 2);
        let HETree {
            variant,
            leaf_capacity,
            data,
            ..
        } = self;
        // Data is already sorted; HETree::new re-sorts, which is O(n) for
        // sorted input under pattern-defeating quicksort, but avoid the
        // dependency on that detail by constructing the root directly.
        let stats = Stats::of(&data);
        let range = if data.is_empty() {
            (0.0, 0.0)
        } else {
            (stats.min, stats.max)
        };
        let root = Node {
            lo: 0,
            hi: data.len(),
            range,
            stats,
            parent: None,
            depth: 0,
            children: None,
        };
        HETree {
            variant,
            degree: new_degree,
            leaf_capacity,
            data,
            nodes: vec![root],
            expansions: 0,
        }
    }

    /// Renders a materialized subtree as an indented text outline — the
    /// "multilevel exploration" view of SynopsViz in terminal form.
    pub fn render(&self, id: NodeId, max_depth: usize) -> String {
        let mut out = String::new();
        self.render_into(id, max_depth, &mut out);
        out
    }

    fn render_into(&self, id: NodeId, max_depth: usize, out: &mut String) {
        use fmt::Write;
        let n = &self.nodes[id];
        let indent = "  ".repeat(n.depth);
        let _ = writeln!(
            out,
            "{indent}[{:.2}, {:.2}] n={} mean={:.2}",
            n.range.0,
            n.range.1,
            n.stats.count,
            n.stats.mean()
        );
        if n.depth < max_depth {
            if let Some(kids) = &n.children {
                for &c in kids {
                    self.render_into(c, max_depth, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<Item> {
        (0..n).map(|i| ((i * 7 % n) as f64, i as u64)).collect()
    }

    #[test]
    fn stats_merge_equals_direct() {
        let data = items(100);
        let (a, b) = data.split_at(37);
        let merged = Stats::of(a).merge(&Stats::of(b));
        let direct = Stats::of(&data);
        assert_eq!(merged.count, direct.count);
        assert_eq!(merged.min, direct.min);
        assert_eq!(merged.max, direct.max);
        assert!((merged.mean() - direct.mean()).abs() < 1e-9);
        assert!((merged.variance() - direct.variance()).abs() < 1e-6);
    }

    #[test]
    fn children_partition_parent_content_based() {
        let mut t = HETree::new(items(1000), Variant::ContentBased, 4, 10);
        let root = t.root();
        let kids = t.expand(root).to_vec();
        assert_eq!(kids.len(), 4);
        let total: usize = kids.iter().map(|&c| t.stats(c).count).sum();
        assert_eq!(total, 1000);
        // Equal counts.
        for &c in &kids {
            assert_eq!(t.stats(c).count, 250);
        }
        // Value-ordered and non-overlapping.
        for w in kids.windows(2) {
            assert!(t.range(w[0]).1 <= t.range(w[1]).0 + 1e-12);
        }
    }

    #[test]
    fn children_tile_range_based() {
        let mut t = HETree::new(items(1000), Variant::RangeBased, 5, 10);
        let root = t.root();
        let (rlo, rhi) = t.range(root);
        let kids = t.expand(root).to_vec();
        assert_eq!(kids.len(), 5);
        assert_eq!(t.range(kids[0]).0, rlo);
        assert_eq!(t.range(kids[4]).1, rhi);
        for w in kids.windows(2) {
            assert!((t.range(w[0]).1 - t.range(w[1]).0).abs() < 1e-9);
        }
        let total: usize = kids.iter().map(|&c| t.stats(c).count).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn node_stats_consistent_with_items() {
        let mut t = HETree::new(items(500), Variant::ContentBased, 3, 20);
        let root = t.root();
        for &c in &t.expand(root).to_vec() {
            let direct = Stats::of(t.items(c));
            assert_eq!(&direct, t.stats(c));
        }
    }

    #[test]
    fn ico_materializes_only_the_explored_path() {
        let data = items(100_000);
        let mut lazy = HETree::new(data.clone(), Variant::ContentBased, 4, 100);
        // Drill down one path to a leaf.
        let leaf = lazy.locate(37.0);
        assert!(lazy.is_leaf(leaf));
        let lazy_nodes = lazy.node_count();
        let bulk = HETree::build(data, Variant::ContentBased, 4, 100);
        assert!(
            lazy_nodes * 10 < bulk.node_count(),
            "ICO built {lazy_nodes} nodes, bulk {}",
            bulk.node_count()
        );
    }

    #[test]
    fn expand_is_idempotent() {
        let mut t = HETree::new(items(100), Variant::ContentBased, 2, 10);
        let root = t.root();
        let a = t.expand(root).to_vec();
        let n = t.node_count();
        let b = t.expand(root).to_vec();
        assert_eq!(a, b);
        assert_eq!(t.node_count(), n);
        assert_eq!(t.expansions(), 1);
    }

    #[test]
    fn locate_finds_containing_leaf() {
        let mut t = HETree::new(items(1000), Variant::RangeBased, 4, 25);
        let leaf = t.locate(500.0);
        let (lo, hi) = t.range(leaf);
        assert!((lo..=hi).contains(&500.0));
        assert!(t.is_leaf(leaf));
        // Out-of-range values clamp.
        let low = t.locate(-1e9);
        assert_eq!(t.range(low).0, t.stats(t.root()).min);
    }

    #[test]
    fn level_yields_a_complete_frontier() {
        let mut t = HETree::new(items(10_000), Variant::ContentBased, 4, 50);
        let frontier = t.level(2);
        let total: usize = frontier.iter().map(|&c| t.stats(c).count).sum();
        assert_eq!(total, 10_000);
        assert!(frontier.iter().all(|&c| t.depth(c) <= 2));
    }

    #[test]
    fn leaves_respect_capacity() {
        let t = HETree::build(items(1234), Variant::ContentBased, 3, 40);
        for id in 0..t.node_count() {
            if t.children(id).is_some_and(|c| c.is_empty()) {
                assert!(t.stats(id).count <= 40, "leaf {id} overflows");
            }
        }
    }

    #[test]
    fn adapt_degree_preserves_data_and_changes_fanout() {
        let t = HETree::build(items(1000), Variant::ContentBased, 2, 10);
        assert_eq!(t.degree(), 2);
        let mut t2 = t.adapt_degree(8);
        assert_eq!(t2.degree(), 8);
        assert_eq!(t2.len(), 1000);
        let root = t2.root();
        assert_eq!(t2.expand(root).len(), 8);
        let total: usize = t2
            .expand(root)
            .to_vec()
            .iter()
            .map(|&c| t2.stats(c).count)
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn parent_links_are_consistent() {
        let mut t = HETree::new(items(500), Variant::ContentBased, 3, 10);
        let root = t.root();
        for &c in &t.expand(root).to_vec() {
            assert_eq!(t.parent(c), Some(root));
            assert_eq!(t.depth(c), 1);
        }
        assert_eq!(t.parent(root), None);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let t = HETree::build(vec![], Variant::ContentBased, 2, 10);
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 1);
        let mut one = HETree::new(vec![(5.0, 1)], Variant::RangeBased, 2, 10);
        let leaf = one.locate(5.0);
        assert_eq!(one.stats(leaf).count, 1);
    }

    #[test]
    fn skewed_data_content_based_stays_balanced() {
        // Zipf-ish: many duplicates at the low end.
        let data: Vec<Item> = (0..10_000)
            .map(|i| (((i % 100) as f64).powi(3), i as u64))
            .collect();
        let mut t = HETree::new(data, Variant::ContentBased, 4, 100);
        let root = t.root();
        let kids = t.expand(root).to_vec();
        let counts: Vec<usize> = kids.iter().map(|&c| t.stats(c).count).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "content-based must balance: {counts:?}");
    }

    #[test]
    fn skewed_data_range_based_varies() {
        let data: Vec<Item> = (0..10_000)
            .map(|i| (((i % 100) as f64).powi(3), i as u64))
            .collect();
        let mut t = HETree::new(data, Variant::RangeBased, 4, 100);
        let root = t.root();
        let kids = t.expand(root).to_vec();
        let counts: Vec<usize> = kids.iter().map(|&c| t.stats(c).count).collect();
        assert!(
            counts[0] > counts[3],
            "skew must show up in counts: {counts:?}"
        );
    }

    #[test]
    fn cover_respects_budget_and_window() {
        let mut t = HETree::new(items(10_000), Variant::RangeBased, 4, 50);
        let frontier = t.cover(2000.0, 4000.0, 16);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= 16);
        // Every frontier node overlaps the window.
        for &id in &frontier {
            let (a, b) = t.range(id);
            assert!(b >= 2000.0 && a <= 4000.0, "({a},{b}) outside window");
        }
        // Sorted by lower bound.
        assert!(frontier
            .windows(2)
            .all(|w| t.range(w[0]).0 <= t.range(w[1]).0));
    }

    #[test]
    fn cover_refines_with_budget() {
        let mut t = HETree::new(items(10_000), Variant::ContentBased, 4, 50);
        let coarse = t.cover(0.0, 10_000.0, 4);
        let mut t2 = HETree::new(items(10_000), Variant::ContentBased, 4, 50);
        let fine = t2.cover(0.0, 10_000.0, 64);
        assert!(fine.len() > coarse.len());
        assert!(fine.len() <= 64);
        // Full-window covers account for every item.
        let total: usize = fine.iter().map(|&id| t2.stats(id).count).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn cover_zoom_gives_finer_detail_per_unit() {
        // Same budget, narrower window → smaller value intervals.
        let mut t = HETree::new(items(100_000), Variant::RangeBased, 4, 100);
        let wide = t.cover(0.0, 100_000.0, 16);
        let wide_span: f64 = wide
            .iter()
            .map(|&id| t.range(id).1 - t.range(id).0)
            .sum::<f64>()
            / wide.len() as f64;
        let narrow = t.cover(40_000.0, 45_000.0, 16);
        let narrow_span: f64 = narrow
            .iter()
            .map(|&id| t.range(id).1 - t.range(id).0)
            .sum::<f64>()
            / narrow.len() as f64;
        assert!(
            narrow_span < wide_span / 2.0,
            "zooming must refine: {narrow_span} vs {wide_span}"
        );
    }

    #[test]
    fn cover_outside_data_range_is_empty() {
        let mut t = HETree::new(items(100), Variant::RangeBased, 2, 10);
        assert!(t.cover(1e9, 2e9, 8).is_empty());
    }

    #[test]
    fn render_outline_shows_counts() {
        let mut t = HETree::new(items(100), Variant::ContentBased, 2, 25);
        let root = t.root();
        t.expand(root);
        let s = t.render(root, 1);
        assert!(s.contains("n=100"));
        assert!(s.contains("n=50"));
    }
}
