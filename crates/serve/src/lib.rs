//! # wodex-serve — the std-only multi-session HTTP serving layer
//!
//! The survey frames WoD exploration as *server-mediated*: browsers and
//! exploratory systems (§3.1) issue many small interactive requests
//! against big datasets, and §2 demands incremental/progressive delivery
//! — first results before the query finishes. This crate turns the
//! workspace's library into that system: an HTTP/1.1 server built only
//! on `std::net`, consuming the two production ingredients the earlier
//! layers provide — the `wodex-exec` bounded channel as its admission
//! queue and worker feed, and `wodex-resilience` budgets for per-request
//! cost control.
//!
//! * [`http`] — request parsing, responses, chunked streaming with
//!   trailers.
//! * [`sessions`] — token-keyed [`ExplorationSession`]s over one shared
//!   graph, with LRU eviction and TTL expiry.
//! * [`server`] — the accept loop, bounded worker pool, and the
//!   two-gate admission control (queue depth + queue deadline), both of
//!   which shed with `503` + `Retry-After` instead of queueing without
//!   bound.
//! * [`handlers`] (internal) — the endpoint surface: `POST /sparql`
//!   (budgeted, chunk-streamed SPARQL 1.1 JSON), `GET /explore/*`
//!   (overview / filter / zoom / search / details / undo over a
//!   session), `GET /viz/*` (charts, recommendations, streamed
//!   histograms), `GET /stats`, `GET /healthz`, and
//!   `POST /admin/shutdown`.
//!
//! Degraded answers (budget tripped) are first-class: the partial body
//! is well-formed and the verdict rides HTTP trailers/headers
//! (`X-Wodex-Degraded: <reason>;coverage=<f>`), never an error status.
//!
//! [`ExplorationSession`]: wodex_explore::ExplorationSession

mod handlers;
pub mod http;
pub mod server;
pub mod sessions;

pub use server::{AppState, Counters, RunningServer, ServeConfig, Server};
pub use sessions::{SessionManager, SessionStats};
