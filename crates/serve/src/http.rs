//! Minimal HTTP/1.1 on `std::io` — request parsing, fixed responses, and
//! chunked `Transfer-Encoding` writing with trailers.
//!
//! The parser accepts exactly what the serving layer needs: a request
//! line, headers, and an optional `Content-Length` body, all under hard
//! size limits so a hostile peer cannot make a worker allocate without
//! bound. Responses always carry `Connection: close`; one connection is
//! one request, which keeps the admission-control accounting exact (an
//! admitted connection is one unit of work).

use std::io::{self, BufRead, Write};

/// Hard cap on the request line plus all headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body (`POST /sparql` query text).
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, e.g. `/explore/filter`.
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The socket failed or timed out before a full request arrived.
    Io(io::Error),
    /// The peer closed without sending anything (not an error worth a
    /// response — e.g. a health prober connecting and hanging up).
    Closed,
    /// The bytes are not a well-formed HTTP/1.1 request, with a reason.
    Malformed(&'static str),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> ParseError {
        ParseError::Io(e)
    }
}

/// Decodes `%XX` escapes; in query strings `+` additionally means space.
pub fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push(h << 4 | l);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into a decoded path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(kv, true), String::new()),
        })
        .collect();
    (percent_decode(path, false), params)
}

/// Reads one request from `reader`.
///
/// Blocks until a full head (and body, if declared) arrives, the
/// configured socket timeout fires, or a size limit trips.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    // Request line; skip leading blank lines per RFC 9112 §2.2.
    let request_line = loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ParseError::Closed);
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("request head too large"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if !trimmed.is_empty() {
            break trimmed.to_string();
        }
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed("bad request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    // Headers.
    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ParseError::Malformed("eof inside headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("request head too large"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ParseError::Malformed("bad header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // Body.
    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>());
    if let Some(parsed) = content_length {
        let len = parsed.map_err(|_| ParseError::Malformed("bad content-length"))?;
        if len > MAX_BODY_BYTES {
            return Err(ParseError::Malformed("body too large"));
        }
        body.resize(len, 0);
        reader.read_exact(&mut body)?;
    }
    let (path, query) = parse_target(target);
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
    })
}

/// Writes a complete non-chunked response and flushes it.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A chunked-transfer response in progress.
///
/// Every [`ChunkedWriter::chunk`] call flushes one HTTP chunk to the
/// socket, so the client sees bytes while the server is still producing
/// later chunks — the progressive-delivery behaviour §2 of the survey
/// asks of exploratory interfaces. Trailers declared at construction are
/// sent after the terminal chunk; the serving layer uses them to attach
/// degradation metadata that is only known once streaming ends.
pub struct ChunkedWriter<W: Write> {
    w: W,
    chunks_written: u64,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the status line and headers, declaring chunked encoding
    /// and the trailer names that [`ChunkedWriter::finish`] may send.
    /// `extra_headers` are emitted before the blank line — metadata
    /// known *before* streaming starts (trailers carry what is only
    /// known after).
    pub fn start(
        mut w: W,
        status: u16,
        reason: &str,
        content_type: &str,
        extra_headers: &[(&str, &str)],
        trailer_names: &[&str],
    ) -> io::Result<ChunkedWriter<W>> {
        write!(
            w,
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n"
        )?;
        for (k, v) in extra_headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        if !trailer_names.is_empty() {
            write!(w, "Trailer: {}\r\n", trailer_names.join(", "))?;
        }
        w.write_all(b"\r\n")?;
        w.flush()?;
        Ok(ChunkedWriter {
            w,
            chunks_written: 0,
        })
    }

    /// Emits one chunk and flushes it to the socket. Empty input is
    /// skipped (a zero-length chunk would terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()?;
        self.chunks_written += 1;
        Ok(())
    }

    /// Number of chunks emitted so far.
    pub fn chunks_written(&self) -> u64 {
        self.chunks_written
    }

    /// Terminates the stream, emitting `trailers` after the final chunk.
    pub fn finish(mut self, trailers: &[(&str, String)]) -> io::Result<()> {
        self.w.write_all(b"0\r\n")?;
        for (k, v) in trailers {
            write!(self.w, "{k}: {v}\r\n")?;
        }
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_get_with_query() {
        let raw = b"GET /explore/filter?session=s1&value=a%20b&q=x+y HTTP/1.1\r\nHost: h\r\nX-Thing: v\r\n\r\n";
        let r = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/explore/filter");
        assert_eq!(r.param("session"), Some("s1"));
        assert_eq!(r.param("value"), Some("a b"));
        assert_eq!(r.param("q"), Some("x y"));
        assert_eq!(r.header("x-thing"), Some("v"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body() {
        let raw = b"POST /sparql HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let r = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(
            read_request(&mut BufReader::new(&b"nonsense\r\n\r\n"[..])),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            read_request(&mut BufReader::new(&b""[..])),
            Err(ParseError::Closed)
        ));
        let huge = format!("GET /x HTTP/1.1\r\nA: {}\r\n\r\n", "y".repeat(32 * 1024));
        assert!(matches!(
            read_request(&mut BufReader::new(huge.as_bytes())),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn percent_decoding_edge_cases() {
        assert_eq!(percent_decode("a%2Fb", false), "a/b");
        assert_eq!(percent_decode("bad%zz", false), "bad%zz");
        assert_eq!(percent_decode("trunc%2", false), "trunc%2");
        assert_eq!(percent_decode("a+b", true), "a b");
        assert_eq!(percent_decode("a+b", false), "a+b");
    }

    #[test]
    fn simple_response_has_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "text/plain", &[("X-A", "1")], b"hi").unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.contains("X-A: 1\r\n"));
        assert!(s.ends_with("\r\n\r\nhi"));
    }

    #[test]
    fn chunked_stream_with_trailers() {
        let mut out = Vec::new();
        let mut cw = ChunkedWriter::start(
            &mut out,
            200,
            "OK",
            "application/json",
            &[("X-Extra", "e1")],
            &["X-Degraded"],
        )
        .unwrap();
        cw.chunk(b"abc").unwrap();
        cw.chunk(b"").unwrap(); // skipped, must not terminate
        cw.chunk(b"defgh").unwrap();
        assert_eq!(cw.chunks_written(), 2);
        cw.finish(&[("X-Degraded", "none".to_string())]).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Transfer-Encoding: chunked"));
        assert!(s.contains("X-Extra: e1\r\n"));
        assert!(s.contains("Trailer: X-Degraded"));
        assert!(s.contains("3\r\nabc\r\n"));
        assert!(s.contains("5\r\ndefgh\r\n"));
        assert!(s.ends_with("0\r\nX-Degraded: none\r\n\r\n"));
    }
}
