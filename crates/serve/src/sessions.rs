//! Multi-session state: tokens → [`ExplorationSession`]s.
//!
//! §2 defines exploration as a *sequence* of operations whose state lives
//! across requests; a web-facing explorer (SynopsViz, eLinda) therefore
//! needs server-side sessions. The [`SessionManager`] keys live
//! [`ExplorationSession`]s by token over **one shared graph handle** —
//! thanks to `ExplorationSession::shared`, a thousand sessions cost a
//! thousand facet engines and search indexes, never a second copy of the
//! triples. Capacity is bounded: least-recently-used sessions are evicted
//! once the cap is hit, and idle sessions past the TTL expire lazily.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use wodex_explore::ExplorationSession;
use wodex_rdf::Graph;

/// One live session plus its bookkeeping.
struct Entry {
    session: Arc<Mutex<ExplorationSession>>,
    last_used: Instant,
}

/// Counters the `/stats` endpoint reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently alive.
    pub active: usize,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions evicted by the LRU cap.
    pub evicted: u64,
    /// Sessions dropped by TTL expiry.
    pub expired: u64,
}

/// Token-keyed session store with LRU eviction and TTL expiry.
pub struct SessionManager {
    graph: Arc<Graph>,
    capacity: usize,
    ttl: Duration,
    inner: Mutex<HashMap<String, Entry>>,
    next_token: AtomicU64,
    opened: AtomicU64,
    evicted: AtomicU64,
    expired: AtomicU64,
}

impl SessionManager {
    /// A manager over one shared graph, holding at most `capacity` live
    /// sessions, each expiring after `ttl` of inactivity.
    pub fn new(graph: Arc<Graph>, capacity: usize, ttl: Duration) -> SessionManager {
        SessionManager {
            graph,
            capacity: capacity.max(1),
            ttl,
            inner: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            opened: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Opens a new session and returns its token.
    ///
    /// Builds the session's indexes *outside* the map lock, so opening a
    /// session never stalls requests on other sessions. If the store is
    /// full, the least-recently-used session is evicted.
    pub fn open(&self) -> String {
        let session = ExplorationSession::shared(Arc::clone(&self.graph));
        let token = format!("s{}", self.next_token.fetch_add(1, Ordering::Relaxed));
        let mut map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Self::sweep_expired(&mut map, self.ttl, &self.expired);
        while map.len() >= self.capacity {
            let Some(oldest) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            map.remove(&oldest);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        map.insert(
            token.clone(),
            Entry {
                session: Arc::new(Mutex::new(session)),
                last_used: Instant::now(),
            },
        );
        self.opened.fetch_add(1, Ordering::Relaxed);
        token
    }

    /// Runs `f` on the session for `token`, refreshing its LRU/TTL
    /// clock. Returns `None` for unknown (or expired) tokens.
    ///
    /// The map lock is released before `f` runs — only the one session's
    /// own mutex is held, so requests on different sessions proceed in
    /// parallel.
    pub fn with<R>(&self, token: &str, f: impl FnOnce(&mut ExplorationSession) -> R) -> Option<R> {
        let session = {
            let mut map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            Self::sweep_expired(&mut map, self.ttl, &self.expired);
            let entry = map.get_mut(token)?;
            entry.last_used = Instant::now();
            Arc::clone(&entry.session)
        };
        let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
        Some(f(&mut guard))
    }

    /// Drops every entry idle longer than the TTL.
    fn sweep_expired(map: &mut HashMap<String, Entry>, ttl: Duration, expired: &AtomicU64) {
        let now = Instant::now();
        let stale: Vec<String> = map
            .iter()
            .filter(|(_, e)| now.duration_since(e.last_used) > ttl)
            .map(|(k, _)| k.clone())
            .collect();
        for k in stale {
            map.remove(&k);
            expired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> SessionStats {
        let map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        SessionStats {
            active: map.len(),
            opened: self.opened.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::{Term, Triple};

    fn graph() -> Arc<Graph> {
        let mut g = Graph::new();
        for i in 0..10 {
            g.insert(Triple::iri(
                &format!("http://e.org/e{i}"),
                wodex_rdf::vocab::rdf::TYPE,
                Term::iri("http://e.org/Thing"),
            ));
        }
        Arc::new(g)
    }

    #[test]
    fn open_and_use_a_session() {
        let m = SessionManager::new(graph(), 8, Duration::from_secs(60));
        let t = m.open();
        let n = m.with(&t, |s| s.matching().len()).unwrap();
        assert_eq!(n, 10);
        assert!(m.with("nope", |_| ()).is_none());
        assert_eq!(m.stats().active, 1);
        assert_eq!(m.stats().opened, 1);
    }

    #[test]
    fn sessions_share_the_graph() {
        let g = graph();
        let m = SessionManager::new(Arc::clone(&g), 8, Duration::from_secs(60));
        let base = Arc::strong_count(&g);
        let a = m.open();
        let b = m.open();
        // Each session adds exactly one Arc handle — no graph clones.
        assert_eq!(Arc::strong_count(&g), base + 2);
        assert_ne!(a, b);
    }

    #[test]
    fn lru_evicts_the_coldest_session() {
        let m = SessionManager::new(graph(), 2, Duration::from_secs(60));
        let a = m.open();
        let b = m.open();
        // Touch `a` so `b` is the LRU victim.
        m.with(&a, |_| ()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let c = m.open();
        assert_eq!(m.stats().active, 2);
        assert_eq!(m.stats().evicted, 1);
        assert!(m.with(&a, |_| ()).is_some());
        assert!(m.with(&c, |_| ()).is_some());
        assert!(m.with(&b, |_| ()).is_none(), "b was least recently used");
    }

    #[test]
    fn ttl_expires_idle_sessions() {
        let m = SessionManager::new(graph(), 8, Duration::from_millis(10));
        let t = m.open();
        std::thread::sleep(Duration::from_millis(25));
        assert!(m.with(&t, |_| ()).is_none());
        assert_eq!(m.stats().expired, 1);
        assert_eq!(m.stats().active, 0);
    }

    #[test]
    fn session_state_persists_across_requests() {
        let m = SessionManager::new(graph(), 8, Duration::from_secs(60));
        let t = m.open();
        m.with(&t, |s| {
            s.filter(wodex_rdf::vocab::rdf::TYPE, "http://e.org/Thing")
        })
        .unwrap();
        let log_len = m.with(&t, |s| s.log().len()).unwrap();
        assert_eq!(log_len, 1);
    }
}
