//! Endpoint handlers.
//!
//! | Endpoint | Method | Purpose |
//! |---|---|---|
//! | `/healthz` | GET | liveness |
//! | `/stats` | GET | server + store + exec + session counters |
//! | `/sparql` | POST | budgeted query, chunked SPARQL-JSON streaming |
//! | `/data` | POST | commit an N-Triples write batch (MVCC) |
//! | `/explore/open` | GET/POST | open a session, returns its token |
//! | `/explore/subscribe` | GET | long-poll revision-stamped delta frames |
//! | `/explore/overview` | GET | class → instance counts (streamed) |
//! | `/explore/facets` | GET | facet predicates and cardinalities |
//! | `/explore/filter` | GET | apply a facet filter |
//! | `/explore/zoom` | GET | apply a numeric range restriction |
//! | `/explore/search` | GET | apply a keyword restriction |
//! | `/explore/hits` | GET | stateless ranked keyword preview |
//! | `/explore/details` | GET | resource view (details-on-demand) |
//! | `/explore/undo` | GET | undo the last operation |
//! | `/explore/trace` | GET | the session narrative (text) |
//! | `/viz/recommend` | GET | ranked chart recommendations |
//! | `/viz/chart` | GET | budgeted LDVM pipeline → SVG |
//! | `/viz/hist` | GET | budgeted histogram, bins streamed |
//! | `/shard/scan` | GET | worker-mode pattern scan, N-Triples streamed |
//! | `/shard/health` | GET | worker-mode shard placement + size |
//! | `/admin/shutdown` | POST | graceful stop |
//!
//! Degraded (budget-tripped) answers are **not** errors: `/sparql` and
//! `/viz/hist` report them in HTTP trailers after the streamed body
//! (`X-Wodex-Degraded`, `X-Wodex-Rows`), `/viz/chart` in a response
//! header — the body stays a well-formed partial answer.
//!
//! **Two stores serve this table.** `POST /data`, `/sparql` (outside
//! coordinator mode), and `GET /explore/subscribe` run on the MVCC
//! [`LiveStore`](wodex_store::LiveStore) and see every commit. The
//! exploration sessions (`/explore/open` through `/explore/trace`) and
//! the viz endpoints serve the **bind-time** explorer graph — faceting
//! indexes, search indexes, and session state are precomputed over it
//! and are *not* re-derived per commit, so a write is visible to
//! `/sparql` and the subscribe feed immediately but not to an open
//! exploration session. `/healthz` reports both stores' triple counts
//! distinctly. Folding live snapshots into the exploration engines is
//! the open item tracked in ROADMAP.md.

use crate::http::{read_request, write_response, ChunkedWriter, ParseError, Request};
use crate::server::{wake, AppState};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;
use wodex_rdf::{Term, Value};
use wodex_sparql::results::json_string as js;
use wodex_sparql::{Budget, Degraded, EvalOptions, QueryResult, QueryTrace, Stage};

/// Entries per chunk when streaming overview rows / histogram bins.
const STREAM_GROUP: usize = 16;

/// Serves one connection: parse, route, respond, close.
pub(crate) fn handle(state: &AppState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut out = stream;
    match read_request(&mut reader) {
        Ok(req) => route(state, &req, &mut out),
        Err(ParseError::Malformed(why)) => {
            state.counters.inc_bad_request();
            error_json(&mut out, 400, "Bad Request", why);
        }
        // Peer closed early or the read timed out: nothing to answer.
        Err(ParseError::Closed) | Err(ParseError::Io(_)) => {}
    }
    let _ = out.shutdown(std::net::Shutdown::Both);
}

fn route(state: &AppState, req: &Request, out: &mut TcpStream) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state, out),
        ("GET", "/stats") => stats(state, out),
        ("GET", "/metrics") => metrics(out),
        ("POST", "/sparql") => sparql(state, req, out),
        ("POST", "/data") => data_commit(state, req, out),
        ("GET", "/explore/open") | ("POST", "/explore/open") => explore_open(state, out),
        ("GET", "/explore/subscribe") => explore_subscribe(state, req, out),
        ("GET", "/explore/overview") => explore_overview(state, req, out),
        ("GET", "/explore/facets") => explore_facets(state, req, out),
        ("GET", "/explore/filter") => explore_filter(state, req, out),
        ("GET", "/explore/zoom") => explore_zoom(state, req, out),
        ("GET", "/explore/search") => explore_search(state, req, out),
        ("GET", "/explore/hits") => explore_hits(state, req, out),
        ("GET", "/explore/details") => explore_details(state, req, out),
        ("GET", "/explore/undo") => explore_undo(state, req, out),
        ("GET", "/explore/trace") => explore_trace(state, req, out),
        ("GET", "/viz/recommend") => viz_recommend(state, req, out),
        ("GET", "/viz/chart") => viz_chart(state, req, out),
        ("GET", "/viz/hist") => viz_hist(state, req, out),
        ("GET", "/shard/scan") => shard_scan(state, req, out),
        ("GET", "/shard/health") => shard_health(state, out),
        ("POST", "/admin/shutdown") => admin_shutdown(state, out),
        _ => {
            state.counters.inc_not_found();
            error_json(out, 404, "Not Found", "no such endpoint");
        }
    }
}

/// Writes `{"error": why}` with the given status.
fn error_json(out: &mut TcpStream, status: u16, reason: &str, why: &str) {
    let body = format!("{{\"error\":{}}}", js(why));
    let _ = write_response(
        out,
        status,
        reason,
        "application/json",
        &[],
        body.as_bytes(),
    );
}

fn bad_request(state: &AppState, out: &mut TcpStream, why: &str) {
    state.counters.inc_bad_request();
    error_json(out, 400, "Bad Request", why);
}

/// The per-request budget: the config's deadline/row cap, optionally
/// tightened (never widened) by `deadline_ms` / `row_cap` parameters.
fn request_budget(state: &AppState, req: &Request) -> Budget {
    let cfg = &state.cfg;
    let deadline = req
        .param("deadline_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .map_or(cfg.deadline, |d| d.min(cfg.deadline));
    let rows = req
        .param("row_cap")
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(cfg.row_cap, |r| {
            if cfg.row_cap == 0 {
                r
            } else {
                r.min(cfg.row_cap)
            }
        });
    let mut b = Budget::unlimited().with_deadline(deadline);
    if rows > 0 {
        b = b.with_row_cap(rows);
    }
    b
}

/// The trailer value describing how (or whether) a response degraded.
fn degraded_trailer(d: &Option<Degraded>) -> String {
    match d {
        None => "none".to_string(),
        Some(d) => format!("{};coverage={:.3}", d.reason, d.coverage),
    }
}

/// A finite float for JSON (`null` when not representable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// `GET /healthz` — liveness plus the shape of *both* stores: the
/// bind-time explorer graph (what `/explore/*` and `/viz/*` serve) and
/// the live MVCC store (what `/sparql`, `POST /data`, and the subscribe
/// feed see), reported distinctly so the counts never read as one
/// dataset when writes have made them diverge.
fn healthz(state: &AppState, out: &mut TcpStream) {
    let snap = state.live.snapshot();
    let body = format!(
        concat!(
            "{{\"status\":\"ok\",\"explorer_triples\":{},",
            "\"live_triples\":{},\"revision\":{},\"uptime_ms\":{}}}"
        ),
        state.explorer.store().len(),
        snap.store().len(),
        snap.revision(),
        state.started.elapsed().as_millis()
    );
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

/// `GET /metrics` — the process-wide registry in Prometheus text
/// exposition format 0.0.4. One scrape covers every layer that has run
/// in this process (serve, exec, store, sparql, explore, retry).
fn metrics(out: &mut TcpStream) {
    let body = wodex_obs::render_prometheus(wodex_obs::global());
    let _ = write_response(
        out,
        200,
        "OK",
        "text/plain; version=0.0.4; charset=utf-8",
        &[],
        body.as_bytes(),
    );
}

/// The `/stats` fragment describing this process's place in a shard
/// topology: worker placement, or per-shard fleet health (breaker
/// state, open/shed counts, observed p95) in coordinator mode.
fn topology_json(state: &AppState) -> String {
    if let Some(coord) = &state.coordinator {
        let shards = coord
            .health()
            .iter()
            .map(|h| {
                format!(
                    concat!(
                        "{{\"index\":{},\"addr\":{},\"breaker\":{},",
                        "\"consecutive_failures\":{},\"opens\":{},\"sheds\":{},",
                        "\"p95_ms\":{},\"samples\":{}}}"
                    ),
                    h.index,
                    js(&h.addr),
                    js(h.breaker.state.name()),
                    h.breaker.consecutive_failures,
                    h.breaker.opens,
                    h.breaker.sheds,
                    h.p95_ms.map_or("null".to_string(), json_f64),
                    h.samples
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        return format!("\"shards\":[{shards}],");
    }
    match state.cfg.shard {
        Some((k, n)) => format!("\"shard\":{{\"index\":{k},\"of\":{n}}},"),
        None => String::new(),
    }
}

fn stats(state: &AppState, out: &mut TcpStream) {
    let c = &state.counters;
    let s = state.sessions.stats();
    let x = wodex_exec::stats();
    let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    // Decoded-block cache series, read through the registry so the
    // serving layer needs no dependency on the segment crate. Zero when
    // the store is not seg-backed (the series never registers).
    let cv = wodex_obs::global().counter_values();
    let gv = wodex_obs::global().gauge_values();
    let segcache = |name: &str| cv.get(name).copied().unwrap_or(0);
    let body = format!(
        concat!(
            "{{\"requests\":{{\"accepted\":{},\"admitted\":{},\"completed\":{},",
            "\"shed_queue_full\":{},\"shed_queue_wait\":{},\"bad_requests\":{},",
            "\"not_found\":{},\"degraded\":{},\"inflight\":{}}},",
            "\"sessions\":{{\"active\":{},\"opened\":{},\"evicted\":{},\"expired\":{}}},",
            "\"store\":{{\"triples\":{},\"subjects\":{},\"predicates\":{}}},",
            "\"exec\":{{\"map_calls\":{},\"map_items\":{},\"fold_calls\":{}}},",
            "\"segcache\":{{\"lookups\":{},\"hits\":{},\"misses\":{},",
            "\"evictions\":{},\"bytes\":{}}},",
            "\"config\":{{\"workers\":{},\"queue_depth\":{},\"deadline_ms\":{},\"row_cap\":{}}},",
            "{}\"uptime_ms\":{}}}"
        ),
        load(&c.accepted),
        load(&c.admitted),
        load(&c.completed),
        load(&c.shed_queue_full),
        load(&c.shed_queue_wait),
        load(&c.bad_requests),
        load(&c.not_found),
        load(&c.degraded),
        state.inflight.load(Ordering::Relaxed),
        s.active,
        s.opened,
        s.evicted,
        s.expired,
        state.dataset.triples,
        state.dataset.subjects,
        state.dataset.predicates,
        x.map.calls,
        x.map.items,
        x.fold.calls,
        segcache("wodex_segcache_lookups_total"),
        segcache("wodex_segcache_hits_total"),
        segcache("wodex_segcache_misses_total"),
        segcache("wodex_segcache_evictions_total"),
        gv.get("wodex_segcache_bytes").copied().unwrap_or(0),
        state.cfg.effective_workers(),
        state.cfg.queue_depth,
        state.cfg.deadline.as_millis(),
        state.cfg.row_cap,
        topology_json(state),
        state.started.elapsed().as_millis()
    );
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

/// `POST /sparql` — evaluates the body (or `query` parameter) under the
/// request budget and streams the SPARQL 1.1 JSON result in chunks:
/// first the head, then `stream_rows`-sized groups of solution rows,
/// then the tail, then trailers carrying the degradation verdict. The
/// reassembled body is byte-identical to `QueryResult::to_json`.
///
/// An optional `engine` parameter selects the evaluation path —
/// `wco` (the default: planner + multiway joins on cyclic groups),
/// `pairwise` (planner only), or `greedy` (the reference engine) —
/// useful for A/B-ing plans in place; the engines answer identically.
///
/// Outside coordinator mode the query runs against the live store's
/// current MVCC snapshot; the `X-Wodex-Revision` response header names
/// the revision the answer is pinned to.
fn sparql(state: &AppState, req: &Request, out: &mut TcpStream) {
    let text = if req.body.is_empty() {
        req.param("query").unwrap_or("").to_string()
    } else {
        String::from_utf8_lossy(&req.body).into_owned()
    };
    if text.trim().is_empty() {
        bad_request(state, out, "empty query (send it as the POST body)");
        return;
    }
    let opts = match req.param("engine").unwrap_or("wco") {
        "wco" => EvalOptions::default(),
        "pairwise" => EvalOptions {
            use_planner: true,
            use_wco: false,
        },
        "greedy" => EvalOptions {
            use_planner: false,
            use_wco: false,
        },
        other => {
            bad_request(
                state,
                out,
                &format!("unknown engine {other:?} (expected wco, pairwise, or greedy)"),
            );
            return;
        }
    };
    let budget = request_budget(state, req);
    let trace = QueryTrace::new();
    // Coordinator mode scatter-gathers across the shard fleet; the
    // local path pins an MVCC snapshot and evaluates against its frozen
    // store, so a query never observes a concurrent commit and its
    // plans stay cached under the snapshot's revision. Both paths
    // converge on (result, degraded) and stream identically, the
    // coordinator adding a per-shard report trailer.
    let (result, degraded, shard_wire, revision) = if let Some(coord) = &state.coordinator {
        match coord.query_traced_with(&text, &budget, &trace, opts) {
            Ok(c) => {
                let wire = c
                    .shards
                    .iter()
                    .map(|r| r.wire())
                    .collect::<Vec<_>>()
                    .join(",");
                (c.result, c.degraded, Some(wire), None)
            }
            Err(e) => {
                bad_request(state, out, &e.to_string());
                return;
            }
        }
    } else {
        let snap = state.live.snapshot();
        match wodex_sparql::query_traced_with(snap.store(), &text, &budget, &trace, opts) {
            Ok(b) => (b.result, b.degraded, None, Some(snap.revision())),
            Err(e) => {
                bad_request(state, out, &e.to_string());
                return;
            }
        }
    };
    if degraded.is_some() {
        state.counters.inc_degraded();
    }
    // The engine stages are done, so their timings can ride a response
    // header; serialization is still ahead and rides a trailer. Planned
    // queries additionally report per-step estimated vs. actual rows.
    let trace_header = trace.header_value();
    let plan_header = trace
        .plan_steps()
        .iter()
        .map(|s| format!("{}:est={}:act={}", s.op, s.est_rows, s.actual_rows))
        .collect::<Vec<_>>()
        .join(",");
    let revision_header = revision.map(|r| r.to_string());
    let mut headers: Vec<(&str, &str)> = vec![("X-Wodex-Trace", trace_header.as_str())];
    if !plan_header.is_empty() {
        headers.push(("X-Wodex-Plan", plan_header.as_str()));
    }
    if let Some(r) = revision_header.as_deref() {
        headers.push(("X-Wodex-Revision", r));
    }
    let mut trailers = vec![
        "X-Wodex-Degraded",
        "X-Wodex-Rows",
        "X-Wodex-Trace-Serialize",
    ];
    if shard_wire.is_some() {
        trailers.push("X-Wodex-Shards");
    }
    let Ok(mut cw) = ChunkedWriter::start(
        &mut *out,
        200,
        "OK",
        "application/json",
        &headers,
        &trailers,
    ) else {
        return;
    };
    let serialize_span = trace.span(Stage::Serialize);
    let rows_sent: usize;
    let write_ok = match &result {
        QueryResult::Solutions(t) => {
            rows_sent = t.len();
            stream_table(&mut cw, t, state.cfg.stream_rows)
        }
        other => {
            rows_sent = 0;
            cw.chunk(other.to_json().as_bytes())
        }
    };
    drop(serialize_span);
    trace.add_items(Stage::Serialize, rows_sent as u64);
    if write_ok.is_ok() {
        let mut finals = vec![
            ("X-Wodex-Degraded", degraded_trailer(&degraded)),
            ("X-Wodex-Rows", rows_sent.to_string()),
            (
                "X-Wodex-Trace-Serialize",
                format!("{}us", trace.stage_nanos(Stage::Serialize) / 1_000),
            ),
        ];
        if let Some(wire) = shard_wire {
            finals.push(("X-Wodex-Shards", wire));
        }
        let _ = cw.finish(&finals);
    }
}

/// Streams a solution table as head / row-group / tail chunks.
fn stream_table(
    cw: &mut ChunkedWriter<&mut TcpStream>,
    t: &wodex_sparql::SolutionTable,
    group: usize,
) -> std::io::Result<()> {
    cw.chunk(t.json_head().as_bytes())?;
    let group = group.max(1);
    let mut buf = String::new();
    for start in (0..t.len()).step_by(group) {
        buf.clear();
        for i in start..(start + group).min(t.len()) {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str(&t.json_row(i));
        }
        cw.chunk(buf.as_bytes())?;
    }
    cw.chunk(t.json_tail().as_bytes())
}

/// `POST /data` — parses the body as N-Triples and commits it to the
/// live store as one atomic write batch (`action=delete` removes the
/// listed triples instead of adding them). Readers holding snapshots
/// are unaffected; the response carries the revision the commit
/// published and the *effective* change counts (inserting a present
/// triple or deleting an absent one counts zero). A batch with no
/// effective change publishes nothing and answers with the unchanged
/// head revision.
fn data_commit(state: &AppState, req: &Request, out: &mut TcpStream) {
    let text = String::from_utf8_lossy(&req.body).into_owned();
    if text.trim().is_empty() {
        bad_request(state, out, "empty body (send N-Triples)");
        return;
    }
    let graph = match wodex_rdf::ntriples::parse(&text) {
        Ok(g) => g,
        Err(e) => {
            bad_request(state, out, &format!("bad N-Triples: {e}"));
            return;
        }
    };
    let delete = match req.param("action") {
        None | Some("insert") => false,
        Some("delete") => true,
        Some(other) => {
            bad_request(
                state,
                out,
                &format!("unknown action {other:?} (expected insert or delete)"),
            );
            return;
        }
    };
    let mut batch = wodex_store::WriteBatch::new();
    for t in graph.iter() {
        if delete {
            batch.delete(t.clone());
        } else {
            batch.insert(t.clone());
        }
    }
    match state.live.commit(&batch) {
        Ok(outcome) => {
            let body = format!(
                "{{\"revision\":{},\"inserts\":{},\"deletes\":{}}}",
                outcome.snapshot.revision(),
                outcome.frame.inserts.len(),
                outcome.frame.deletes.len()
            );
            let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
        }
        // A write-ahead failure aborts the commit with the snapshot
        // unchanged; surface it as a server error, not a bad request.
        Err(e) => error_json(out, 500, "Internal Server Error", &e.to_string()),
    }
}

/// `GET /explore/subscribe?since=R&wait_ms=W` — the server-push feed.
/// Answers with every delta frame committed after revision `since`
/// (oldest first), each frame's effective inserts/deletes decoded to
/// N-Triples strings. With `wait_ms` the request long-polls: it blocks
/// (bounded by the cap below) until a newer frame is published, so a
/// subscriber loop sees each commit without busy-polling. When the
/// bounded frame history no longer reaches back to `since` — or
/// `since` runs ahead of the head, as happens to a cursor held across
/// a server restart — `"resync":true` tells the subscriber to refetch
/// from a fresh snapshot instead of applying frames.
fn explore_subscribe(state: &AppState, req: &Request, out: &mut TcpStream) {
    let since = match req.param("since").map(str::parse::<u64>) {
        None => 0,
        Some(Ok(r)) => r,
        Some(Err(_)) => {
            bad_request(state, out, "since must be a revision number");
            return;
        }
    };
    // The long-poll holds a worker, so the wait is capped well under
    // the socket write timeout; clients re-poll from the returned head.
    let wait_ms = req
        .param("wait_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
        .min(10_000);
    let fs = if wait_ms > 0 {
        state
            .live
            .wait_for_frames(since, Duration::from_millis(wait_ms))
    } else {
        state.live.frames_since(since)
    };
    // Decode against the head snapshot: the id space only ever grows,
    // so the newest dictionary covers every frame in the history.
    let snap = state.live.snapshot();
    let nt = |ts: &[wodex_store::EncodedTriple]| -> String {
        ts.iter()
            .map(|&t| js(&snap.store().decode(t).to_string()))
            .collect::<Vec<_>>()
            .join(",")
    };
    let Ok(mut cw) = ChunkedWriter::start(&mut *out, 200, "OK", "application/json", &[], &[])
    else {
        return;
    };
    let _ = cw.chunk(
        format!(
            "{{\"revision\":{},\"resync\":{},\"frames\":[",
            fs.revision, fs.resync
        )
        .as_bytes(),
    );
    let mut ok = true;
    for (i, frame) in fs.frames.iter().enumerate() {
        let chunk = format!(
            "{}{{\"revision\":{},\"inserts\":[{}],\"deletes\":[{}]}}",
            if i > 0 { "," } else { "" },
            frame.revision,
            nt(&frame.inserts),
            nt(&frame.deletes)
        );
        if cw.chunk(chunk.as_bytes()).is_err() {
            ok = false;
            break;
        }
    }
    if ok {
        let _ = cw.chunk(format!("],\"count\":{}}}", fs.frames.len()).as_bytes());
        let _ = cw.finish(&[]);
    }
}

fn explore_open(state: &AppState, out: &mut TcpStream) {
    let token = state.sessions.open();
    let body = format!("{{\"session\":{}}}", js(&token));
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

/// Resolves the `session` parameter, answering 400/404 on failure.
fn with_session<R>(
    state: &AppState,
    req: &Request,
    out: &mut TcpStream,
    f: impl FnOnce(&mut wodex_explore::ExplorationSession) -> R,
) -> Option<R> {
    let Some(token) = req.param("session") else {
        bad_request(state, out, "missing session parameter");
        return None;
    };
    match state.sessions.with(token, f) {
        Some(r) => Some(r),
        None => {
            state.counters.inc_not_found();
            error_json(out, 404, "Not Found", "unknown or expired session");
            None
        }
    }
}

/// `GET /explore/overview` — class sizes, streamed progressively so the
/// first classes render before the tail of a wide ontology arrives.
fn explore_overview(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(overview) = with_session(state, req, out, |s| s.overview()) else {
        return;
    };
    let Ok(mut cw) = ChunkedWriter::start(&mut *out, 200, "OK", "application/json", &[], &[])
    else {
        return;
    };
    let _ = cw.chunk(b"{\"classes\":[");
    let mut buf = String::new();
    let mut ok = true;
    for (gi, group) in overview.chunks(STREAM_GROUP).enumerate() {
        buf.clear();
        for (i, (class, count)) in group.iter().enumerate() {
            if gi > 0 || i > 0 {
                buf.push(',');
            }
            buf.push_str(&format!("{{\"class\":{},\"count\":{count}}}", js(class)));
        }
        if cw.chunk(buf.as_bytes()).is_err() {
            ok = false;
            break;
        }
    }
    if ok {
        let _ = cw.chunk(format!("],\"total\":{}}}", overview.len()).as_bytes());
        let _ = cw.finish(&[]);
    }
}

fn explore_facets(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(body) = with_session(state, req, out, |s| {
        let mut parts = Vec::new();
        for f in s.facets().facets() {
            parts.push(format!(
                "{{\"predicate\":{},\"cardinality\":{}}}",
                js(&f.predicate),
                f.cardinality
            ));
        }
        format!("{{\"facets\":[{}]}}", parts.join(","))
    }) else {
        return;
    };
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

/// The `{matching, operations}` summary every mutating session op returns.
fn session_summary(s: &mut wodex_explore::ExplorationSession) -> String {
    format!(
        "{{\"matching\":{},\"operations\":{}}}",
        s.matching().len(),
        s.log().len()
    )
}

fn explore_filter(state: &AppState, req: &Request, out: &mut TcpStream) {
    let (Some(predicate), Some(value)) = (req.param("predicate"), req.param("value")) else {
        bad_request(state, out, "need predicate and value parameters");
        return;
    };
    let (predicate, value) = (predicate.to_string(), value.to_string());
    let Some(body) = with_session(state, req, out, move |s| {
        s.filter(&predicate, &value);
        session_summary(s)
    }) else {
        return;
    };
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

fn explore_zoom(state: &AppState, req: &Request, out: &mut TcpStream) {
    let (Some(predicate), Some(lo), Some(hi)) = (
        req.param("predicate"),
        req.param("lo").and_then(|v| v.parse::<f64>().ok()),
        req.param("hi").and_then(|v| v.parse::<f64>().ok()),
    ) else {
        bad_request(state, out, "need predicate, numeric lo and hi parameters");
        return;
    };
    let predicate = predicate.to_string();
    let Some(body) = with_session(state, req, out, move |s| {
        s.zoom(&predicate, lo, hi);
        session_summary(s)
    }) else {
        return;
    };
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

fn explore_search(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(q) = req.param("q") else {
        bad_request(state, out, "need a q parameter");
        return;
    };
    let q = q.to_string();
    let Some(body) = with_session(state, req, out, move |s| {
        s.search(&q);
        session_summary(s)
    }) else {
        return;
    };
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

fn explore_hits(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(q) = req.param("q") else {
        bad_request(state, out, "need a q parameter");
        return;
    };
    let limit = req
        .param("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(10)
        .min(1000);
    let q = q.to_string();
    let Some(body) = with_session(state, req, out, move |s| {
        let mut parts = Vec::new();
        for h in s.search_preview(&q, limit) {
            parts.push(format!(
                "{{\"subject\":{},\"score\":{}}}",
                js(&h.subject.to_string()),
                json_f64(h.score)
            ));
        }
        format!("{{\"hits\":[{}]}}", parts.join(","))
    }) else {
        return;
    };
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

fn explore_details(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(iri) = req.param("iri") else {
        bad_request(state, out, "need an iri parameter");
        return;
    };
    let resource = Term::iri(iri.to_string());
    let Some(body) = with_session(state, req, out, move |s| {
        let v = s.details(&resource);
        let mut rows = Vec::new();
        for r in &v.rows {
            rows.push(format!(
                "{{\"predicate\":{},\"value\":{},\"forward\":{}}}",
                js(&r.predicate),
                js(&r.value.to_string()),
                r.forward
            ));
        }
        format!(
            "{{\"resource\":{},\"label\":{},\"rows\":[{}]}}",
            js(&v.resource.to_string()),
            v.label.as_deref().map_or("null".to_string(), js),
            rows.join(",")
        )
    }) else {
        return;
    };
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

fn explore_undo(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(body) = with_session(state, req, out, |s| {
        let undone = s.undo().map(|op| op.to_string());
        format!(
            "{{\"undone\":{},\"matching\":{}}}",
            undone.as_deref().map_or("null".to_string(), js),
            s.matching().len()
        )
    }) else {
        return;
    };
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

fn explore_trace(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(body) = with_session(state, req, out, |s| s.trace()) else {
        return;
    };
    let _ = write_response(out, 200, "OK", "text/plain", &[], body.as_bytes());
}

fn viz_recommend(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(predicate) = req.param("predicate") else {
        bad_request(state, out, "need a predicate parameter");
        return;
    };
    let mut parts = Vec::new();
    for r in state.explorer.recommend(predicate) {
        parts.push(format!(
            "{{\"kind\":{},\"score\":{},\"reason\":{}}}",
            js(r.kind.name()),
            json_f64(r.score),
            js(&r.reason)
        ));
    }
    let body = format!("{{\"recommendations\":[{}]}}", parts.join(","));
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

/// `GET /viz/chart` — the LDVM pipeline under the request budget; the
/// degradation verdict rides a response header (it is known before the
/// SVG is written).
fn viz_chart(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(predicate) = req.param("predicate") else {
        bad_request(state, out, "need a predicate parameter");
        return;
    };
    let budget = request_budget(state, req);
    let (view, degraded) = state.explorer.visualize_budgeted(predicate, &budget);
    if degraded.is_some() {
        state.counters.inc_degraded();
    }
    let verdict = degraded_trailer(&degraded);
    let _ = write_response(
        out,
        200,
        "OK",
        "image/svg+xml",
        &[
            ("X-Wodex-Degraded", verdict.as_str()),
            ("X-Wodex-Chart", view.kind.name()),
        ],
        view.svg.as_bytes(),
    );
}

/// `GET /viz/hist` — histogram bins, streamed as they are serialized;
/// under budget pressure the histogram covers the scanned prefix and the
/// trailer reports the coverage.
fn viz_hist(state: &AppState, req: &Request, out: &mut TcpStream) {
    let Some(predicate) = req.param("predicate") else {
        bad_request(state, out, "need a predicate parameter");
        return;
    };
    let bins = req
        .param("bins")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16)
        .clamp(1, 256);
    let budget = request_budget(state, req);
    let mut values = Vec::new();
    let mut scanned = 0usize;
    let mut tripped = None;
    for t in state.explorer.graph().triples_for_predicate(predicate) {
        if let Some(reason) = budget.exceeded() {
            tripped = Some(reason);
            break;
        }
        scanned += 1;
        budget.charge_rows(1);
        if let Some(x) = t
            .object
            .as_literal()
            .map(Value::from_literal)
            .and_then(|v| {
                v.as_f64()
                    .or_else(|| v.as_epoch_seconds().map(|s| s as f64))
            })
        {
            values.push(x);
        }
    }
    let total = state
        .explorer
        .graph()
        .triples_for_predicate(predicate)
        .count();
    let degraded = tripped.map(|reason| Degraded {
        reason,
        coverage: if total == 0 {
            1.0
        } else {
            scanned as f64 / total as f64
        },
    });
    if degraded.is_some() {
        state.counters.inc_degraded();
    }
    let hist = wodex_approx::binning::Histogram::build(
        &values,
        bins,
        wodex_approx::binning::BinningStrategy::EqualWidth,
    );
    let trailers = ["X-Wodex-Degraded", "X-Wodex-Rows"];
    let Ok(mut cw) = ChunkedWriter::start(&mut *out, 200, "OK", "application/json", &[], &trailers)
    else {
        return;
    };
    let _ = cw.chunk(format!("{{\"predicate\":{},\"bins\":[", js(predicate)).as_bytes());
    let mut buf = String::new();
    let mut ok = true;
    for (gi, group) in hist.bins.chunks(STREAM_GROUP).enumerate() {
        buf.clear();
        for (i, b) in group.iter().enumerate() {
            if gi > 0 || i > 0 {
                buf.push(',');
            }
            let mean = if b.count > 0 {
                b.sum / b.count as f64
            } else {
                f64::NAN
            };
            buf.push_str(&format!(
                "{{\"lo\":{},\"hi\":{},\"count\":{},\"mean\":{}}}",
                json_f64(b.lo),
                json_f64(b.hi),
                b.count,
                json_f64(mean)
            ));
        }
        if cw.chunk(buf.as_bytes()).is_err() {
            ok = false;
            break;
        }
    }
    if ok {
        let _ = cw.chunk(format!("],\"values\":{}}}", values.len()).as_bytes());
        let _ = cw.finish(&[
            ("X-Wodex-Degraded", degraded_trailer(&degraded)),
            ("X-Wodex-Rows", values.len().to_string()),
        ]);
    }
}

/// `GET /shard/scan` — worker-mode single-pattern scan. `s`, `p`, `o`
/// are optional percent-encoded N-Triples terms (absent = wildcard);
/// the matches stream back as N-Triples lines under the request budget
/// (`deadline_ms`, `row_cap`), with the degradation verdict and row
/// count in trailers — the same sound-partial contract as `/sparql`,
/// one layer down. The coordinator's [`wodex_shard::ShardClient`] is
/// the intended caller, but the endpoint is plain HTTP.
fn shard_scan(state: &AppState, req: &Request, out: &mut TcpStream) {
    let term = |name: &str| -> Result<Option<Term>, String> {
        match req.param(name) {
            None | Some("") => Ok(None),
            Some(v) => wodex_rdf::ntriples::parse_term(v)
                .map(Some)
                .map_err(|e| format!("bad {name} term: {e}")),
        }
    };
    let (s, p, o) = match (term("s"), term("p"), term("o")) {
        (Ok(s), Ok(p), Ok(o)) => (s, p, o),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
            bad_request(state, out, &e);
            return;
        }
    };
    let budget = request_budget(state, req);
    // Chaos-test fault injection: a stalled shard is a slow scan.
    if !state.cfg.scan_delay.is_zero() {
        std::thread::sleep(state.cfg.scan_delay);
    }
    // A constant missing from this shard's dictionary matches nothing —
    // an empty answer with full coverage, not an error.
    let store = state.explorer.store();
    let pat = store.encode_pattern(s.as_ref(), p.as_ref(), o.as_ref());
    let trailers = ["X-Wodex-Degraded", "X-Wodex-Rows"];
    let Ok(mut cw) = ChunkedWriter::start(
        &mut *out,
        200,
        "OK",
        "application/n-triples",
        &[],
        &trailers,
    ) else {
        return;
    };
    let mut sent = 0usize;
    let mut tripped = None;
    let mut buf = String::new();
    let mut ok = true;
    if let Some(pat) = pat {
        // Matches stream chunk-by-chunk straight out of the store (from
        // cached segment blocks when seg-backed) — the full match set
        // is never materialized, and a tripped budget stops the scan at
        // chunk granularity.
        store.match_pattern_chunks(pat, &mut |chunk| {
            for group in chunk.chunks(STREAM_GROUP) {
                buf.clear();
                for t in group {
                    if let Some(reason) = budget.exceeded() {
                        tripped = Some(reason);
                        break;
                    }
                    budget.charge_rows(1);
                    buf.push_str(&format!("{}\n", store.decode(*t)));
                    sent += 1;
                }
                if !buf.is_empty() && cw.chunk(buf.as_bytes()).is_err() {
                    ok = false;
                }
                if tripped.is_some() || !ok {
                    return false;
                }
            }
            true
        });
    }
    let degraded = tripped.map(|reason| Degraded {
        reason,
        // The denominator comes from the count path (no
        // materialization) only when the scan actually tripped.
        coverage: match pat.map(|p| store.count_pattern(p)) {
            None | Some(0) => 1.0,
            Some(total) => sent as f64 / total as f64,
        },
    });
    if degraded.is_some() {
        state.counters.inc_degraded();
    }
    if ok {
        let _ = cw.finish(&[
            ("X-Wodex-Degraded", degraded_trailer(&degraded)),
            ("X-Wodex-Rows", sent.to_string()),
        ]);
    }
}

/// `GET /shard/health` — worker-mode placement and size, for fleet
/// bring-up checks (`"shard":null` when not running as a shard).
fn shard_health(state: &AppState, out: &mut TcpStream) {
    let placement = match state.cfg.shard {
        Some((k, n)) => format!("{{\"index\":{k},\"of\":{n}}}"),
        None => "null".to_string(),
    };
    let body = format!(
        "{{\"shard\":{placement},\"triples\":{}}}",
        state.explorer.store().len()
    );
    let _ = write_response(out, 200, "OK", "application/json", &[], body.as_bytes());
}

/// `POST /admin/shutdown` — acknowledges, then flags the accept loop and
/// wakes it. In-flight and queued requests still complete (the worker
/// pool drains before `Server::run` returns).
fn admin_shutdown(state: &AppState, out: &mut TcpStream) {
    let body = b"{\"status\":\"shutting down\"}";
    let _ = write_response(out, 200, "OK", "application/json", &[], body);
    state.shutdown.store(true, Ordering::SeqCst);
    wake(state.local_addr);
}
