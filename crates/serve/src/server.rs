//! The server: accept loop, bounded worker pool, admission control.
//!
//! ## Threading model
//!
//! One accept thread plus a fixed pool of worker threads connected by a
//! bounded [`wodex_exec::channel`]. The channel *is* the admission
//! queue: its capacity is the only place a waiting connection can exist,
//! so memory under overload is bounded by construction.
//!
//! ## Admission control
//!
//! Two gates, both of which shed with `503 Service Unavailable` +
//! `Retry-After` instead of queueing without bound:
//!
//! 1. **Queue depth** — the accept thread `try_send`s each connection;
//!    a full queue means every worker is busy and the backlog is at
//!    capacity, so the connection is refused immediately (the accept
//!    thread never blocks on a slow pipeline).
//! 2. **Queue deadline** — a worker that dequeues a connection which
//!    already waited longer than `max_queue_wait` sheds it rather than
//!    serving a request whose client has likely given up (the classic
//!    overload spiral of serving only dead requests).
//!
//! Admitted requests then run under a `wodex_resilience::Budget`
//! (deadline + row cap), so one expensive query degrades to a partial
//! answer rather than occupying a worker indefinitely.

use crate::handlers;
use crate::sessions::SessionManager;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};
use wodex_core::Explorer;
use wodex_exec::channel::{self, TrySendError};
use wodex_obs::{Counter, Histogram};
use wodex_store::{LiveStore, Pattern, TripleStore};

/// Global-registry handles for the serving layer. The per-instance
/// [`Counters`] stay authoritative for `/stats` and the admission tests;
/// these series feed the `/metrics` exposition, where every server in
/// the process aggregates into one scrape.
pub(crate) struct ServeMetrics {
    pub(crate) accepted: Arc<Counter>,
    pub(crate) admitted: Arc<Counter>,
    pub(crate) served: Arc<Counter>,
    pub(crate) shed_queue_full: Arc<Counter>,
    pub(crate) shed_queue_wait: Arc<Counter>,
    pub(crate) shed_shutdown: Arc<Counter>,
    pub(crate) bad_requests: Arc<Counter>,
    pub(crate) not_found: Arc<Counter>,
    pub(crate) degraded: Arc<Counter>,
    pub(crate) queue_wait: Arc<Histogram>,
    pub(crate) request_seconds: Arc<Histogram>,
}

pub(crate) fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        ServeMetrics {
            accepted: r.counter(
                "wodex_serve_accepted_total",
                "Connections accepted by the listener",
            ),
            admitted: r.counter(
                "wodex_serve_admitted_total",
                "Connections handed to the worker pool",
            ),
            served: r.counter(
                "wodex_serve_served_total",
                "Requests fully served (any status)",
            ),
            shed_queue_full: r.counter_with(
                "wodex_serve_shed_total",
                "Connections shed with 503 by admission gate",
                &[("gate", "queue_full")],
            ),
            shed_queue_wait: r.counter_with(
                "wodex_serve_shed_total",
                "Connections shed with 503 by admission gate",
                &[("gate", "queue_wait")],
            ),
            shed_shutdown: r.counter_with(
                "wodex_serve_shed_total",
                "Connections shed with 503 by admission gate",
                &[("gate", "shutdown")],
            ),
            bad_requests: r.counter("wodex_serve_bad_requests_total", "400 responses"),
            not_found: r.counter("wodex_serve_not_found_total", "404 responses"),
            degraded: r.counter(
                "wodex_serve_degraded_total",
                "Responses whose budget tripped (partial answers)",
            ),
            queue_wait: r.duration_histogram(
                "wodex_serve_queue_wait_seconds",
                "Time an admitted connection waited for a worker",
                &[],
            ),
            request_seconds: r.duration_histogram(
                "wodex_serve_request_seconds",
                "Wall time serving one admitted request",
                &[],
            ),
        }
    })
}

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (0 = `wodex_exec::num_threads()`, min 2).
    pub workers: usize,
    /// Connections that may wait for a worker before shedding starts.
    pub queue_depth: usize,
    /// Per-request budget deadline.
    pub deadline: Duration,
    /// Per-request budget row cap (0 = uncapped).
    pub row_cap: u64,
    /// Longest a connection may sit in the queue before it is shed.
    pub max_queue_wait: Duration,
    /// `Retry-After` seconds advertised on 503 responses.
    pub retry_after_secs: u32,
    /// Live session cap (LRU beyond this).
    pub session_capacity: usize,
    /// Session idle expiry.
    pub session_ttl: Duration,
    /// Socket read timeout (slow/idle clients release workers after this).
    pub read_timeout: Duration,
    /// Solution rows per streamed chunk on `/sparql`.
    pub stream_rows: usize,
    /// Worker-mode shard identity `(index, of)` — reported by
    /// `/shard/health` and `/stats` so operators (and the coordinator)
    /// can verify which partition a worker holds.
    pub shard: Option<(u32, u32)>,
    /// Injected latency before every `/shard/scan` body (chaos tests
    /// stall a shard with this; zero in production).
    pub scan_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            deadline: Duration::from_secs(2),
            row_cap: 1_000_000,
            max_queue_wait: Duration::from_secs(1),
            retry_after_secs: 1,
            session_capacity: 256,
            session_ttl: Duration::from_secs(600),
            read_timeout: Duration::from_secs(10),
            stream_rows: 64,
            shard: None,
            scan_delay: Duration::ZERO,
        }
    }
}

impl ServeConfig {
    /// The effective worker-thread count.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            wodex_exec::num_threads().max(2)
        } else {
            self.workers
        }
    }
}

/// Monotonic request counters (all relaxed atomics; exact enough for
/// operational visibility, free of locks on the hot path).
#[derive(Debug, Default)]
pub struct Counters {
    /// Connections accepted by the listener.
    pub accepted: AtomicU64,
    /// Connections handed to the worker pool.
    pub admitted: AtomicU64,
    /// Requests fully served (any status).
    pub completed: AtomicU64,
    /// Connections shed with 503 at the queue-depth gate.
    pub shed_queue_full: AtomicU64,
    /// Connections shed with 503 at the queue-deadline gate.
    pub shed_queue_wait: AtomicU64,
    /// Backlog connections shed with 503 during shutdown drain.
    pub shed_shutdown: AtomicU64,
    /// 400 responses.
    pub bad_requests: AtomicU64,
    /// 404 responses.
    pub not_found: AtomicU64,
    /// Responses whose budget tripped (partial/degraded answers).
    pub degraded: AtomicU64,
}

impl Counters {
    /// Total 503 responses across all shedding gates.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full.load(Ordering::Relaxed)
            + self.shed_queue_wait.load(Ordering::Relaxed)
            + self.shed_shutdown.load(Ordering::Relaxed)
    }

    // Each increment bumps the instance field (authoritative for /stats
    // and the admission tests) and mirrors into the global registry so
    // `/metrics` sees the same event. Both are single relaxed atomics.

    pub(crate) fn inc_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        serve_metrics().accepted.inc();
    }

    pub(crate) fn inc_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        serve_metrics().admitted.inc();
    }

    pub(crate) fn inc_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        serve_metrics().served.inc();
    }

    pub(crate) fn inc_shed_queue_full(&self) {
        self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        serve_metrics().shed_queue_full.inc();
    }

    pub(crate) fn inc_shed_queue_wait(&self) {
        self.shed_queue_wait.fetch_add(1, Ordering::Relaxed);
        serve_metrics().shed_queue_wait.inc();
    }

    pub(crate) fn inc_shed_shutdown(&self) {
        self.shed_shutdown.fetch_add(1, Ordering::Relaxed);
        serve_metrics().shed_shutdown.inc();
    }

    pub(crate) fn inc_bad_request(&self) {
        self.bad_requests.fetch_add(1, Ordering::Relaxed);
        serve_metrics().bad_requests.inc();
    }

    pub(crate) fn inc_not_found(&self) {
        self.not_found.fetch_add(1, Ordering::Relaxed);
        serve_metrics().not_found.inc();
    }

    pub(crate) fn inc_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        serve_metrics().degraded.inc();
    }
}

/// Dataset shape, precomputed at bind time so `/stats` never walks the
/// graph on the request path.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSummary {
    /// Total triples.
    pub triples: usize,
    /// Distinct subjects.
    pub subjects: usize,
    /// Distinct predicates.
    pub predicates: usize,
}

/// Shared state every worker sees.
pub struct AppState {
    /// The loaded dataset and all derived engines.
    pub explorer: Explorer,
    /// Precomputed dataset shape for `/stats`.
    pub dataset: DatasetSummary,
    /// Token-keyed exploration sessions.
    pub sessions: SessionManager,
    /// The instance's tunables.
    pub cfg: ServeConfig,
    /// Request counters.
    pub counters: Counters,
    /// Requests currently being parsed/served by workers.
    pub inflight: AtomicUsize,
    /// Set to stop the accept loop.
    pub shutdown: AtomicBool,
    /// The bound address (workers use it to wake the accept loop).
    pub local_addr: SocketAddr,
    /// Server start instant (uptime reporting).
    pub started: Instant,
    /// Coordinator mode: `/sparql` scatter-gathers across this fleet
    /// instead of evaluating against the local explorer.
    pub coordinator: Option<Arc<wodex_shard::Coordinator>>,
    /// The MVCC write path: `POST /data` commits here, `/sparql`
    /// evaluates against its current snapshot, and
    /// `GET /explore/subscribe` long-polls its delta frames. Seeded at
    /// bind time with a copy of the explorer's store (revision 0).
    /// Note the split: the `explorer` field keeps serving the bind-time
    /// graph to the exploration/viz endpoints and is *not* updated by
    /// commits — see the handlers module docs and `/healthz`, which
    /// reports both stores' counts distinctly.
    pub live: Arc<LiveStore>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    /// Callbacks run (in registration order) when the accept loop exits
    /// and every worker has drained — the seam by which the process
    /// stops background machinery (e.g. `wodex-seg`'s compaction
    /// thread) on `POST /admin/shutdown`.
    shutdown_hooks: Vec<Box<dyn FnOnce() + Send>>,
}

/// One unit of queued work: an accepted connection plus its enqueue time.
struct Conn {
    stream: TcpStream,
    enqueued: Instant,
}

impl Server {
    /// Binds the listener and prepares shared state over `explorer`.
    pub fn bind(explorer: Explorer, cfg: ServeConfig) -> std::io::Result<Server> {
        Server::bind_with_coordinator(explorer, cfg, None)
    }

    /// [`Server::bind`] in coordinator mode: `/sparql` requests
    /// scatter-gather across the coordinator's shard fleet; every other
    /// endpoint (exploration, viz) still serves the local `explorer`
    /// (typically empty on a pure front-end).
    pub fn bind_with_coordinator(
        explorer: Explorer,
        cfg: ServeConfig,
        coordinator: Option<Arc<wodex_shard::Coordinator>>,
    ) -> std::io::Result<Server> {
        // Touch the serve and exec metric families up front so a
        // `/metrics` scrape of a freshly bound server already exposes
        // them at zero instead of omitting the series.
        let _ = serve_metrics();
        let _ = wodex_exec::stats();
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let sessions = SessionManager::new(
            explorer.shared_graph(),
            cfg.session_capacity,
            cfg.session_ttl,
        );
        let stats = explorer.stats();
        let dataset = DatasetSummary {
            triples: stats.triple_count,
            subjects: stats.subject_count,
            predicates: stats.predicate_count,
        };
        // Seed the MVCC write path with a revision-0 copy of the
        // dataset. The explorer keeps serving the bind-time graph to
        // the exploration/viz endpoints; `/sparql` and the subscribe
        // feed see live commits through this store's snapshots.
        let live = Arc::new(LiveStore::new(TripleStore::from_encoded(
            explorer.store().dict().clone(),
            explorer.store().match_pattern(Pattern::any()),
        )));
        let state = Arc::new(AppState {
            explorer,
            dataset,
            sessions,
            cfg,
            counters: Counters::default(),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            local_addr,
            started: Instant::now(),
            coordinator,
            live,
        });
        Ok(Server {
            listener,
            state,
            shutdown_hooks: Vec::new(),
        })
    }

    /// Registers a callback to run after the accept loop stops and the
    /// workers drain — before [`Server::run`] returns. Hooks run in
    /// registration order, exactly once, on every clean exit path
    /// (`POST /admin/shutdown`, [`RunningServer::shutdown`], or an
    /// externally set shutdown flag).
    pub fn on_shutdown(&mut self, hook: impl FnOnce() + Send + 'static) {
        self.shutdown_hooks.push(Box::new(hook));
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// The shared state (counters, shutdown flag).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop on the calling thread until shutdown.
    ///
    /// Spawns the worker pool in a scope, so returning implies every
    /// worker has drained and joined.
    pub fn run(self) -> std::io::Result<()> {
        let state = self.state;
        let hooks = self.shutdown_hooks;
        let workers = state.cfg.effective_workers();
        let (tx, rx) = channel::bounded::<Conn>(state.cfg.queue_depth.max(1));
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = &rx;
                let state = &state;
                scope.spawn(move || loop {
                    let conn = {
                        let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                        guard.recv()
                    };
                    let Ok(conn) = conn else {
                        break; // Channel closed: accept loop is gone.
                    };
                    state.inflight.fetch_add(1, Ordering::Relaxed);
                    let waited = conn.enqueued.elapsed();
                    serve_metrics().queue_wait.observe(waited.as_nanos() as u64);
                    if waited > state.cfg.max_queue_wait {
                        state.counters.inc_shed_queue_wait();
                        shed(&state.cfg, conn.stream);
                    } else {
                        let served_at = Instant::now();
                        handlers::handle(state, conn.stream);
                        serve_metrics()
                            .request_seconds
                            .observe(served_at.elapsed().as_nanos() as u64);
                        state.counters.inc_completed();
                    }
                    state.inflight.fetch_sub(1, Ordering::Relaxed);
                });
            }
            for incoming in self.listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else {
                    continue; // Transient accept error; keep serving.
                };
                state.counters.inc_accepted();
                match tx.try_send(Conn {
                    stream,
                    enqueued: Instant::now(),
                }) {
                    Ok(()) => {
                        state.counters.inc_admitted();
                    }
                    Err(TrySendError::Full(conn)) => {
                        state.counters.inc_shed_queue_full();
                        shed(&state.cfg, conn.stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Shutdown drain: connections already in the kernel's accept
            // backlog would get a TCP RST when the listener drops with
            // them unread — the client sees a connection reset instead
            // of an answer. Accept whatever is pending (non-blocking)
            // and shed each one cleanly with 503 + Retry-After, so
            // killing a shard mid-workload never turns a clean shed
            // into a reset.
            let _ = self.listener.set_nonblocking(true);
            // Stops on WouldBlock: the backlog is empty.
            while let Ok((pending, _)) = self.listener.accept() {
                state.counters.inc_accepted();
                state.counters.inc_shed_shutdown();
                shed(&state.cfg, pending);
            }
            drop(tx); // Workers drain the queue, then exit.
        });
        // The scope joined every worker: no request is in flight, so
        // hooks can tear down whatever the handlers relied on.
        for hook in hooks {
            hook();
        }
        Ok(())
    }

    /// Spawns [`Server::run`] on a background thread.
    pub fn spawn(self) -> RunningServer {
        let addr = self.addr();
        let state = self.state();
        let handle = std::thread::spawn(move || self.run());
        RunningServer {
            addr,
            state,
            handle,
        }
    }
}

/// A server running on a background thread (tests, benches, the CLI).
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<AppState>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (counters etc.).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Requests shutdown, wakes the accept loop, and joins every thread.
    pub fn shutdown(self) -> std::io::Result<()> {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        match self.handle.join() {
            Ok(r) => r,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

/// Wakes a server's accept loop so it re-checks the shutdown flag;
/// handlers call this after `/admin/shutdown` sets the flag.
pub(crate) fn wake(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Writes the overload response and closes the connection. Never blocks
/// the caller for long: the write timeout bounds a wedged peer.
///
/// The client's request bytes are deliberately drained before the socket
/// drops: closing with unread data in the receive buffer makes TCP send
/// a reset, which can destroy the in-flight 503 before the client reads
/// it — turning a clean shed into a dropped connection.
fn shed(cfg: &ServeConfig, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let retry = cfg.retry_after_secs.to_string();
    let body = format!("{{\"error\":\"server at capacity\",\"retry_after_secs\":{retry}}}");
    let _ = crate::http::write_response(
        &mut stream,
        503,
        "Service Unavailable",
        "application/json",
        &[("Retry-After", retry.as_str())],
        body.as_bytes(),
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Non-blocking: consumes what has already arrived without ever
    // stalling the accept thread behind a slow peer.
    let _ = stream.set_nonblocking(true);
    let mut scratch = [0u8; 4096];
    for _ in 0..16 {
        match std::io::Read::read(&mut stream, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}
