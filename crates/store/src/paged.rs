//! A paged, disk-backed triple store.
//!
//! The survey's §4 singles out disk-based runtime access as the missing
//! capability of WoD systems: "*systems should be integrated with disk
//! structures, retrieving data dynamically during runtime*" (as graphVizdb
//! \[22\], Oracle's sampling system \[127\] and GMine \[72\] do). This module is
//! that architecture in miniature:
//!
//! * triples are dictionary-encoded and serialized into fixed-size pages
//!   sorted in SPO order,
//! * a small in-memory **page directory** maps each page to its first key,
//! * range queries binary-search the directory and fetch only the touched
//!   pages through a [`BufferPool`],
//! * backends are pluggable: a real file ([`FileBackend`]) or an in-memory
//!   "disk" with I/O accounting ([`MemBackend`]) for tests and benches.
//!
//! Memory use is `pool capacity × page size`, independent of dataset size —
//! the property experiment E5 measures.

use crate::buffer::BufferPool;
use crate::encoded::EncodedTriple;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Page size in bytes (8 KiB, the classic DBMS default).
pub const PAGE_SIZE: usize = 8192;
/// Bytes of page header (little-endian u32 triple count).
pub const PAGE_HEADER: usize = 4;
/// Triples per page.
pub const TRIPLES_PER_PAGE: usize = (PAGE_SIZE - PAGE_HEADER) / 12;

/// Storage backend: a flat array of pages with read accounting.
pub trait PageBackend {
    /// Reads page `id` (must exist).
    fn read_page(&self, id: u32) -> Vec<u8>;
    /// Appends a page, returning its id.
    fn append_page(&mut self, data: &[u8]) -> u32;
    /// Number of pages.
    fn page_count(&self) -> u32;
    /// Number of physical reads performed so far.
    fn reads(&self) -> u64;
}

/// An in-memory "disk": pages in a `Vec`, reads counted.
#[derive(Debug, Default)]
pub struct MemBackend {
    pages: Vec<Vec<u8>>,
    reads: AtomicU64,
}

impl MemBackend {
    /// Creates an empty backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl PageBackend for MemBackend {
    fn read_page(&self, id: u32) -> Vec<u8> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.pages[id as usize].clone()
    }

    fn append_page(&mut self, data: &[u8]) -> u32 {
        let id = self.pages.len() as u32;
        self.pages.push(data.to_vec());
        id
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

/// A file-backed page store.
pub struct FileBackend {
    file: std::sync::Mutex<std::fs::File>,
    pages: u32,
    reads: AtomicU64,
}

impl FileBackend {
    /// Creates (truncates) a page file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<FileBackend> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend {
            file: std::sync::Mutex::new(file),
            pages: 0,
            reads: AtomicU64::new(0),
        })
    }
}

impl PageBackend for FileBackend {
    fn read_page(&self, id: u32) -> Vec<u8> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut f = self.file.lock().unwrap();
        f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .expect("seek");
        f.read_exact(&mut buf).expect("read page");
        buf
    }

    fn append_page(&mut self, data: &[u8]) -> u32 {
        let id = self.pages;
        let mut f = self.file.lock().unwrap();
        f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .expect("seek");
        let mut page = data.to_vec();
        page.resize(PAGE_SIZE, 0);
        f.write_all(&page).expect("write page");
        self.pages += 1;
        id
    }

    fn page_count(&self) -> u32 {
        self.pages
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

/// Serializes up to [`TRIPLES_PER_PAGE`] triples into one page image.
pub fn encode_page(triples: &[EncodedTriple]) -> Vec<u8> {
    assert!(triples.len() <= TRIPLES_PER_PAGE);
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    buf.extend_from_slice(&(triples.len() as u32).to_le_bytes());
    for t in triples {
        buf.extend_from_slice(&t[0].to_le_bytes());
        buf.extend_from_slice(&t[1].to_le_bytes());
        buf.extend_from_slice(&t[2].to_le_bytes());
    }
    buf.resize(PAGE_SIZE, 0);
    buf
}

/// Decodes a page image back into triples.
pub fn decode_page(data: &[u8]) -> Vec<EncodedTriple> {
    let mut at = 0usize;
    let mut next_u32 = || {
        let v = u32::from_le_bytes(data[at..at + 4].try_into().expect("4-byte field"));
        at += 4;
        v
    };
    let n = next_u32() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push([next_u32(), next_u32(), next_u32()]);
    }
    out
}

/// A read-only paged triple store in SPO order.
pub struct PagedTripleStore<B: PageBackend> {
    backend: B,
    /// First key of each page, in page order.
    directory: Vec<EncodedTriple>,
    len: usize,
}

impl<B: PageBackend> PagedTripleStore<B> {
    /// Bulk-loads sorted SPO triples into the backend.
    ///
    /// `triples` must be sorted; this is checked in debug builds.
    pub fn bulk_load(mut backend: B, triples: &[EncodedTriple]) -> PagedTripleStore<B> {
        debug_assert!(triples.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        let mut directory = Vec::new();
        for chunk in triples.chunks(TRIPLES_PER_PAGE) {
            directory.push(chunk[0]);
            backend.append_page(&encode_page(chunk));
        }
        PagedTripleStore {
            backend,
            directory,
            len: triples.len(),
        }
    }

    /// Total triples stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.backend.page_count()
    }

    /// Physical reads performed by the backend so far.
    pub fn physical_reads(&self) -> u64 {
        self.backend.reads()
    }

    /// Fetches and decodes one page through the pool.
    fn page(&self, pool: &BufferPool, id: u32) -> Vec<EncodedTriple> {
        let data = pool.get(id, || self.backend.read_page(id));
        decode_page(&data)
    }

    /// All triples whose subject id lies in `[s_lo, s_hi]`, touching only
    /// the pages that can contain them.
    pub fn scan_subject_range(
        &self,
        pool: &BufferPool,
        s_lo: u32,
        s_hi: u32,
    ) -> Vec<EncodedTriple> {
        if self.directory.is_empty() || s_lo > s_hi {
            return Vec::new();
        }
        // First page that can contain s_lo: the last page whose first key
        // is <= [s_lo, 0, 0] (the run may start mid-page).
        let lo_key = [s_lo, 0, 0];
        let start = self
            .directory
            .partition_point(|k| *k <= lo_key)
            .saturating_sub(1);
        let mut out = Vec::new();
        for id in start..self.directory.len() {
            if self.directory[id][0] > s_hi {
                break;
            }
            for t in self.page(pool, id as u32) {
                if t[0] >= s_lo && t[0] <= s_hi {
                    out.push(t);
                } else if t[0] > s_hi {
                    return out;
                }
            }
        }
        out
    }

    /// All triples for one subject id.
    pub fn match_subject(&self, pool: &BufferPool, s: u32) -> Vec<EncodedTriple> {
        self.scan_subject_range(pool, s, s)
    }

    /// Full scan (streams every page through the pool).
    pub fn scan_all(&self, pool: &BufferPool) -> Vec<EncodedTriple> {
        let mut out = Vec::with_capacity(self.len);
        for id in 0..self.page_count() {
            out.extend(self.page(pool, id));
        }
        out
    }

    /// The page ids a subject-range scan would touch — used by the
    /// prefetcher to warm the pool ahead of a predicted viewport move.
    pub fn pages_for_subject_range(&self, s_lo: u32, s_hi: u32) -> Vec<u32> {
        if self.directory.is_empty() || s_lo > s_hi {
            return Vec::new();
        }
        let lo_key = [s_lo, 0, 0];
        let start = self
            .directory
            .partition_point(|k| *k <= lo_key)
            .saturating_sub(1);
        let mut out = Vec::new();
        for id in start..self.directory.len() {
            if self.directory[id][0] > s_hi {
                break;
            }
            out.push(id as u32);
        }
        out
    }

    /// Preloads a set of pages into the pool without counting misses.
    pub fn prefetch_pages(&self, pool: &BufferPool, pages: &[u32]) {
        for &id in pages {
            pool.preload(id, || self.backend.read_page(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_triples(n: u32) -> Vec<EncodedTriple> {
        // Two triples per subject.
        let mut v = Vec::new();
        for s in 0..n {
            v.push([s, 0, s * 2]);
            v.push([s, 1, s * 2 + 1]);
        }
        v
    }

    #[test]
    fn page_encode_decode_roundtrip() {
        let ts = sorted_triples(100);
        let page = encode_page(&ts[..TRIPLES_PER_PAGE.min(ts.len())]);
        assert_eq!(page.len(), PAGE_SIZE);
        let back = decode_page(&page);
        assert_eq!(back, ts[..TRIPLES_PER_PAGE.min(ts.len())]);
    }

    #[test]
    fn bulk_load_pages_and_lengths() {
        let ts = sorted_triples(2000); // 4000 triples
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts);
        assert_eq!(store.len(), 4000);
        let expected_pages = 4000_usize.div_ceil(TRIPLES_PER_PAGE) as u32;
        assert_eq!(store.page_count(), expected_pages);
    }

    #[test]
    fn subject_range_scan_is_correct() {
        let ts = sorted_triples(2000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts);
        let pool = BufferPool::new(16);
        let got = store.scan_subject_range(&pool, 100, 199);
        assert_eq!(got.len(), 200);
        assert!(got.iter().all(|t| t[0] >= 100 && t[0] <= 199));
        // Against brute force.
        let want: Vec<_> = ts
            .iter()
            .filter(|t| t[0] >= 100 && t[0] <= 199)
            .copied()
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn windowed_scan_touches_few_pages() {
        let ts = sorted_triples(50_000); // 100k triples, ~147 pages
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts);
        let pool = BufferPool::new(8);
        store.scan_subject_range(&pool, 1000, 1100);
        let reads = store.physical_reads();
        assert!(
            reads <= 3,
            "a 100-subject window should touch ≤3 pages, read {reads}"
        );
    }

    #[test]
    fn full_scan_reads_every_page_once_with_big_pool() {
        let ts = sorted_triples(5000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts);
        let pool = BufferPool::new(1024);
        let all = store.scan_all(&pool);
        assert_eq!(all.len(), 10_000);
        assert_eq!(store.physical_reads(), store.page_count() as u64);
        // Second scan: all pages resident.
        store.scan_all(&pool);
        assert_eq!(store.physical_reads(), store.page_count() as u64);
    }

    #[test]
    fn small_pool_rereads_under_repeated_scans() {
        let ts = sorted_triples(5000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts);
        let pool = BufferPool::new(2);
        store.scan_all(&pool);
        store.scan_all(&pool);
        assert!(store.physical_reads() > store.page_count() as u64);
    }

    #[test]
    fn match_subject_on_boundaries() {
        let ts = sorted_triples(3000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts);
        let pool = BufferPool::new(8);
        assert_eq!(store.match_subject(&pool, 0).len(), 2);
        assert_eq!(store.match_subject(&pool, 2999).len(), 2);
        assert_eq!(store.match_subject(&pool, 3000).len(), 0);
    }

    #[test]
    fn pages_for_range_matches_actual_touch_set() {
        let ts = sorted_triples(20_000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts);
        let pages = store.pages_for_subject_range(5000, 5500);
        let pool = BufferPool::new(64);
        store.scan_subject_range(&pool, 5000, 5500);
        // The scan may stop early on the last page, so the predicted set is
        // a superset within one page.
        let reads = store.physical_reads();
        assert!(pages.len() as u64 >= reads && pages.len() as u64 <= reads + 1);
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("wodex_pages_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pages");
        let ts = sorted_triples(1000);
        let backend = FileBackend::create(&path).unwrap();
        let store = PagedTripleStore::bulk_load(backend, &ts);
        let pool = BufferPool::new(4);
        let got = store.scan_subject_range(&pool, 10, 20);
        assert_eq!(got.len(), 22);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store() {
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &[]);
        let pool = BufferPool::new(4);
        assert!(store.is_empty());
        assert!(store.scan_subject_range(&pool, 0, 10).is_empty());
        assert!(store.scan_all(&pool).is_empty());
    }
}
