//! A paged, disk-backed triple store.
//!
//! The survey's §4 singles out disk-based runtime access as the missing
//! capability of WoD systems: "*systems should be integrated with disk
//! structures, retrieving data dynamically during runtime*" (as graphVizdb
//! \[22\], Oracle's sampling system \[127\] and GMine \[72\] do). This module is
//! that architecture in miniature:
//!
//! * triples are dictionary-encoded and serialized into fixed-size pages
//!   sorted in SPO order, each page carrying a 64-bit checksum so torn or
//!   corrupt pages are *detected* instead of decoded into garbage,
//! * a small in-memory **page directory** maps each page to its first key,
//! * range queries binary-search the directory and fetch only the touched
//!   pages through a [`BufferPool`],
//! * backends are pluggable: a real file ([`FileBackend`]), an in-memory
//!   "disk" with I/O accounting ([`MemBackend`]) for tests and benches, or
//!   a fault-injecting wrapper ([`crate::fault::FaultBackend`]) for chaos
//!   testing,
//! * every read is fallible: backends return [`StoreError`], transient
//!   faults are retried under a [`RetryPolicy`] with capped exponential
//!   backoff, and what cannot be retried surfaces as a typed error.
//!
//! Memory use is `pool capacity × page size`, independent of dataset size —
//! the property experiment E5 measures.

use crate::buffer::BufferPool;
use crate::encoded::{EncodedTriple, TERM_ID_BYTES, TRIPLE_BYTES};
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError};
use wodex_obs::Counter;
use wodex_resilience::{page_checksum, RetryPolicy, RetrySnapshot, RetryStats, StoreError};

/// Global registry series for the paged store's backend traffic.
struct StoreMetrics {
    backend_fetches: Arc<Counter>,
    checksum_verifies: Arc<Counter>,
    checksum_failures: Arc<Counter>,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        StoreMetrics {
            backend_fetches: r.counter(
                "wodex_store_backend_fetches_total",
                "Page reads issued to a storage backend (one per pool miss attempt)",
            ),
            checksum_verifies: r.counter(
                "wodex_store_checksum_verifies_total",
                "Page checksum verifications performed on backend fetches",
            ),
            checksum_failures: r.counter(
                "wodex_store_checksum_failures_total",
                "Backend fetches rejected by checksum verification",
            ),
        }
    })
}

/// Page size in bytes (8 KiB, the classic DBMS default).
pub const PAGE_SIZE: usize = 8192;
/// Bytes of page header: little-endian u64 checksum, then u32 triple count.
pub const PAGE_HEADER: usize = 12;
/// Triples per page.
pub const TRIPLES_PER_PAGE: usize = (PAGE_SIZE - PAGE_HEADER) / TRIPLE_BYTES;

/// Storage backend: a flat array of pages with read accounting.
///
/// Reads and appends are fallible — a backend may sit on a real disk (or a
/// fault-injecting wrapper), so "page cannot be produced" is a value, not a
/// panic.
pub trait PageBackend {
    /// Reads page `id`.
    fn read_page(&self, id: u32) -> Result<Vec<u8>, StoreError>;
    /// Appends a page, returning its id.
    fn append_page(&mut self, data: &[u8]) -> Result<u32, StoreError>;
    /// Number of pages.
    fn page_count(&self) -> u32;
    /// Number of physical reads performed so far.
    fn reads(&self) -> u64;
}

/// An in-memory "disk": pages in a `Vec`, reads counted.
#[derive(Debug, Default)]
pub struct MemBackend {
    pages: Vec<Vec<u8>>,
    reads: AtomicU64,
}

impl MemBackend {
    /// Creates an empty backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl PageBackend for MemBackend {
    fn read_page(&self, id: u32) -> Result<Vec<u8>, StoreError> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.pages
            .get(id as usize)
            .cloned()
            .ok_or(StoreError::NoSuchPage {
                page: id,
                pages: self.pages.len() as u32,
            })
    }

    fn append_page(&mut self, data: &[u8]) -> Result<u32, StoreError> {
        let id = self.pages.len() as u32;
        self.pages.push(data.to_vec());
        Ok(id)
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

/// A file-backed page store.
pub struct FileBackend {
    file: std::sync::Mutex<std::fs::File>,
    pages: u32,
    reads: AtomicU64,
}

impl FileBackend {
    /// Creates (truncates) a page file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<FileBackend> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend {
            file: std::sync::Mutex::new(file),
            pages: 0,
            reads: AtomicU64::new(0),
        })
    }
}

impl PageBackend for FileBackend {
    fn read_page(&self, id: u32) -> Result<Vec<u8>, StoreError> {
        if id >= self.pages {
            return Err(StoreError::NoSuchPage {
                page: id,
                pages: self.pages,
            });
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut buf = vec![0u8; PAGE_SIZE];
        // A panicked holder cannot have left the file position in a state
        // we rely on (every op re-seeks), so recovering from poison is safe.
        let mut f = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .map_err(|e| StoreError::Io {
                op: "seek",
                detail: e.to_string(),
            })?;
        f.read_exact(&mut buf).map_err(|e| match e.kind() {
            // A short read of an existing page is a torn/interrupted read:
            // the bytes may well be there on the next attempt.
            std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::Interrupted => {
                StoreError::Transient {
                    op: "read_page",
                    detail: e.to_string(),
                }
            }
            _ => StoreError::Io {
                op: "read_page",
                detail: e.to_string(),
            },
        })?;
        Ok(buf)
    }

    fn append_page(&mut self, data: &[u8]) -> Result<u32, StoreError> {
        let id = self.pages;
        let mut f = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .map_err(|e| StoreError::Io {
                op: "seek",
                detail: e.to_string(),
            })?;
        let mut page = data.to_vec();
        page.resize(PAGE_SIZE, 0);
        f.write_all(&page).map_err(|e| StoreError::Io {
            op: "write_page",
            detail: e.to_string(),
        })?;
        self.pages += 1;
        Ok(id)
    }

    fn page_count(&self) -> u32 {
        self.pages
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

/// Serializes up to [`TRIPLES_PER_PAGE`] triples into one page image:
/// `[checksum: u64][count: u32][count × 12-byte triples][zero padding]`.
/// The checksum covers everything after itself (count, triples, padding).
pub fn encode_page(triples: &[EncodedTriple]) -> Vec<u8> {
    assert!(triples.len() <= TRIPLES_PER_PAGE);
    let mut buf = Vec::with_capacity(PAGE_SIZE);
    buf.extend_from_slice(&[0u8; 8]); // checksum slot, filled below
    buf.extend_from_slice(&(triples.len() as u32).to_le_bytes());
    for t in triples {
        buf.extend_from_slice(&t[0].to_le_bytes());
        buf.extend_from_slice(&t[1].to_le_bytes());
        buf.extend_from_slice(&t[2].to_le_bytes());
    }
    buf.resize(PAGE_SIZE, 0);
    let sum = page_checksum(&buf[8..]);
    buf[..8].copy_from_slice(&sum.to_le_bytes());
    buf
}

/// Validates a page image without decoding it.
///
/// Checks the length and the stored checksum against the page body; a
/// failure reports *what* is wrong so the caller can wrap it into
/// [`StoreError::Corrupt`] with the page id. This runs once per backend
/// fetch — pages already resident in the pool were verified on entry.
pub fn verify_page(data: &[u8]) -> Result<(), String> {
    if data.len() < PAGE_HEADER {
        return Err(format!("short page: {} bytes", data.len()));
    }
    let stored = u64::from_le_bytes(data[..8].try_into().expect("8-byte checksum"));
    let actual = page_checksum(&data[8..]);
    if stored != actual {
        return Err(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        ));
    }
    Ok(())
}

/// Validates and decodes a page image back into triples.
pub fn decode_page(data: &[u8]) -> Result<Vec<EncodedTriple>, String> {
    verify_page(data)?;
    Ok(decode_page_unchecked(data))
}

/// Iterates a page image's triples without allocating — the scan paths
/// stream this straight into their output vectors, skipping the
/// per-page intermediate `Vec` an eager decode would cost.
///
/// Performs no checksum validation; callers obtain `data` from the
/// buffer pool, which only admits [`verify_page`]-clean fetches.
pub fn page_triples(data: &[u8]) -> impl Iterator<Item = EncodedTriple> + '_ {
    let field = |at: usize| u32::from_le_bytes(data[at..at + 4].try_into().expect("4-byte field"));
    let n = if data.len() < PAGE_HEADER {
        0
    } else {
        (field(8) as usize).min(TRIPLES_PER_PAGE)
    };
    (0..n).map(move |i| {
        let at = PAGE_HEADER + i * TRIPLE_BYTES;
        [
            field(at),
            field(at + TERM_ID_BYTES),
            field(at + 2 * TERM_ID_BYTES),
        ]
    })
}

/// Decodes a page image without checksum validation — the fault-free fast
/// path for pages already verified, and the baseline for measuring the
/// checksum's overhead (bench `bench-pr2`).
pub fn decode_page_unchecked(data: &[u8]) -> Vec<EncodedTriple> {
    page_triples(data).collect()
}

/// A read-only paged triple store in SPO order.
pub struct PagedTripleStore<B: PageBackend> {
    backend: B,
    /// First key of each page, in page order.
    directory: Vec<EncodedTriple>,
    len: usize,
    policy: RetryPolicy,
    retry_stats: RetryStats,
}

impl<B: PageBackend> PagedTripleStore<B> {
    /// Bulk-loads sorted SPO triples into the backend with the default
    /// retry policy.
    ///
    /// `triples` must be sorted; this is checked in debug builds.
    pub fn bulk_load(
        backend: B,
        triples: &[EncodedTriple],
    ) -> Result<PagedTripleStore<B>, StoreError> {
        PagedTripleStore::bulk_load_with_policy(backend, triples, RetryPolicy::default())
    }

    /// [`PagedTripleStore::bulk_load`] with an explicit retry policy.
    pub fn bulk_load_with_policy(
        mut backend: B,
        triples: &[EncodedTriple],
        policy: RetryPolicy,
    ) -> Result<PagedTripleStore<B>, StoreError> {
        debug_assert!(triples.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        let mut directory = Vec::new();
        for chunk in triples.chunks(TRIPLES_PER_PAGE) {
            directory.push(chunk[0]);
            backend.append_page(&encode_page(chunk))?;
        }
        Ok(PagedTripleStore {
            backend,
            directory,
            len: triples.len(),
            policy,
            retry_stats: RetryStats::new(),
        })
    }

    /// Total triples stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.backend.page_count()
    }

    /// Physical reads performed by the backend so far.
    pub fn physical_reads(&self) -> u64 {
        self.backend.reads()
    }

    /// Retry counters accumulated across all page reads.
    pub fn retry_stats(&self) -> RetrySnapshot {
        self.retry_stats.snapshot()
    }

    /// The backend, for fault/injection inspection in tests.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Reads one page from the backend and checksum-verifies it. This is
    /// the only route by which bytes enter the buffer pool, so every
    /// pooled page is already validated and the hot (pool-hit) path can
    /// decode without re-hashing 8 KiB per access.
    fn fetch_verified(&self, id: u32) -> Result<Vec<u8>, StoreError> {
        let m = store_metrics();
        m.backend_fetches.inc();
        let data = self.backend.read_page(id)?;
        m.checksum_verifies.inc();
        verify_page(&data).map_err(|detail| {
            m.checksum_failures.inc();
            StoreError::Corrupt { page: id, detail }
        })?;
        Ok(data)
    }

    /// Fetches one validated page image through the pool, retrying
    /// transient faults under the store's policy. A fetch that fails
    /// verification caches nothing, so the next attempt re-reads the
    /// backend (a torn read heals; real on-disk rot keeps failing and
    /// exhausts the retries).
    fn page_bytes(&self, pool: &BufferPool, id: u32) -> Result<Arc<Vec<u8>>, StoreError> {
        self.policy.run(
            &self.retry_stats,
            StoreError::is_transient,
            |_attempt| pool.get(id, || self.fetch_verified(id)),
            |attempts, last| StoreError::RetriesExhausted {
                op: "read_page",
                attempts,
                last: last.to_string(),
            },
        )
    }

    /// All triples whose subject id lies in `[s_lo, s_hi]`, touching only
    /// the pages that can contain them.
    pub fn scan_subject_range(
        &self,
        pool: &BufferPool,
        s_lo: u32,
        s_hi: u32,
    ) -> Result<Vec<EncodedTriple>, StoreError> {
        if self.directory.is_empty() || s_lo > s_hi {
            return Ok(Vec::new());
        }
        // First page that can contain s_lo: the last page whose first key
        // is <= [s_lo, 0, 0] (the run may start mid-page).
        let lo_key = [s_lo, 0, 0];
        let start = self
            .directory
            .partition_point(|k| *k <= lo_key)
            .saturating_sub(1);
        let mut out = Vec::new();
        for id in start..self.directory.len() {
            if self.directory[id][0] > s_hi {
                break;
            }
            let data = self.page_bytes(pool, id as u32)?;
            for t in page_triples(&data) {
                if t[0] >= s_lo && t[0] <= s_hi {
                    out.push(t);
                } else if t[0] > s_hi {
                    return Ok(out);
                }
            }
        }
        Ok(out)
    }

    /// All triples for one subject id.
    pub fn match_subject(
        &self,
        pool: &BufferPool,
        s: u32,
    ) -> Result<Vec<EncodedTriple>, StoreError> {
        self.scan_subject_range(pool, s, s)
    }

    /// Full scan (streams every page through the pool).
    pub fn scan_all(&self, pool: &BufferPool) -> Result<Vec<EncodedTriple>, StoreError> {
        let mut out = Vec::with_capacity(self.len);
        for id in 0..self.page_count() {
            let data = self.page_bytes(pool, id)?;
            out.extend(page_triples(&data));
        }
        Ok(out)
    }

    /// The page ids a subject-range scan would touch — used by the
    /// prefetcher to warm the pool ahead of a predicted viewport move.
    pub fn pages_for_subject_range(&self, s_lo: u32, s_hi: u32) -> Vec<u32> {
        if self.directory.is_empty() || s_lo > s_hi {
            return Vec::new();
        }
        let lo_key = [s_lo, 0, 0];
        let start = self
            .directory
            .partition_point(|k| *k <= lo_key)
            .saturating_sub(1);
        let mut out = Vec::new();
        for id in start..self.directory.len() {
            if self.directory[id][0] > s_hi {
                break;
            }
            out.push(id as u32);
        }
        out
    }

    /// Preloads a set of pages into the pool without counting misses.
    ///
    /// Prefetching is speculation: a page that cannot be read right now is
    /// simply skipped (the demand path will retry it properly), so faults
    /// here never surface.
    pub fn prefetch_pages(&self, pool: &BufferPool, pages: &[u32]) {
        for &id in pages {
            // Verify before caching: an unverified speculative page must
            // never be served to a later demand read.
            let _ = pool.preload(id, || self.fetch_verified(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_triples(n: u32) -> Vec<EncodedTriple> {
        // Two triples per subject.
        let mut v = Vec::new();
        for s in 0..n {
            v.push([s, 0, s * 2]);
            v.push([s, 1, s * 2 + 1]);
        }
        v
    }

    #[test]
    fn page_encode_decode_roundtrip() {
        let ts = sorted_triples(100);
        let page = encode_page(&ts[..TRIPLES_PER_PAGE.min(ts.len())]);
        assert_eq!(page.len(), PAGE_SIZE);
        let back = decode_page(&page).unwrap();
        assert_eq!(back, ts[..TRIPLES_PER_PAGE.min(ts.len())]);
    }

    #[test]
    fn corrupt_page_fails_checksum() {
        let ts = sorted_triples(10);
        let mut page = encode_page(&ts);
        assert!(decode_page(&page).is_ok());
        page[PAGE_HEADER + 5] ^= 0x10; // flip one payload bit
        let err = decode_page(&page).unwrap_err();
        assert!(err.contains("checksum"), "unexpected defect: {err}");
        // The unchecked decoder still parses (garbage in, garbage out).
        let _ = decode_page_unchecked(&page);
    }

    #[test]
    fn short_page_is_a_defect_not_a_panic() {
        assert!(decode_page(&[0u8; 4]).is_err());
    }

    #[test]
    fn bulk_load_pages_and_lengths() {
        let ts = sorted_triples(2000); // 4000 triples
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts).unwrap();
        assert_eq!(store.len(), 4000);
        let expected_pages = 4000_usize.div_ceil(TRIPLES_PER_PAGE) as u32;
        assert_eq!(store.page_count(), expected_pages);
    }

    #[test]
    fn subject_range_scan_is_correct() {
        let ts = sorted_triples(2000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts).unwrap();
        let pool = BufferPool::new(16);
        let got = store.scan_subject_range(&pool, 100, 199).unwrap();
        assert_eq!(got.len(), 200);
        assert!(got.iter().all(|t| t[0] >= 100 && t[0] <= 199));
        // Against brute force.
        let want: Vec<_> = ts
            .iter()
            .filter(|t| t[0] >= 100 && t[0] <= 199)
            .copied()
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn windowed_scan_touches_few_pages() {
        let ts = sorted_triples(50_000); // 100k triples, ~147 pages
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts).unwrap();
        let pool = BufferPool::new(8);
        store.scan_subject_range(&pool, 1000, 1100).unwrap();
        let reads = store.physical_reads();
        assert!(
            reads <= 3,
            "a 100-subject window should touch ≤3 pages, read {reads}"
        );
    }

    #[test]
    fn full_scan_reads_every_page_once_with_big_pool() {
        let ts = sorted_triples(5000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts).unwrap();
        let pool = BufferPool::new(1024);
        let all = store.scan_all(&pool).unwrap();
        assert_eq!(all.len(), 10_000);
        assert_eq!(store.physical_reads(), store.page_count() as u64);
        // Second scan: all pages resident.
        store.scan_all(&pool).unwrap();
        assert_eq!(store.physical_reads(), store.page_count() as u64);
    }

    #[test]
    fn small_pool_rereads_under_repeated_scans() {
        let ts = sorted_triples(5000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts).unwrap();
        let pool = BufferPool::new(2);
        store.scan_all(&pool).unwrap();
        store.scan_all(&pool).unwrap();
        assert!(store.physical_reads() > store.page_count() as u64);
    }

    #[test]
    fn match_subject_on_boundaries() {
        let ts = sorted_triples(3000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts).unwrap();
        let pool = BufferPool::new(8);
        assert_eq!(store.match_subject(&pool, 0).unwrap().len(), 2);
        assert_eq!(store.match_subject(&pool, 2999).unwrap().len(), 2);
        assert_eq!(store.match_subject(&pool, 3000).unwrap().len(), 0);
    }

    #[test]
    fn pages_for_range_matches_actual_touch_set() {
        let ts = sorted_triples(20_000);
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &ts).unwrap();
        let pages = store.pages_for_subject_range(5000, 5500);
        let pool = BufferPool::new(64);
        store.scan_subject_range(&pool, 5000, 5500).unwrap();
        // The scan may stop early on the last page, so the predicted set is
        // a superset within one page.
        let reads = store.physical_reads();
        assert!(pages.len() as u64 >= reads && pages.len() as u64 <= reads + 1);
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("wodex_pages_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pages");
        let ts = sorted_triples(1000);
        let backend = FileBackend::create(&path).unwrap();
        let store = PagedTripleStore::bulk_load(backend, &ts).unwrap();
        let pool = BufferPool::new(4);
        let got = store.scan_subject_range(&pool, 10, 20).unwrap();
        assert_eq!(got.len(), 22);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_out_of_range_read_is_typed() {
        let dir = std::env::temp_dir().join(format!("wodex_pages_oor_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oor.pages");
        let backend = FileBackend::create(&path).unwrap();
        assert!(matches!(
            backend.read_page(0),
            Err(StoreError::NoSuchPage { page: 0, pages: 0 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_backend_out_of_range_read_is_typed() {
        let b = MemBackend::new();
        assert!(matches!(
            b.read_page(3),
            Err(StoreError::NoSuchPage { page: 3, pages: 0 })
        ));
    }

    #[test]
    fn empty_store() {
        let store = PagedTripleStore::bulk_load(MemBackend::new(), &[]).unwrap();
        let pool = BufferPool::new(4);
        assert!(store.is_empty());
        assert!(store.scan_subject_range(&pool, 0, 10).unwrap().is_empty());
        assert!(store.scan_all(&pool).unwrap().is_empty());
    }
}
