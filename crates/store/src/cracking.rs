//! Adaptive indexing: database cracking.
//!
//! §2: "*The dynamic setting prevents modern systems from preprocessing the
//! data. [...] In this context, an adaptive indexing approach \[67\] is used
//! in \[144\], where the indexes are created incrementally and adaptively
//! throughout exploration.*"
//!
//! [`CrackerColumn`] implements classic database cracking (Idreos et al.,
//! CIDR 2007) over an `f64` column: each range query partitions only the
//! piece(s) of the array its bounds fall into, recording the resulting
//! pivots in a cracker index. Early queries pay a little (two partial
//! partitions); the column converges toward sorted exactly where the user
//! explores — ideal for the survey's exploration scenario, where "only a
//! small fragment of data \[is\] accessed".
//!
//! Two baselines for experiment E4 live here too: [`ScanColumn`] (no
//! index, O(n) per query) and [`SortedColumn`] (full upfront sort,
//! O(log n + k) per query).

use std::collections::BTreeMap;

/// Total-ordered f64 key for the cracker index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct F64Key(f64);

impl Eq for F64Key {}

impl PartialOrd for F64Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A column of `(value, row_id)` pairs indexed adaptively by cracking.
#[derive(Debug, Clone)]
pub struct CrackerColumn {
    data: Vec<(f64, u32)>,
    /// pivot value → split position: everything left of the position is
    /// `< pivot`, everything at/right of it is `>= pivot`.
    index: BTreeMap<F64Key, usize>,
    /// Element moves performed by cracking so far (work accounting).
    swaps: u64,
}

impl CrackerColumn {
    /// Wraps a column; row ids are assigned by position.
    pub fn new(values: &[f64]) -> CrackerColumn {
        CrackerColumn {
            data: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect(),
            index: BTreeMap::new(),
            swaps: 0,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of pieces the column is currently split into.
    pub fn pieces(&self) -> usize {
        self.index.len() + 1
    }

    /// Total element moves performed by cracking.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Cracks the column on `v`, returning the split position such that
    /// `data[..pos] < v` and `data[pos..] >= v`. Idempotent per pivot.
    pub fn crack(&mut self, v: f64) -> usize {
        let key = F64Key(v);
        if let Some(&pos) = self.index.get(&key) {
            return pos;
        }
        // Locate the enclosing piece [lo, hi).
        let lo = self
            .index
            .range(..key)
            .next_back()
            .map(|(_, &p)| p)
            .unwrap_or(0);
        let hi = self
            .index
            .range(key..)
            .next()
            .map(|(_, &p)| p)
            .unwrap_or(self.data.len());
        // Two-pointer partition of data[lo..hi] by `< v`.
        let mut i = lo;
        let mut j = hi;
        while i < j {
            if self.data[i].0 < v {
                i += 1;
            } else {
                j -= 1;
                self.data.swap(i, j);
                self.swaps += 1;
            }
        }
        self.index.insert(key, i);
        i
    }

    /// Answers the half-open range query `[lo, hi)`, cracking as a side
    /// effect. Returns the matching `(value, row_id)` pairs as a slice of
    /// the (reorganized) column.
    pub fn range(&mut self, lo: f64, hi: f64) -> &[(f64, u32)] {
        if lo >= hi {
            return &[];
        }
        let a = self.crack(lo);
        let b = self.crack(hi);
        &self.data[a..b]
    }

    /// Count-only variant of [`CrackerColumn::range`].
    pub fn range_count(&mut self, lo: f64, hi: f64) -> usize {
        self.range(lo, hi).len()
    }

    /// Validates internal invariants (test/debug helper): every recorded
    /// pivot actually partitions the data.
    pub fn check_invariants(&self) -> bool {
        for (&F64Key(v), &pos) in &self.index {
            if self.data[..pos].iter().any(|&(x, _)| x >= v) {
                return false;
            }
            if self.data[pos..].iter().any(|&(x, _)| x < v) {
                return false;
            }
        }
        true
    }
}

/// Baseline: unindexed column answered by full scans.
#[derive(Debug, Clone)]
pub struct ScanColumn {
    data: Vec<(f64, u32)>,
}

impl ScanColumn {
    /// Wraps a column.
    pub fn new(values: &[f64]) -> ScanColumn {
        ScanColumn {
            data: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u32))
                .collect(),
        }
    }

    /// Scans for `[lo, hi)`.
    pub fn range(&self, lo: f64, hi: f64) -> Vec<(f64, u32)> {
        self.data
            .iter()
            .filter(|&&(v, _)| v >= lo && v < hi)
            .copied()
            .collect()
    }

    /// Count-only scan.
    pub fn range_count(&self, lo: f64, hi: f64) -> usize {
        self.data
            .iter()
            .filter(|&&(v, _)| v >= lo && v < hi)
            .count()
    }
}

/// Baseline: fully sorted column answered by binary search.
#[derive(Debug, Clone)]
pub struct SortedColumn {
    data: Vec<(f64, u32)>,
}

impl SortedColumn {
    /// Sorts the column upfront (the preprocessing the dynamic setting
    /// disallows; here as the other endpoint of the E4 tradeoff).
    pub fn new(values: &[f64]) -> SortedColumn {
        let mut data: Vec<(f64, u32)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        data.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        SortedColumn { data }
    }

    /// Binary-searched `[lo, hi)` range.
    pub fn range(&self, lo: f64, hi: f64) -> &[(f64, u32)] {
        let a = self.data.partition_point(|&(v, _)| v < lo);
        let b = self.data.partition_point(|&(v, _)| v < hi);
        &self.data[a..b]
    }

    /// Count-only range.
    pub fn range_count(&self, lo: f64, hi: f64) -> usize {
        self.range(lo, hi).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random values without pulling rand in here.
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 100_000) as f64 / 100.0
            })
            .collect()
    }

    #[test]
    fn crack_partitions_correctly() {
        let vals = column(1000, 1);
        let mut c = CrackerColumn::new(&vals);
        let pos = c.crack(500.0);
        assert!(c.data[..pos].iter().all(|&(v, _)| v < 500.0));
        assert!(c.data[pos..].iter().all(|&(v, _)| v >= 500.0));
        assert!(c.check_invariants());
    }

    #[test]
    fn crack_is_idempotent() {
        let vals = column(500, 2);
        let mut c = CrackerColumn::new(&vals);
        let p1 = c.crack(300.0);
        let swaps = c.swaps();
        let p2 = c.crack(300.0);
        assert_eq!(p1, p2);
        assert_eq!(c.swaps(), swaps, "repeat crack must do no work");
    }

    #[test]
    fn range_matches_scan_baseline() {
        let vals = column(2000, 3);
        let scan = ScanColumn::new(&vals);
        let mut crack = CrackerColumn::new(&vals);
        for (lo, hi) in [(100.0, 200.0), (0.0, 999.0), (500.0, 501.0), (900.0, 950.0)] {
            let mut got: Vec<_> = crack.range(lo, hi).to_vec();
            let mut want = scan.range(lo, hi);
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got, want, "range [{lo},{hi})");
            assert!(crack.check_invariants());
        }
    }

    #[test]
    fn range_matches_sorted_baseline() {
        let vals = column(2000, 4);
        let sorted = SortedColumn::new(&vals);
        let mut crack = CrackerColumn::new(&vals);
        for (lo, hi) in [(10.0, 50.0), (600.0, 800.0)] {
            assert_eq!(crack.range_count(lo, hi), sorted.range_count(lo, hi));
        }
    }

    #[test]
    fn pieces_grow_with_distinct_queries() {
        let vals = column(1000, 5);
        let mut c = CrackerColumn::new(&vals);
        assert_eq!(c.pieces(), 1);
        c.range(100.0, 200.0);
        assert_eq!(c.pieces(), 3);
        c.range(300.0, 400.0);
        assert_eq!(c.pieces(), 5);
        c.range(100.0, 400.0); // both pivots known
        assert_eq!(c.pieces(), 5);
    }

    #[test]
    fn zoom_in_sequence_cracks_cheaper_each_time() {
        // Exploration locality: each query nests inside the previous one,
        // so cracking touches ever smaller pieces.
        let vals = column(100_000, 6);
        let mut c = CrackerColumn::new(&vals);
        let mut last = u64::MAX;
        let mut bounds = (0.0, 1000.0);
        for _ in 0..5 {
            let before = c.swaps();
            c.range(bounds.0, bounds.1);
            let work = c.swaps() - before;
            assert!(work <= last, "work must shrink while zooming in");
            last = work.max(1);
            let mid = (bounds.0 + bounds.1) / 2.0;
            let quarter = (bounds.1 - bounds.0) / 4.0;
            bounds = (mid - quarter, mid + quarter);
        }
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let vals = column(100, 7);
        let mut c = CrackerColumn::new(&vals);
        assert!(c.range(5.0, 5.0).is_empty());
        assert!(c.range(10.0, 5.0).is_empty());
        let mut empty = CrackerColumn::new(&[]);
        assert!(empty.range(0.0, 1.0).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn sorted_column_range_bounds() {
        let sorted = SortedColumn::new(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let r = sorted.range(2.0, 4.0);
        assert_eq!(
            r.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            vec![2.0, 3.0]
        );
    }

    #[test]
    fn row_ids_preserved_through_cracking() {
        let vals = vec![30.0, 10.0, 20.0, 40.0];
        let mut c = CrackerColumn::new(&vals);
        let r: Vec<_> = c.range(15.0, 35.0).to_vec();
        let mut ids: Vec<u32> = r.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2]); // rows of 30.0 and 20.0
    }
}
