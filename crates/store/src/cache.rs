//! A generic LRU result cache.
//!
//! §4: "*caching and prefetching techniques may be exploited*" [16, 33, 39,
//! 70, 76, 83, 128]. The cache here is the memoization layer exploration
//! sessions put in front of expensive operations (query evaluation, layout,
//! HETree subtree construction): exploration revisits state constantly
//! (zoom out after zoom in, back-navigation), so recency is the right
//! eviction signal.

use std::collections::HashMap;
use std::hash::Hash;

/// Cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in \[0, 1\]; 0 when empty.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU map.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    clock: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a key, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(key) {
            Some((v, stamp)) => {
                *stamp = clock;
                self.stats.hits += 1;
                Some(&*v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks membership without touching recency or stats.
    pub fn peek(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Looks up a key without touching recency or stats — for callers
    /// that already accounted the lookup and only need the value (e.g.
    /// a single-flight re-check after losing a race).
    pub fn peek_value(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Inserts a value, evicting the least-recently-used entry if full.
    pub fn put(&mut self, key: K, value: V) {
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(key, (value, self.clock));
    }

    /// Returns the cached value for `key`, computing and inserting it on a
    /// miss.
    pub fn get_or_insert_with(&mut self, key: K, compute: impl FnOnce() -> V) -> &V {
        if self.get(&key).is_some() {
            // Re-borrow to satisfy the borrow checker.
            return &self.map.get(&key).unwrap().0;
        }
        let v = compute();
        self.put(key.clone(), v);
        &self.map.get(&key).unwrap().0
    }

    /// Empties the cache and resets counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_roundtrip() {
        let mut c: LruCache<&str, i32> = LruCache::new(4);
        assert!(c.get(&"a").is_none());
        c.put("a", 1);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut c: LruCache<i32, i32> = LruCache::new(2);
        c.put(1, 1);
        c.put(2, 2);
        c.get(&1); // 1 is now most recent
        c.put(3, 3); // evicts 2
        assert!(c.peek(&1));
        assert!(!c.peek(&2));
        assert!(c.peek(&3));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn put_existing_does_not_evict() {
        let mut c: LruCache<i32, i32> = LruCache::new(2);
        c.put(1, 1);
        c.put(2, 2);
        c.put(1, 10); // update, no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&1), Some(&10));
    }

    #[test]
    fn get_or_insert_with_computes_once() {
        let mut c: LruCache<i32, i32> = LruCache::new(4);
        let mut calls = 0;
        let v = *c.get_or_insert_with(7, || {
            calls += 1;
            42
        });
        assert_eq!(v, 42);
        let v2 = *c.get_or_insert_with(7, || {
            panic!("must not recompute");
        });
        assert_eq!(v2, 42);
        assert_eq!(calls, 1);
    }

    #[test]
    fn capacity_bounded_under_churn() {
        let mut c: LruCache<u32, u32> = LruCache::new(16);
        for i in 0..1000 {
            c.put(i, i);
        }
        assert_eq!(c.len(), 16);
        // The survivors are the 16 most recent.
        for i in 984..1000 {
            assert!(c.peek(&i));
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut c: LruCache<i32, i32> = LruCache::new(4);
        c.put(1, 1);
        c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), CacheStats::default());
    }
}
