//! Deterministic fault injection for the disk path.
//!
//! Resilience claims are untestable without a disk that actually fails.
//! [`FaultBackend`] wraps any [`PageBackend`] and injects, at configurable
//! rates, the three failure classes of the fault model:
//!
//! * **transient read errors** — the read returns
//!   [`StoreError::Transient`]; a retry sees a fresh (usually clean) draw,
//! * **torn/corrupt pages** — the read *succeeds* but returns bytes with a
//!   deterministic bit flipped, so only the page checksum can catch it;
//!   "sticky" corruption is keyed to the page alone and never heals,
//!   modelling real on-disk rot,
//! * **latency spikes** — the read sleeps before returning, modelling a
//!   contended or degraded device.
//!
//! Every decision is a pure function of `(seed, page, per-page read
//! index)` through the workspace's vendored SplitMix64 generator
//! ([`wodex_synth::rng`]), so a chaos run is exactly reproducible from its
//! seed — the property the `WODEX_FAULT_SEED` sweep in `scripts/verify.sh`
//! relies on.

use crate::paged::PageBackend;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;
use wodex_resilience::StoreError;
use wodex_synth::rng::{Rng, SeedableRng, StdRng};

/// Fault rates and the seed that fixes the injection schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injection schedule; equal seeds, equal faults.
    pub seed: u64,
    /// Probability a read fails with [`StoreError::Transient`].
    pub transient_rate: f64,
    /// Probability a read returns torn bytes (heals on re-read).
    pub torn_rate: f64,
    /// Per-page probability the page is *permanently* corrupt.
    pub sticky_corrupt_rate: f64,
    /// Probability a read sleeps for [`FaultConfig::latency_spike`].
    pub latency_spike_rate: f64,
    /// Duration of an injected latency spike.
    pub latency_spike: Duration,
}

impl FaultConfig {
    /// A configuration that injects nothing (rates all zero).
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            transient_rate: 0.0,
            torn_rate: 0.0,
            sticky_corrupt_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: Duration::ZERO,
        }
    }

    /// A chaos profile: `rate` split across transient faults and torn
    /// reads, with occasional microsecond latency spikes. Sticky
    /// corruption stays off (it makes pages unreadable by design); tests
    /// that want it set `sticky_corrupt_rate` explicitly.
    pub fn chaos(seed: u64, rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            transient_rate: rate * 0.6,
            torn_rate: rate * 0.4,
            sticky_corrupt_rate: 0.0,
            latency_spike_rate: rate * 0.1,
            latency_spike: Duration::from_micros(20),
        }
    }
}

/// Counters for what [`FaultBackend`] actually injected.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Reads that failed with an injected transient error.
    pub transient: AtomicU64,
    /// Reads that returned torn (healing) bytes.
    pub torn: AtomicU64,
    /// Reads of sticky-corrupt pages (bytes always bad).
    pub sticky: AtomicU64,
    /// Reads delayed by a latency spike.
    pub latency_spikes: AtomicU64,
}

/// A plain-value snapshot of [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Injected transient failures.
    pub transient: u64,
    /// Torn reads returned.
    pub torn: u64,
    /// Sticky-corrupt reads returned.
    pub sticky: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
}

impl FaultSnapshot {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.transient + self.torn + self.sticky + self.latency_spikes
    }
}

/// A [`PageBackend`] wrapper that injects deterministic faults.
pub struct FaultBackend<B: PageBackend> {
    inner: B,
    config: FaultConfig,
    /// Per-page read index — the "time" axis of the injection schedule.
    read_index: Mutex<HashMap<u32, u64>>,
    stats: FaultStats,
}

impl<B: PageBackend> FaultBackend<B> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: B, config: FaultConfig) -> FaultBackend<B> {
        FaultBackend {
            inner,
            config,
            read_index: Mutex::new(HashMap::new()),
            stats: FaultStats::default(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// What has been injected so far.
    pub fn fault_stats(&self) -> FaultSnapshot {
        FaultSnapshot {
            transient: self.stats.transient.load(Ordering::Relaxed),
            torn: self.stats.torn.load(Ordering::Relaxed),
            sticky: self.stats.sticky.load(Ordering::Relaxed),
            latency_spikes: self.stats.latency_spikes.load(Ordering::Relaxed),
        }
    }

    /// True when `page` is permanently corrupt under this seed.
    pub fn is_sticky_corrupt(&self, page: u32) -> bool {
        if self.config.sticky_corrupt_rate <= 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(page as u64), // page-only key: never heals
        );
        rng.random_range(0.0..1.0) < self.config.sticky_corrupt_rate
    }

    /// The decision stream for one `(page, read index)` pair.
    fn decision_rng(&self, page: u32, index: u64) -> StdRng {
        let k = self
            .config
            .seed
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add((page as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(index);
        StdRng::seed_from_u64(k)
    }

    /// Flips one payload byte at an rng-chosen position.
    fn tear(data: &mut [u8], rng: &mut StdRng) {
        if data.is_empty() {
            return;
        }
        let pos = rng.random_range(0..data.len());
        data[pos] ^= 0xA5;
    }
}

impl<B: PageBackend> PageBackend for FaultBackend<B> {
    fn read_page(&self, id: u32) -> Result<Vec<u8>, StoreError> {
        let index = {
            let mut map = self
                .read_index
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = map.entry(id).or_insert(0);
            let i = *slot;
            *slot += 1;
            i
        };
        // Fixed draw order keeps the schedule a pure function of
        // (seed, page, index) no matter which rates are enabled.
        let mut rng = self.decision_rng(id, index);
        let latency_draw: f64 = rng.random_range(0.0..1.0);
        let transient_draw: f64 = rng.random_range(0.0..1.0);
        let torn_draw: f64 = rng.random_range(0.0..1.0);
        if latency_draw < self.config.latency_spike_rate {
            self.stats.latency_spikes.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.config.latency_spike);
        }
        if transient_draw < self.config.transient_rate {
            self.stats.transient.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Transient {
                op: "read_page",
                detail: format!("injected fault (page {id}, read {index})"),
            });
        }
        let mut data = self.inner.read_page(id)?;
        if self.is_sticky_corrupt(id) {
            self.stats.sticky.fetch_add(1, Ordering::Relaxed);
            let mut sticky_rng = StdRng::seed_from_u64(self.config.seed ^ (id as u64) << 17);
            Self::tear(&mut data, &mut sticky_rng);
            return Ok(data);
        }
        if torn_draw < self.config.torn_rate {
            self.stats.torn.fetch_add(1, Ordering::Relaxed);
            Self::tear(&mut data, &mut rng);
        }
        Ok(data)
    }

    fn append_page(&mut self, data: &[u8]) -> Result<u32, StoreError> {
        self.inner.append_page(data)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::paged::{decode_page, MemBackend, PagedTripleStore, TRIPLES_PER_PAGE};

    fn loaded(config: FaultConfig, subjects: u32) -> PagedTripleStore<FaultBackend<MemBackend>> {
        let mut triples = Vec::new();
        for s in 0..subjects {
            triples.push([s, 0, s]);
        }
        PagedTripleStore::bulk_load(FaultBackend::new(MemBackend::new(), config), &triples)
            .expect("appends are not faulted")
    }

    #[test]
    fn quiet_config_injects_nothing() {
        let store = loaded(FaultConfig::quiet(1), 5000);
        let pool = BufferPool::new(64);
        let all = store.scan_all(&pool).unwrap();
        assert_eq!(all.len(), 5000);
        assert_eq!(store.backend().fault_stats().total(), 0);
        assert_eq!(store.retry_stats().retries, 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let make = || {
            let cfg = FaultConfig {
                latency_spike_rate: 0.0, // keep the test fast
                ..FaultConfig::chaos(42, 0.3)
            };
            let b = FaultBackend::new(MemBackend::new(), cfg);
            let mut triples = Vec::new();
            for s in 0..(TRIPLES_PER_PAGE as u32 * 4) {
                triples.push([s, 0, s]);
            }
            let store = PagedTripleStore::bulk_load(b, &triples).unwrap();
            let pool = BufferPool::new(2);
            for _ in 0..3 {
                let _ = store.scan_all(&pool);
            }
            store.backend().fault_stats()
        };
        let a = make();
        let b = make();
        assert_eq!(a, b, "schedule must be a pure function of the seed");
        assert!(a.total() > 0, "a 30% chaos profile should inject something");
    }

    #[test]
    fn transient_faults_are_healed_by_retry() {
        let cfg = FaultConfig {
            transient_rate: 0.3,
            ..FaultConfig::quiet(7)
        };
        let store = loaded(cfg, TRIPLES_PER_PAGE as u32 * 8);
        let pool = BufferPool::new(64);
        let all = store.scan_all(&pool).expect("retries should absorb 30%");
        assert_eq!(all.len(), TRIPLES_PER_PAGE * 8);
        let rs = store.retry_stats();
        assert!(rs.retries > 0, "some reads must have been retried");
        assert!(rs.recoveries > 0);
        assert_eq!(rs.giveups, 0);
    }

    #[test]
    fn torn_reads_are_caught_by_checksum_and_healed() {
        let cfg = FaultConfig {
            torn_rate: 0.3,
            ..FaultConfig::quiet(11)
        };
        let store = loaded(cfg, TRIPLES_PER_PAGE as u32 * 8);
        let pool = BufferPool::new(64);
        let all = store.scan_all(&pool).expect("torn reads heal on retry");
        assert_eq!(all.len(), TRIPLES_PER_PAGE * 8);
        assert!(store.backend().fault_stats().torn > 0);
    }

    #[test]
    fn sticky_corruption_exhausts_retries_with_a_typed_error() {
        let cfg = FaultConfig {
            sticky_corrupt_rate: 1.0, // every page is rotten
            ..FaultConfig::quiet(13)
        };
        let store = loaded(cfg, 100);
        let pool = BufferPool::new(4);
        let err = store.scan_all(&pool).unwrap_err();
        assert!(
            matches!(err, StoreError::RetriesExhausted { .. }),
            "got {err:?}"
        );
        assert!(store.retry_stats().giveups > 0);
    }

    #[test]
    fn torn_bytes_really_fail_the_checksum() {
        let cfg = FaultConfig {
            torn_rate: 1.0,
            ..FaultConfig::quiet(17)
        };
        let backend = FaultBackend::new(MemBackend::new(), cfg);
        let mut triples = Vec::new();
        for s in 0..50 {
            triples.push([s, 0, s]);
        }
        let store = PagedTripleStore::bulk_load(backend, &triples).unwrap();
        let raw = store.backend().read_page(0).unwrap();
        assert!(decode_page(&raw).is_err(), "every read is torn at rate 1.0");
    }

    #[test]
    fn latency_spikes_only_delay() {
        let cfg = FaultConfig {
            latency_spike_rate: 1.0,
            latency_spike: Duration::from_micros(1),
            ..FaultConfig::quiet(19)
        };
        let store = loaded(cfg, 200);
        let pool = BufferPool::new(4);
        assert_eq!(store.scan_all(&pool).unwrap().len(), 200);
        assert!(store.backend().fault_stats().latency_spikes > 0);
    }
}
