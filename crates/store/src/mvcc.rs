//! MVCC snapshot writes over the layered store.
//!
//! The survey's "dynamic setting" demands more than streaming inserts:
//! exploration sessions, cached plans, and in-flight queries must keep a
//! *consistent point-in-time view* while writers keep committing. Before
//! this module, every mutation bumped [`TripleStore::revision`] in place,
//! wholesale-invalidating anything keyed on it. [`LiveStore`] replaces
//! that with multi-version concurrency control in the LSM shape the rest
//! of the store already speaks:
//!
//! * Readers call [`LiveStore::snapshot`] and get an immutable
//!   [`Snapshot`] — an `Arc`'d [`TripleStore`] pinned to a commit
//!   revision. Snapshots are never mutated, so a reader's whole query
//!   (or exploration session) sees one frozen state, and the plan cache
//!   key (`store.revision()`) stays *stable* for as long as the snapshot
//!   lives — concurrent writes stop evicting hot plans.
//! * Writers batch mutations into a [`WriteBatch`] and
//!   [`LiveStore::commit`] it: the new version is a [`TripleStore`]
//!   layered over the previous snapshot via
//!   [`TripleStore::with_base`] — the commit cost is proportional to the
//!   batch, not to the dataset. Every `commit_every`-th commit the
//!   overlay chain is *flattened* back into a single-level store so read
//!   amplification stays bounded.
//! * Each commit publishes a revision-stamped [`DeltaFrame`] holding the
//!   *effective* changes (inserts that were new, deletes that were
//!   present) plus any newly interned terms. Frames feed incremental
//!   synopsis maintenance (`wodex-approx` / `wodex-hetree` live
//!   structures), the `wodex-seg` delta log (write-ahead durability),
//!   and server-push to open exploration sessions
//!   (`/explore/subscribe`).
//!
//! **Isolation contract**: a snapshot observes either all of a committed
//! batch or none of it, never a prefix. Commits are serialized by an
//! internal lock; publication is a single pointer swap under a mutex.
//! `tests/mvcc.rs` proves the contract differentially against a serial
//! replay.

use crate::encoded::EncodedTriple;
use crate::memstore::TripleStore;
use crate::segment::SegmentSource;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};
use wodex_obs::{Counter, Gauge};
use wodex_rdf::{Term, TermId, Triple};
use wodex_resilience::StoreError;

/// Default bound on the frame history kept for subscribers.
pub const DEFAULT_HISTORY_CAP: usize = 256;

/// Default overlay-chain depth at which a commit flattens the chain
/// back into a single-level store.
pub const DEFAULT_FLATTEN_DEPTH: usize = 8;

/// Global-registry series for the MVCC layer.
struct MvccMetrics {
    commits: Arc<Counter>,
    inserts: Arc<Counter>,
    deletes: Arc<Counter>,
    flattens: Arc<Counter>,
    wal_failures: Arc<Counter>,
    frames_pruned: Arc<Counter>,
    revision: Arc<Gauge>,
}

fn metrics() -> &'static MvccMetrics {
    static METRICS: OnceLock<MvccMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        MvccMetrics {
            commits: r.counter(
                "wodex_mvcc_commits_total",
                "Write batches committed to live stores",
            ),
            inserts: r.counter(
                "wodex_mvcc_inserts_total",
                "Effective triple inserts across committed batches",
            ),
            deletes: r.counter(
                "wodex_mvcc_deletes_total",
                "Effective triple deletes across committed batches",
            ),
            flattens: r.counter(
                "wodex_mvcc_flattens_total",
                "Overlay chains flattened back into single-level stores",
            ),
            wal_failures: r.counter(
                "wodex_mvcc_wal_failures_total",
                "Commits aborted by a write-ahead sink error (snapshot unchanged)",
            ),
            frames_pruned: r.counter(
                "wodex_mvcc_frames_pruned_total",
                "Delta frames dropped from bounded subscriber history",
            ),
            revision: r.gauge(
                "wodex_mvcc_revision",
                "Highest committed revision across live stores",
            ),
        }
    })
}

/// A batch of decoded mutations applied atomically by
/// [`LiveStore::commit`]. Deletes apply before inserts, so one batch can
/// replace a triple in place.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    /// Triples to insert (duplicates of live triples are no-ops).
    pub inserts: Vec<Triple>,
    /// Triples to delete (absent triples are no-ops).
    pub deletes: Vec<Triple>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queues an insert.
    pub fn insert(&mut self, t: Triple) -> &mut WriteBatch {
        self.inserts.push(t);
        self
    }

    /// Queues a delete.
    pub fn delete(&mut self, t: Triple) -> &mut WriteBatch {
        self.deletes.push(t);
        self
    }

    /// Total queued operations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// The *effective* changes of one commit, stamped with the revision they
/// produced. Inserts that already existed and deletes of absent triples
/// are not recorded — applying a frame to revision `r-1` yields exactly
/// revision `r`, which is what makes frames sufficient for incremental
/// synopsis maintenance and subscriber push.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFrame {
    /// The revision this frame produced (frames are dense: 1, 2, …).
    pub revision: u64,
    /// Encoded triples added by the commit.
    pub inserts: Vec<EncodedTriple>,
    /// Encoded triples removed by the commit.
    pub deletes: Vec<EncodedTriple>,
    /// Terms interned by this commit, in id order — the id space
    /// extension `[dict_len_before, dict_len_after)`. Carried so a
    /// durable log (or a remote subscriber) can decode the new ids
    /// without the full dictionary.
    pub new_terms: Vec<Term>,
}

impl DeltaFrame {
    /// True when the frame changed nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// An immutable point-in-time view of a [`LiveStore`].
///
/// The wrapped [`TripleStore`] is never mutated after publication, so
/// its [`TripleStore::revision`] is stable — queries evaluated against
/// it keep hitting the same plan-cache entries no matter how many
/// commits land concurrently.
#[derive(Debug, Clone)]
pub struct Snapshot {
    revision: u64,
    store: Arc<TripleStore>,
}

impl Snapshot {
    /// The commit revision this snapshot is pinned to (0 = initial).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The frozen store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The frozen store, shared.
    pub fn store_arc(&self) -> Arc<TripleStore> {
        Arc::clone(&self.store)
    }
}

/// The outcome of a successful [`LiveStore::commit`].
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// The published frame (empty and unpublished for a no-op batch).
    pub frame: Arc<DeltaFrame>,
    /// The snapshot the commit produced (the pre-commit snapshot for a
    /// no-op batch).
    pub snapshot: Snapshot,
}

/// The answer to "what changed since revision `r`?".
#[derive(Debug, Clone)]
pub struct FramesSince {
    /// Frames with `revision > since`, oldest first. Empty when the
    /// subscriber is current (or must resync).
    pub frames: Vec<Arc<DeltaFrame>>,
    /// The current head revision.
    pub revision: u64,
    /// True when the subscriber's cursor is unusable: `since` predates
    /// the bounded history (frames were pruned) or runs *ahead* of the
    /// current head (a cursor from a previous process lifetime whose
    /// revisions restarted). Either way the subscriber must re-read
    /// from a fresh snapshot instead of applying frames.
    pub resync: bool,
}

struct LiveState {
    current: Snapshot,
    /// Overlay levels stacked since the last flatten.
    depth: usize,
    history: VecDeque<Arc<DeltaFrame>>,
}

/// A sink invoked with each frame *before* it is published — the seam
/// the `wodex-seg` delta log plugs into for write-ahead durability. An
/// error aborts the commit: the in-memory snapshot never runs ahead of
/// the log, so there is no torn state to recover.
pub type WalSink = Box<dyn FnMut(&DeltaFrame) -> Result<(), StoreError> + Send>;

/// A multi-version store: immutable snapshots for readers, serialized
/// write batches for writers, bounded delta history for subscribers.
pub struct LiveStore {
    /// Serializes commits (held across version construction, *not* held
    /// while readers take snapshots).
    commit_lock: Mutex<()>,
    state: Mutex<LiveState>,
    publish: Condvar,
    history_cap: usize,
    flatten_depth: usize,
    wal: Mutex<Option<WalSink>>,
}

impl std::fmt::Debug for LiveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("LiveStore")
            .field("revision", &st.current.revision)
            .field("depth", &st.depth)
            .field("history", &st.history.len())
            .finish()
    }
}

impl LiveStore {
    /// Wraps an initial store as revision 0. The store is taken as-is —
    /// at write rate 0 a snapshot *is* the original store, so the
    /// snapshot read path adds nothing over querying it directly.
    pub fn new(initial: TripleStore) -> LiveStore {
        LiveStore::with_options(initial, DEFAULT_HISTORY_CAP, DEFAULT_FLATTEN_DEPTH)
    }

    /// [`LiveStore::new`] pinned to a non-zero starting revision — for
    /// reopening a durable store whose WAL replay ended at `revision`.
    /// Seeding the replayed revision keeps revisions ascending across
    /// process lifetimes (instead of restarting at 0), so a subscriber
    /// cursor from before a restart either resumes cleanly or is
    /// detected as stale by [`LiveStore::frames_since`] rather than
    /// silently treated as current.
    pub fn at_revision(initial: TripleStore, revision: u64) -> LiveStore {
        LiveStore::with_options_at(
            initial,
            revision,
            DEFAULT_HISTORY_CAP,
            DEFAULT_FLATTEN_DEPTH,
        )
    }

    /// [`LiveStore::new`] with explicit history and flatten bounds.
    pub fn with_options(
        initial: TripleStore,
        history_cap: usize,
        flatten_depth: usize,
    ) -> LiveStore {
        LiveStore::with_options_at(initial, 0, history_cap, flatten_depth)
    }

    /// [`LiveStore::at_revision`] with explicit history and flatten
    /// bounds.
    pub fn with_options_at(
        initial: TripleStore,
        revision: u64,
        history_cap: usize,
        flatten_depth: usize,
    ) -> LiveStore {
        let _ = metrics();
        LiveStore {
            commit_lock: Mutex::new(()),
            state: Mutex::new(LiveState {
                current: Snapshot {
                    revision,
                    store: Arc::new(initial),
                },
                depth: 0,
                history: VecDeque::new(),
            }),
            publish: Condvar::new(),
            history_cap: history_cap.max(1),
            flatten_depth: flatten_depth.max(1),
            wal: Mutex::new(None),
        }
    }

    /// Installs the write-ahead sink (replacing any previous one).
    pub fn set_wal(&self, sink: WalSink) {
        *self.wal.lock().unwrap_or_else(PoisonError::into_inner) = Some(sink);
    }

    /// The current snapshot — a cheap `Arc` clone under a short lock.
    pub fn snapshot(&self) -> Snapshot {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .current
            .clone()
    }

    /// The current head revision.
    pub fn revision(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .current
            .revision
    }

    /// Applies a batch atomically, publishing a new snapshot and frame.
    ///
    /// Serialized with other commits; readers are never blocked for the
    /// duration (only for the final pointer swap). A batch with no
    /// effective change publishes nothing and returns the pre-commit
    /// snapshot. A write-ahead sink error aborts the commit with the
    /// snapshot unchanged — **no torn snapshots**.
    pub fn commit(&self, batch: &WriteBatch) -> Result<CommitOutcome, StoreError> {
        let _serial = self
            .commit_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (prev, depth) = {
            let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            (st.current.clone(), st.depth)
        };
        let base = prev.store_arc();
        let dict_len_before = base.dict().len();
        let mut next = TripleStore::with_base(
            base.dict().clone(),
            Arc::clone(&base) as Arc<dyn SegmentSource>,
        );
        let mut frame = DeltaFrame {
            revision: prev.revision + 1,
            inserts: Vec::new(),
            deletes: Vec::new(),
            new_terms: Vec::new(),
        };
        for t in &batch.deletes {
            if let Some(enc) = encode(&next, t) {
                if next.remove_encoded(enc) {
                    frame.deletes.push(enc);
                }
            }
        }
        for t in &batch.inserts {
            if next.insert(t) {
                let enc = encode(&next, t).expect("inserted terms are interned");
                frame.inserts.push(enc);
            }
        }
        if frame.is_empty() {
            return Ok(CommitOutcome {
                frame: Arc::new(frame),
                snapshot: prev,
            });
        }
        for i in dict_len_before..next.dict().len() {
            frame
                .new_terms
                .push(next.dict().term(TermId(i as u32)).clone());
        }
        // Bound read amplification: past the depth limit, fold the whole
        // overlay chain into one single-level store. Contents (and hence
        // the differential-replay contract) are unchanged.
        let mut new_depth = depth + 1;
        if new_depth >= self.flatten_depth {
            let sorted = next.snapshot_sorted();
            next = TripleStore::from_encoded(next.dict().clone(), sorted);
            new_depth = 0;
            metrics().flattens.inc();
        }
        if let Some(sink) = self
            .wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_mut()
        {
            if let Err(e) = sink(&frame) {
                metrics().wal_failures.inc();
                return Err(e);
            }
        }
        let frame = Arc::new(frame);
        let snapshot = Snapshot {
            revision: frame.revision,
            store: Arc::new(next),
        };
        {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.current = snapshot.clone();
            st.depth = new_depth;
            st.history.push_back(Arc::clone(&frame));
            while st.history.len() > self.history_cap {
                st.history.pop_front();
                metrics().frames_pruned.inc();
            }
        }
        self.publish.notify_all();
        let m = metrics();
        m.commits.inc();
        m.inserts.add(frame.inserts.len() as u64);
        m.deletes.add(frame.deletes.len() as u64);
        m.revision.set(frame.revision as i64);
        Ok(CommitOutcome { frame, snapshot })
    }

    /// Frames committed after revision `since`, oldest first. If the
    /// bounded history no longer reaches back to `since + 1`, or
    /// `since` runs ahead of the current head (a cursor minted by a
    /// previous process lifetime), the subscriber must resync from a
    /// fresh snapshot instead.
    pub fn frames_since(&self, since: u64) -> FramesSince {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let revision = st.current.revision;
        if since == revision {
            return FramesSince {
                frames: Vec::new(),
                revision,
                resync: false,
            };
        }
        // A cursor past the head cannot have come from this store's
        // history — revisions restart when a process does. Telling the
        // subscriber it is current would silently detach it from every
        // subsequent commit; telling it to resync re-anchors it.
        if since > revision {
            return FramesSince {
                frames: Vec::new(),
                revision,
                resync: true,
            };
        }
        match st.history.front() {
            Some(front) if front.revision <= since + 1 => FramesSince {
                frames: st
                    .history
                    .iter()
                    .filter(|f| f.revision > since)
                    .cloned()
                    .collect(),
                revision,
                resync: false,
            },
            _ => FramesSince {
                frames: Vec::new(),
                revision,
                resync: true,
            },
        }
    }

    /// Blocks until a frame newer than `since` is published (or the
    /// timeout elapses), then returns [`LiveStore::frames_since`]. The
    /// long-poll primitive behind `/explore/subscribe`. A stale cursor
    /// (`since` past the head) answers immediately with `resync` set
    /// instead of burning the whole timeout.
    pub fn wait_for_frames(&self, since: u64, timeout: Duration) -> FramesSince {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.current.revision == since {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _timed_out) = self
                .publish
                .wait_timeout(st, left)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        drop(st);
        self.frames_since(since)
    }
}

/// Encodes a decoded triple against a store's dictionary, `None` when a
/// term is not interned (the triple cannot be present).
fn encode(store: &TripleStore, t: &Triple) -> Option<EncodedTriple> {
    let s = store.id_of(&t.subject)?;
    let p = store.id_of(&t.predicate)?;
    let o = store.id_of(&t.object)?;
    Some([s.0, p.0, o.0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::Pattern;
    use wodex_rdf::vocab::rdfs;

    fn t(s: usize, o: usize) -> Triple {
        Triple::iri(
            &format!("http://e.org/s{s}"),
            rdfs::LABEL,
            Term::literal(format!("v{o}")),
        )
    }

    fn seed_store(n: usize) -> TripleStore {
        let mut st = TripleStore::new();
        for i in 0..n {
            st.insert(&t(i, i));
        }
        st.merge_tail();
        st
    }

    fn all_sorted(store: &TripleStore) -> Vec<EncodedTriple> {
        let mut v = store.match_pattern(Pattern::any());
        v.sort_unstable();
        v
    }

    fn decoded_sorted(store: &TripleStore) -> Vec<String> {
        let mut v: Vec<String> = store
            .match_pattern(Pattern::any())
            .into_iter()
            .map(|e| store.decode(e).to_string())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn snapshots_pin_state_across_commits() {
        let live = LiveStore::new(seed_store(10));
        let before = live.snapshot();
        assert_eq!(before.revision(), 0);
        let rev_before = before.store().revision();

        let mut batch = WriteBatch::new();
        batch.insert(t(100, 100)).delete(t(0, 0));
        let out = live.commit(&batch).expect("commit");
        assert_eq!(out.frame.revision, 1);
        assert_eq!(out.frame.inserts.len(), 1);
        assert_eq!(out.frame.deletes.len(), 1);

        // The old snapshot still sees the old state, bit for bit, and
        // its plan-cache key (the inner store revision) did not move.
        assert_eq!(before.store().len(), 10);
        assert!(before.store().contains(&t(0, 0)));
        assert!(!before.store().contains(&t(100, 100)));
        assert_eq!(before.store().revision(), rev_before);

        let after = live.snapshot();
        assert_eq!(after.revision(), 1);
        assert_eq!(after.store().len(), 10);
        assert!(!after.store().contains(&t(0, 0)));
        assert!(after.store().contains(&t(100, 100)));
    }

    #[test]
    fn empty_and_noop_batches_publish_nothing() {
        let live = LiveStore::new(seed_store(5));
        let out = live.commit(&WriteBatch::new()).expect("empty commit");
        assert_eq!(out.snapshot.revision(), 0);
        assert!(out.frame.is_empty());
        // Duplicate insert + absent delete = no effective change.
        let mut batch = WriteBatch::new();
        batch.insert(t(0, 0)).delete(t(999, 999));
        let out = live.commit(&batch).expect("noop commit");
        assert_eq!(out.snapshot.revision(), 0);
        assert!(out.frame.is_empty());
        assert_eq!(live.revision(), 0);
    }

    #[test]
    fn frames_replay_to_identical_state_and_flatten_is_invisible() {
        // Flatten every 3 commits so the test crosses the fold.
        let live = LiveStore::with_options(seed_store(20), 64, 3);
        let mut replay = seed_store(20);
        let initial_frames: Vec<Arc<DeltaFrame>> = (0..10)
            .map(|i| {
                let mut batch = WriteBatch::new();
                batch.insert(t(100 + i, i)).delete(t(i, i));
                live.commit(&batch).expect("commit").frame
            })
            .collect();
        for f in &initial_frames {
            assert!(!f.is_empty());
            for &e in &f.deletes {
                let dec = live.snapshot().store().decode(e);
                assert!(replay.remove(&dec));
            }
            for &e in &f.inserts {
                let dec = live.snapshot().store().decode(e);
                assert!(replay.insert(&dec));
            }
        }
        assert_eq!(live.revision(), 10);
        assert_eq!(
            decoded_sorted(live.snapshot().store()),
            decoded_sorted(&replay)
        );
        // The id space also matches the direct store exactly (same dict
        // growth order), so encoded comparisons hold too.
        assert_eq!(all_sorted(live.snapshot().store()), all_sorted(&replay));
    }

    #[test]
    fn frames_since_and_resync() {
        let live = LiveStore::with_options(seed_store(4), 3, 100);
        for i in 0..5 {
            let mut b = WriteBatch::new();
            b.insert(t(50 + i, i));
            live.commit(&b).expect("commit");
        }
        // Current subscriber: nothing new.
        let fs = live.frames_since(5);
        assert!(fs.frames.is_empty() && !fs.resync);
        // Recent subscriber: gets the tail of history.
        let fs = live.frames_since(3);
        assert_eq!(fs.frames.len(), 2);
        assert_eq!(fs.frames[0].revision, 4);
        assert!(!fs.resync);
        // Ancient subscriber: history (cap 3) no longer reaches back.
        let fs = live.frames_since(0);
        assert!(fs.resync);
        assert!(fs.frames.is_empty());
        assert_eq!(fs.revision, 5);
        // Stale subscriber: a cursor past the head (minted before a
        // restart reset revisions) must be told to resync, not that it
        // is current — otherwise it detaches from every future commit.
        let fs = live.frames_since(9);
        assert!(fs.resync);
        assert!(fs.frames.is_empty());
        assert_eq!(fs.revision, 5);
        // The long-poll answers a stale cursor immediately (resync)
        // instead of blocking out the timeout.
        let t0 = Instant::now();
        let fs = live.wait_for_frames(9, Duration::from_secs(5));
        assert!(fs.resync);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn at_revision_continues_the_replayed_sequence() {
        let live = LiveStore::at_revision(seed_store(3), 7);
        assert_eq!(live.revision(), 7);
        assert_eq!(live.snapshot().revision(), 7);
        // A subscriber holding the pre-restart head stays current...
        let fs = live.frames_since(7);
        assert!(!fs.resync && fs.frames.is_empty());
        let mut b = WriteBatch::new();
        b.insert(t(70, 70));
        let out = live.commit(&b).expect("commit");
        // ...and the next commit continues the sequence densely.
        assert_eq!(out.frame.revision, 8);
        let fs = live.frames_since(7);
        assert_eq!(fs.frames.len(), 1);
        assert!(!fs.resync);
    }

    #[test]
    fn wait_for_frames_times_out_and_wakes() {
        let live = Arc::new(LiveStore::new(seed_store(2)));
        // Timeout path.
        let fs = live.wait_for_frames(0, Duration::from_millis(10));
        assert!(fs.frames.is_empty() && fs.revision == 0);
        // Wake path.
        let live2 = Arc::clone(&live);
        let waiter = std::thread::spawn(move || live2.wait_for_frames(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        let mut b = WriteBatch::new();
        b.insert(t(9, 9));
        live.commit(&b).expect("commit");
        let fs = waiter.join().expect("join");
        assert_eq!(fs.frames.len(), 1);
        assert_eq!(fs.revision, 1);
    }

    #[test]
    fn wal_failure_aborts_commit_without_torn_snapshot() {
        let live = LiveStore::new(seed_store(3));
        live.set_wal(Box::new(|_f| {
            Err(StoreError::Io {
                op: "wal_append",
                detail: "injected wal failure".to_string(),
            })
        }));
        let mut b = WriteBatch::new();
        b.insert(t(7, 7));
        let err = live.commit(&b).expect_err("wal must abort the commit");
        assert!(matches!(err, StoreError::Io { .. }));
        assert_eq!(live.revision(), 0, "no revision published");
        assert!(!live.snapshot().store().contains(&t(7, 7)));
        // A healed sink lets the same batch through.
        live.set_wal(Box::new(|_f| Ok(())));
        live.commit(&b).expect("healed commit");
        assert_eq!(live.revision(), 1);
        assert!(live.snapshot().store().contains(&t(7, 7)));
    }

    #[test]
    fn new_terms_cover_the_id_extension() {
        let live = LiveStore::new(seed_store(1));
        let before = live.snapshot().store().dict().len();
        let mut b = WriteBatch::new();
        b.insert(t(42, 42));
        let out = live.commit(&b).expect("commit");
        let after = out.snapshot.store().dict().len();
        assert_eq!(out.frame.new_terms.len(), after - before);
        for (i, term) in out.frame.new_terms.iter().enumerate() {
            assert_eq!(
                out.snapshot
                    .store()
                    .dict()
                    .term(TermId((before + i) as u32)),
                term
            );
        }
    }
}
