//! Sorted permutation indexes over encoded triples.
//!
//! Each index stores every triple reordered so that a bound prefix of the
//! pattern becomes a contiguous run, found by two `partition_point` binary
//! searches. Three permutations (SPO, POS, OSP) cover every single-bound
//! and double-bound prefix:
//!
//! | bound          | index | prefix length |
//! |----------------|-------|----------------|
//! | s / s,p / s,p,o| SPO   | 1 / 2 / 3     |
//! | p / p,o        | POS   | 1 / 2         |
//! | o / o,s        | OSP   | 1 / 2         |
//!
//! The only pattern with no index prefix is `(?s, p, ?o)` with o bound and
//! s bound — impossible (that's s,o which OSP serves via o then filter).

use crate::encoded::EncodedTriple;

/// The three component orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// subject, predicate, object.
    Spo,
    /// predicate, object, subject.
    Pos,
    /// object, subject, predicate.
    Osp,
}

impl Order {
    /// Reorders a stored-order triple into this index's key order.
    pub fn key(self, t: &EncodedTriple) -> [u32; 3] {
        match self {
            Order::Spo => [t[0], t[1], t[2]],
            Order::Pos => [t[1], t[2], t[0]],
            Order::Osp => [t[2], t[0], t[1]],
        }
    }

    /// Restores a key back to `[s, p, o]` order.
    pub fn unkey(self, k: &[u32; 3]) -> EncodedTriple {
        match self {
            Order::Spo => [k[0], k[1], k[2]],
            Order::Pos => [k[2], k[0], k[1]],
            Order::Osp => [k[1], k[2], k[0]],
        }
    }
}

/// A sorted index in one component order.
#[derive(Debug, Clone, Default)]
pub struct SortedIndex {
    order_keys: Vec<[u32; 3]>,
}

impl SortedIndex {
    /// Builds an index over the triples in the given order. O(n log n).
    pub fn build(order: Order, triples: &[EncodedTriple]) -> SortedIndex {
        let mut order_keys: Vec<[u32; 3]> = triples.iter().map(|t| order.key(t)).collect();
        order_keys.sort_unstable();
        order_keys.dedup();
        SortedIndex { order_keys }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.order_keys.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.order_keys.is_empty()
    }

    /// Merges a batch of new keys (already in this index's key order but
    /// not necessarily sorted). O(n + m log m).
    pub fn merge(&mut self, mut new_keys: Vec<[u32; 3]>) {
        if new_keys.is_empty() {
            return;
        }
        new_keys.sort_unstable();
        new_keys.dedup();
        let mut merged = Vec::with_capacity(self.order_keys.len() + new_keys.len());
        let mut a = self.order_keys.iter().peekable();
        let mut b = new_keys.iter().peekable();
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    merged.push(x);
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push(y);
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push(x);
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.order_keys = merged;
    }

    /// The contiguous run of keys matching the given bound prefix:
    /// `prefix = [Some(a)]`, `[Some(a), Some(b)]`, or all three.
    /// Returns a slice of keys in index order.
    pub fn prefix_range(&self, k1: Option<u32>, k2: Option<u32>, k3: Option<u32>) -> &[[u32; 3]] {
        debug_assert!(
            !(k1.is_none() && (k2.is_some() || k3.is_some())),
            "prefix must be left-anchored"
        );
        debug_assert!(!(k2.is_none() && k3.is_some()), "prefix must be contiguous");
        let lo_key = [k1.unwrap_or(0), k2.unwrap_or(0), k3.unwrap_or(0)];
        let lo = self.order_keys.partition_point(|k| *k < lo_key);
        let hi = match (k1, k2, k3) {
            (None, _, _) => self.order_keys.len(),
            (Some(a), None, _) => self.order_keys.partition_point(|k| k[0] <= a),
            (Some(a), Some(b), None) => self.order_keys.partition_point(|k| (k[0], k[1]) <= (a, b)),
            (Some(a), Some(b), Some(c)) => self
                .order_keys
                .partition_point(|k| (k[0], k[1], k[2]) <= (a, b, c)),
        };
        &self.order_keys[lo..hi]
    }

    /// Iterates all keys in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32; 3]> {
        self.order_keys.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples() -> Vec<EncodedTriple> {
        vec![
            [1, 10, 100],
            [1, 10, 101],
            [1, 11, 100],
            [2, 10, 100],
            [2, 12, 103],
            [3, 10, 101],
        ]
    }

    #[test]
    fn key_unkey_roundtrip() {
        let t = [7, 8, 9];
        for order in [Order::Spo, Order::Pos, Order::Osp] {
            assert_eq!(order.unkey(&order.key(&t)), t);
        }
    }

    #[test]
    fn build_sorts_and_dedups() {
        let mut ts = triples();
        ts.push([1, 10, 100]); // duplicate
        let idx = SortedIndex::build(Order::Spo, &ts);
        assert_eq!(idx.len(), 6);
        let keys: Vec<_> = idx.iter().collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prefix_range_one_bound() {
        let idx = SortedIndex::build(Order::Spo, &triples());
        let r = idx.prefix_range(Some(1), None, None);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|k| k[0] == 1));
        assert!(idx.prefix_range(Some(9), None, None).is_empty());
    }

    #[test]
    fn prefix_range_two_bound() {
        let idx = SortedIndex::build(Order::Spo, &triples());
        let r = idx.prefix_range(Some(1), Some(10), None);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|k| k[0] == 1 && k[1] == 10));
    }

    #[test]
    fn prefix_range_exact() {
        let idx = SortedIndex::build(Order::Spo, &triples());
        assert_eq!(idx.prefix_range(Some(2), Some(12), Some(103)).len(), 1);
        assert_eq!(idx.prefix_range(Some(2), Some(12), Some(999)).len(), 0);
    }

    #[test]
    fn prefix_range_unbounded_is_all() {
        let idx = SortedIndex::build(Order::Pos, &triples());
        assert_eq!(idx.prefix_range(None, None, None).len(), 6);
    }

    #[test]
    fn pos_order_groups_by_predicate() {
        let idx = SortedIndex::build(Order::Pos, &triples());
        let r = idx.prefix_range(Some(10), None, None);
        assert_eq!(r.len(), 4);
        for k in r {
            let t = Order::Pos.unkey(k);
            assert_eq!(t[1], 10);
        }
    }

    #[test]
    fn merge_interleaves_and_dedups() {
        let mut idx = SortedIndex::build(Order::Spo, &triples());
        idx.merge(vec![[0, 1, 2], [2, 11, 0], [1, 10, 100], [9, 9, 9]]);
        assert_eq!(idx.len(), 9); // 6 + 4 new - 1 duplicate
        let keys: Vec<_> = idx.iter().collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut idx = SortedIndex::build(Order::Spo, &triples());
        let before = idx.len();
        idx.merge(vec![]);
        assert_eq!(idx.len(), before);
    }
}
