//! Hash-partition shard map: which shard owns which subject.
//!
//! The Web-of-Big-Linked-Data setting (§2 of the survey) is datasets too
//! large for one process; the classic scale-out for triple stores is
//! *subject hash partitioning* — every triple lives on exactly one shard,
//! chosen by hashing its subject. Subject-grouped placement keeps
//! star-shaped BGPs (the browsers' resource-expansion form) local to one
//! shard, and makes per-pattern scatter-gather **sound**: shards hold
//! disjoint triple sets whose union is the full graph, so the union of
//! per-shard pattern matches equals the full-graph match set, and a
//! missing shard can only *shrink* the answer — never corrupt it.
//!
//! The hash is over the subject's canonical N-Triples rendering, not its
//! interned dictionary id: ids are assigned per process in load order and
//! would disagree between coordinator and workers. FNV-1a is used so the
//! placement is stable across platforms and releases (no `RandomState`).

use wodex_rdf::{Graph, Term, Triple};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable FNV-1a 64 over a byte string.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Where a triple pattern's matches can live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Subject is constant: every match lives on this one shard.
    One(u32),
    /// Subject is a variable: matches may live on any shard.
    All,
}

/// A subject-hash partitioning of the graph into `shards` disjoint parts.
///
/// The map is pure arithmetic — it holds no data, so coordinator and
/// workers each construct their own from the shard count alone and are
/// guaranteed to agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map over `shards` partitions (clamped to at least 1).
    pub fn new(shards: u32) -> ShardMap {
        ShardMap {
            shards: shards.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard that owns triples with this subject.
    pub fn shard_of(&self, subject: &Term) -> u32 {
        (fnv1a64(subject.to_string().as_bytes()) % self.shards as u64) as u32
    }

    /// Routes a pattern scan: a subject-constant pattern needs only the
    /// owning shard; anything else must fan out to all shards.
    pub fn route(&self, subject: Option<&Term>) -> Route {
        match subject {
            Some(s) => Route::One(self.shard_of(s)),
            None => Route::All,
        }
    }

    /// Does shard `k` own this triple?
    pub fn owns(&self, k: u32, t: &Triple) -> bool {
        self.shard_of(&t.subject) == k
    }

    /// Shard `k`'s partition of `graph` — the worker-side load filter.
    pub fn partition(&self, graph: &Graph, k: u32) -> Graph {
        graph.iter().filter(|t| self.owns(k, t)).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::Iri;

    fn g(n: u32) -> Graph {
        (0..n)
            .map(|i| {
                Triple::new(
                    Iri::new(format!("urn:s{i}")),
                    Iri::new("urn:p"),
                    Iri::new(format!("urn:o{i}")),
                )
            })
            .collect()
    }

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let graph = g(200);
        let map = ShardMap::new(4);
        let parts: Vec<Graph> = (0..4).map(|k| map.partition(&graph, k)).collect();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, graph.len(), "partitions cover exactly");
        let mut merged = Graph::new();
        for p in &parts {
            for t in p.iter() {
                assert!(merged.insert(t.clone()), "partitions overlap on {t:?}");
            }
        }
        assert_eq!(merged.len(), graph.len());
    }

    #[test]
    fn no_shard_is_empty_at_scale() {
        // 200 subjects over 4 shards: an empty shard would mean the hash
        // is degenerate.
        let graph = g(200);
        let map = ShardMap::new(4);
        for k in 0..4 {
            assert!(!map.partition(&graph, k).is_empty(), "shard {k} empty");
        }
    }

    #[test]
    fn routing_agrees_with_ownership() {
        let graph = g(50);
        let map = ShardMap::new(4);
        for t in graph.iter() {
            match map.route(Some(&t.subject)) {
                Route::One(k) => assert!(map.owns(k, t)),
                Route::All => panic!("constant subject must route to one shard"),
            }
        }
        assert_eq!(map.route(None), Route::All);
    }

    #[test]
    fn placement_is_stable_across_map_instances() {
        let a = ShardMap::new(8);
        let b = ShardMap::new(8);
        let term = Term::from(Iri::new("http://dbpedia.org/resource/Berlin"));
        assert_eq!(a.shard_of(&term), b.shard_of(&term));
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1);
        for t in g(20).iter() {
            assert_eq!(map.shard_of(&t.subject), 0);
        }
    }
}
