//! The in-memory triple store.
//!
//! [`TripleStore`] combines the term dictionary with the three permutation
//! indexes and an *unsorted tail* for recent inserts. The tail is what
//! makes the store usable in the survey's "dynamic setting": a streaming
//! insert is an O(1) append, queries transparently scan the (small) tail,
//! and once the tail exceeds a threshold it is merged into the sorted
//! indexes in one O(n + m log m) pass — amortizing the sort the way a
//! log-structured store amortizes compaction.

use crate::encoded::{EncodedTriple, Pattern};
use crate::index::{Order, SortedIndex};
use crate::segment::{shape_order, SegmentSource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use wodex_rdf::{Graph, Term, TermDict, TermId, Triple};

/// Default number of tail triples tolerated before an automatic merge.
pub const DEFAULT_TAIL_LIMIT: usize = 64 * 1024;

/// Cheap cardinality statistics a query planner can cost join orders with.
///
/// Derived from the sorted permutation indexes in one cached O(n) pass:
/// the distinct count for a position is the number of first-component runs
/// of the index whose key order leads with that position (SPO for
/// subjects, POS for predicates, OSP for objects). Tail triples and
/// tombstones are not folded in, so the counts are *estimates*, off by at
/// most the (bounded) tail length — which is exactly the precision a cost
/// model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Triples in the sorted region (tombstones still included).
    pub indexed_triples: usize,
    /// Estimated distinct terms per triple position: `[s, p, o]`.
    pub distinct: [usize; 3],
}

impl StoreStats {
    /// Estimated distinct values at `position` (0 = s, 1 = p, 2 = o),
    /// never below 1 so it is always a safe divisor.
    pub fn distinct_at(&self, position: usize) -> usize {
        self.distinct[position].max(1)
    }
}

/// Monotone revision source shared by all stores; revision 0 is reserved
/// for freshly `Default`-constructed (empty) stores.
static NEXT_REVISION: AtomicU64 = AtomicU64::new(1);

fn next_revision() -> u64 {
    NEXT_REVISION.fetch_add(1, Ordering::Relaxed)
}

/// An indexed, dictionary-encoded triple store.
///
/// Optionally layered over an immutable [`SegmentSource`] *base region*
/// (a persistent segment store, the paged store, or another in-memory
/// store): reads union the base with the local sorted indexes and tail,
/// deletes of base triples tombstone them, and inserts de-duplicate
/// against the base — the classic LSM arrangement with the base as the
/// bottom level. Base reads are fallible at the [`SegmentSource`] layer
/// (typed [`wodex_resilience::StoreError`]s, internal retries); this
/// infallible facade is **fail-stop**: an unrecoverable base error
/// panics rather than silently dropping rows from a result.
#[derive(Debug, Default)]
pub struct TripleStore {
    dict: TermDict,
    base: Option<Arc<dyn SegmentSource>>,
    spo: SortedIndex,
    pos: SortedIndex,
    osp: SortedIndex,
    tail: Vec<EncodedTriple>,
    /// Tombstones: deleted triples still present in the sorted indexes,
    /// filtered out of every read until the next compaction. This is the
    /// standard log-structured answer to deletes — O(1) per delete, cost
    /// deferred to the merge.
    deleted: std::collections::BTreeSet<EncodedTriple>,
    tail_limit: usize,
    len: usize,
    /// Lazily computed [`StoreStats`], reset on every mutation.
    stats: OnceLock<StoreStats>,
    /// Process-unique content revision, bumped on every mutation. Caches
    /// keyed on `(revision, ...)` (e.g. the SPARQL plan cache) go stale
    /// automatically when the store changes.
    rev: u64,
}

impl TripleStore {
    /// Creates an empty store with the default tail threshold.
    pub fn new() -> TripleStore {
        TripleStore {
            tail_limit: DEFAULT_TAIL_LIMIT,
            ..Default::default()
        }
    }

    /// Creates an empty store with a custom tail threshold (0 forces a
    /// merge after every insert — useful in tests).
    pub fn with_tail_limit(tail_limit: usize) -> TripleStore {
        TripleStore {
            tail_limit,
            ..Default::default()
        }
    }

    /// Builds a store from an RDF [`Graph`] in one bulk pass.
    pub fn from_graph(graph: &Graph) -> TripleStore {
        let mut store = TripleStore::new();
        store.insert_graph(graph);
        store.merge_tail();
        store
    }

    /// Builds a single-level store from a dictionary and encoded
    /// triples (deduplicated internally). Used by the MVCC layer to
    /// flatten an overlay chain back into one level: the result has no
    /// base, no tail, and no tombstones, so reads over it cost exactly
    /// what the pre-write read path cost.
    pub fn from_encoded(dict: TermDict, mut triples: Vec<EncodedTriple>) -> TripleStore {
        triples.sort_unstable();
        triples.dedup();
        let mut store = TripleStore {
            dict,
            spo: SortedIndex::build(Order::Spo, &triples),
            pos: SortedIndex::build(Order::Pos, &triples),
            osp: SortedIndex::build(Order::Osp, &triples),
            len: triples.len(),
            tail_limit: DEFAULT_TAIL_LIMIT,
            ..Default::default()
        };
        store.touch();
        store
    }

    /// Creates a store layered over an immutable base region.
    ///
    /// `dict` must already contain every term id the base returns (for a
    /// persistent segment store, the dictionary loaded from the same
    /// directory); local inserts intern new terms on top, extending the
    /// dense id space. The base is never mutated — deletes tombstone its
    /// triples locally, inserts land in the tail as usual.
    pub fn with_base(dict: TermDict, base: Arc<dyn SegmentSource>) -> TripleStore {
        let len = base.source_len();
        let mut store = TripleStore {
            dict,
            base: Some(base),
            tail_limit: DEFAULT_TAIL_LIMIT,
            len,
            ..Default::default()
        };
        store.touch();
        store
    }

    /// The immutable base region, if this store has one.
    pub fn base(&self) -> Option<&Arc<dyn SegmentSource>> {
        self.base.as_ref()
    }

    /// Fail-stop unwrap for base reads (see the struct docs): the
    /// infallible facade cannot return an error, and a silently empty
    /// result would be *unsound* (query answers must be supersets of the
    /// base's matches), so an unrecoverable base failure halts.
    fn base_ok<T>(r: Result<T, wodex_resilience::StoreError>) -> T {
        r.unwrap_or_else(|e| panic!("segment base read failed (fail-stop): {e}"))
    }

    /// Base membership test (false without a base).
    fn base_contains(&self, t: &EncodedTriple) -> bool {
        match &self.base {
            Some(b) => Self::base_ok(b.contains_triple(t)),
            None => false,
        }
    }

    /// Base matches of `pat` with local tombstones filtered out, in the
    /// shape's index key order. Empty without a base.
    fn base_matches(&self, pat: Pattern) -> Vec<EncodedTriple> {
        let Some(b) = &self.base else {
            return Vec::new();
        };
        let mut out = Self::base_ok(b.scan(pat));
        if !self.deleted.is_empty() {
            out.retain(|t| !self.deleted.contains(t));
        }
        out
    }

    /// The term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Interns a term (exposed so query engines can encode constants).
    pub fn intern(&mut self, term: Term) -> TermId {
        self.dict.intern(term)
    }

    /// Looks up an already-interned term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.dict.id_of(term)
    }

    /// Decodes a term id.
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of triples currently in the unsorted tail.
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Inserts one decoded triple (streaming path). Returns true if new.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.dict.intern(triple.subject.clone());
        let p = self.dict.intern(triple.predicate.clone());
        let o = self.dict.intern(triple.object.clone());
        self.insert_encoded([s.0, p.0, o.0])
    }

    /// Invalidates derived state after a mutation: cached statistics are
    /// recomputed on next use and the revision moves so plan caches keyed
    /// on it go stale.
    fn touch(&mut self) {
        self.stats = OnceLock::new();
        self.rev = next_revision();
    }

    /// Inserts an already-encoded triple. Returns true if new.
    pub fn insert_encoded(&mut self, t: EncodedTriple) -> bool {
        if self.deleted.remove(&t) {
            // Resurrect a tombstoned triple: it is still in the indexes.
            self.len += 1;
            self.touch();
            return true;
        }
        if self.contains_encoded(&t) {
            return false;
        }
        self.tail.push(t);
        self.len += 1;
        self.touch();
        if self.tail.len() > self.tail_limit {
            self.merge_tail();
        }
        true
    }

    /// Deletes a triple (tombstoned until the next merge). Returns true
    /// if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&triple.subject),
            self.dict.id_of(&triple.predicate),
            self.dict.id_of(&triple.object),
        ) else {
            return false;
        };
        self.remove_encoded([s.0, p.0, o.0])
    }

    /// Deletes an encoded triple. Returns true if it was present.
    pub fn remove_encoded(&mut self, t: EncodedTriple) -> bool {
        if let Some(i) = self.tail.iter().position(|x| *x == t) {
            self.tail.swap_remove(i);
            self.len -= 1;
            self.touch();
            return true;
        }
        let k = Order::Spo.key(&t);
        let in_sorted = !self
            .spo
            .prefix_range(Some(k[0]), Some(k[1]), Some(k[2]))
            .is_empty();
        if (in_sorted || self.base_contains(&t)) && self.deleted.insert(t) {
            self.len -= 1;
            self.touch();
            return true;
        }
        false
    }

    /// Inserts every triple of a graph.
    pub fn insert_graph(&mut self, graph: &Graph) -> usize {
        let mut added = 0;
        for t in graph.iter() {
            if self.insert(t) {
                added += 1;
            }
        }
        added
    }

    /// Merges the tail into the three sorted indexes and compacts
    /// tombstoned deletions out of them.
    pub fn merge_tail(&mut self) {
        if self.tail.is_empty() && self.deleted.is_empty() {
            return;
        }
        // Logical content is unchanged, but the stats estimates (computed
        // from the sorted region only) move as the tail folds in.
        self.touch();
        if self.deleted.is_empty() {
            let tail = std::mem::take(&mut self.tail);
            self.spo
                .merge(tail.iter().map(|t| Order::Spo.key(t)).collect());
            self.pos
                .merge(tail.iter().map(|t| Order::Pos.key(t)).collect());
            self.osp
                .merge(tail.iter().map(|t| Order::Osp.key(t)).collect());
            return;
        }
        // Compaction path: rebuild the indexes without the tombstones.
        // Tombstones covering *base* triples must survive the rebuild —
        // the base is immutable, so they are the only record of those
        // deletes.
        let deleted = std::mem::take(&mut self.deleted);
        let tail = std::mem::take(&mut self.tail);
        let mut all: Vec<EncodedTriple> = self
            .spo
            .iter()
            .map(|k| Order::Spo.unkey(k))
            .filter(|t| !deleted.contains(t))
            .collect();
        all.extend(tail);
        self.spo = SortedIndex::build(Order::Spo, &all);
        self.pos = SortedIndex::build(Order::Pos, &all);
        self.osp = SortedIndex::build(Order::Osp, &all);
        if self.base.is_some() {
            self.deleted = deleted
                .into_iter()
                .filter(|t| self.base_contains(t))
                .collect();
        }
    }

    /// Membership test on an encoded triple.
    pub fn contains_encoded(&self, t: &EncodedTriple) -> bool {
        if self.deleted.contains(t) {
            return false;
        }
        let k = Order::Spo.key(t);
        !self
            .spo
            .prefix_range(Some(k[0]), Some(k[1]), Some(k[2]))
            .is_empty()
            || self.tail.contains(t)
            || self.base_contains(t)
    }

    /// Membership test on a decoded triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&triple.subject),
            self.dict.id_of(&triple.predicate),
            self.dict.id_of(&triple.object),
        ) else {
            return false;
        };
        self.contains_encoded(&[s.0, p.0, o.0])
    }

    /// The contiguous index run serving a pattern's bound positions, plus
    /// the key order needed to restore `[s, p, o]` component order.
    ///
    /// Selects the best index for the bound positions
    /// ([`crate::segment::shape_order`] — shared with every
    /// [`SegmentSource`] so scan orders cannot drift) and binary-searches
    /// its prefix run; `s+o` (the one bound set that is not a prefix of
    /// any permutation) goes through OSP's `o, s` prefix.
    fn index_run(&self, s: Option<u32>, p: Option<u32>, o: Option<u32>) -> (&[[u32; 3]], Order) {
        let order = shape_order(s.is_some(), p.is_some(), o.is_some());
        let index = match order {
            Order::Spo => &self.spo,
            Order::Pos => &self.pos,
            Order::Osp => &self.osp,
        };
        // Permute the bound components into the index's key order; every
        // shape's bound set is a leading prefix of its shape_order key.
        let positions = order.key(&[0, 1, 2]);
        let opts = [s, p, o];
        let k = positions.map(|i| opts[i as usize]);
        debug_assert!(
            k[1].is_none() || k[0].is_some(),
            "bound set must be a leading prefix of {order:?}"
        );
        (index.prefix_range(k[0], k[1], k[2]), order)
    }

    /// Matches a pattern, returning encoded triples.
    ///
    /// The index run is decoded (and, when deletions exist, filtered) in
    /// parallel partitions merged in index order, then matching tail
    /// entries are appended — so results are identical to a serial scan at
    /// every thread count. With a base region, its (tombstone-filtered)
    /// matches come first, in the same key order the local run uses.
    pub fn match_pattern(&self, pat: Pattern) -> Vec<EncodedTriple> {
        let s = pat.s.map(|t| t.0);
        let p = pat.p.map(|t| t.0);
        let o = pat.o.map(|t| t.0);
        let base = self.base_matches(pat);
        let (run, order) = self.index_run(s, p, o);
        let local: Vec<EncodedTriple> = if self.deleted.is_empty() {
            wodex_exec::par_map(run, |k| order.unkey(k))
        } else {
            wodex_exec::par_chunks(run, wodex_exec::chunk_size(run.len()), |_, chunk| {
                chunk
                    .iter()
                    .map(|k| order.unkey(k))
                    .filter(|t| !self.deleted.contains(t))
                    .collect::<Vec<EncodedTriple>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        // Merge the (disjoint) base and local regions in key order, so
        // that with an empty tail the result is globally key-ordered and
        // the sorted fast paths hold with or without a base.
        let mut out = if base.is_empty() {
            local
        } else if local.is_empty() {
            base
        } else {
            let mut merged = Vec::with_capacity(base.len() + local.len());
            let (mut i, mut j) = (0, 0);
            while i < base.len() && j < local.len() {
                if order.key(&base[i]) <= order.key(&local[j]) {
                    merged.push(base[i]);
                    i += 1;
                } else {
                    merged.push(local[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&base[i..]);
            merged.extend_from_slice(&local[j..]);
            merged
        };
        out.extend(self.tail.iter().filter(|t| pat.matches(t)));
        out
    }

    /// Streams `match_pattern(pat)` as a sequence of chunks without
    /// materializing the full result: concatenating every chunk yields
    /// exactly `match_pattern(pat)`. Base chunks stream straight from
    /// the segment source's [`SegmentSource::scan_chunks`] (so a
    /// block-cached base never materializes a full scan), merged
    /// incrementally with the local sorted run in key order — base
    /// first on ties, the same tie-break `match_pattern` uses — with
    /// matching tail entries appended last.
    ///
    /// `f` returns `false` to stop the scan early (budget-aware
    /// consumers degrade at chunk granularity); the call then returns
    /// `false` without scanning further. Base read failures fail-stop
    /// exactly like `match_pattern` (see the struct docs).
    pub fn match_pattern_chunks(
        &self,
        pat: Pattern,
        f: &mut dyn FnMut(&[EncodedTriple]) -> bool,
    ) -> bool {
        /// Local-run entries emitted between base chunks, per chunk.
        const LOCAL_CHUNK: usize = 8192;
        let s = pat.s.map(|t| t.0);
        let p = pat.p.map(|t| t.0);
        let o = pat.o.map(|t| t.0);
        let (run, order) = self.index_run(s, p, o);
        let mut li = 0usize;
        let mut buf: Vec<EncodedTriple> = Vec::new();
        let local_visible = |k: &[u32; 3]| -> Option<EncodedTriple> {
            let t = order.unkey(k);
            (self.deleted.is_empty() || !self.deleted.contains(&t)).then_some(t)
        };
        if let Some(b) = &self.base {
            let done = Self::base_ok(b.scan_chunks(pat, &mut |chunk| {
                buf.clear();
                for t in chunk {
                    if !self.deleted.is_empty() && self.deleted.contains(t) {
                        continue; // tombstoned base triple
                    }
                    let bk = order.key(t);
                    while li < run.len() && run[li] < bk {
                        if let Some(lt) = local_visible(&run[li]) {
                            buf.push(lt);
                        }
                        li += 1;
                    }
                    buf.push(*t);
                }
                buf.is_empty() || f(&buf)
            }));
            if !done {
                return false;
            }
        }
        while li < run.len() {
            let end = run.len().min(li + LOCAL_CHUNK);
            buf.clear();
            for k in &run[li..end] {
                if let Some(lt) = local_visible(k) {
                    buf.push(lt);
                }
            }
            li = end;
            if !buf.is_empty() && !f(&buf) {
                return false;
            }
        }
        buf.clear();
        buf.extend(self.tail.iter().filter(|t| pat.matches(t)));
        if !buf.is_empty() && !f(&buf) {
            return false;
        }
        true
    }

    /// Counts matches without materializing result triples.
    ///
    /// With no deletions the indexed part is just the run length; with
    /// deletions it is a parallel fold over the run. Either way the count
    /// equals `match_pattern(pat).len()` without allocating the results.
    pub fn count_pattern(&self, pat: Pattern) -> usize {
        let s = pat.s.map(|t| t.0);
        let p = pat.p.map(|t| t.0);
        let o = pat.o.map(|t| t.0);
        let (run, order) = self.index_run(s, p, o);
        let indexed = if self.deleted.is_empty() {
            run.len()
        } else {
            wodex_exec::par_fold(
                run,
                || 0usize,
                |acc, k| acc + usize::from(!self.deleted.contains(&order.unkey(k))),
                |a, b| a + b,
            )
        };
        let base = match &self.base {
            Some(b) => {
                let total = Self::base_ok(b.count(pat));
                // Tombstoned base triples are counted by the base but
                // invisible here; regions are disjoint, so tombstones on
                // the local sorted region never double-subtract.
                let tombstoned = self
                    .deleted
                    .iter()
                    .filter(|t| pat.matches(t) && Self::base_ok(b.contains_triple(t)))
                    .count();
                total - tombstoned
            }
            None => 0,
        };
        base + indexed + self.tail.iter().filter(|t| pat.matches(t)).count()
    }

    /// Matches a pattern and decodes the results into [`Triple`]s.
    pub fn match_decoded(&self, pat: Pattern) -> Vec<Triple> {
        self.match_pattern(pat)
            .into_iter()
            .map(|t| self.decode(t))
            .collect()
    }

    /// Decodes one encoded triple.
    pub fn decode(&self, t: EncodedTriple) -> Triple {
        Triple::new(
            self.dict.term(TermId(t[0])).clone(),
            self.dict.term(TermId(t[1])).clone(),
            self.dict.term(TermId(t[2])).clone(),
        )
    }

    /// Builds a pattern from optional decoded terms, returning `None` when
    /// some constant is not in the dictionary (in which case the pattern
    /// can match nothing).
    pub fn encode_pattern(
        &self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Option<Pattern> {
        let mut pat = Pattern::any();
        if let Some(t) = s {
            pat.s = Some(self.dict.id_of(t)?);
        }
        if let Some(t) = p {
            pat.p = Some(self.dict.id_of(t)?);
        }
        if let Some(t) = o {
            pat.o = Some(self.dict.id_of(t)?);
        }
        Some(pat)
    }

    /// All encoded triples in SPO order (tail merged first; base region
    /// included).
    pub fn snapshot_sorted(&mut self) -> Vec<EncodedTriple> {
        self.merge_tail();
        // With the tail merged, the full-scan match is the SPO-ordered
        // merge of the base and local regions minus tombstones.
        self.match_pattern(Pattern::any())
    }

    /// Process-unique content revision; bumps on every mutation. Two
    /// observations of the same revision from the same store guarantee
    /// identical contents, so it is a sound cache key component.
    pub fn revision(&self) -> u64 {
        self.rev
    }

    /// Cardinality statistics for the planner, computed on first use and
    /// cached until the next mutation.
    pub fn stats(&self) -> StoreStats {
        *self.stats.get_or_init(|| {
            fn leading_runs(index: &SortedIndex) -> usize {
                let mut n = 0usize;
                let mut last = None;
                for k in index.iter() {
                    if last != Some(k[0]) {
                        n += 1;
                        last = Some(k[0]);
                    }
                }
                n
            }
            let mut stats = StoreStats {
                indexed_triples: self.spo.len(),
                distinct: [
                    leading_runs(&self.spo),
                    leading_runs(&self.pos),
                    leading_runs(&self.osp),
                ],
            };
            if let Some(b) = &self.base {
                // Fold in the base's metadata-derived stats. Summing the
                // distinct counts can double-count terms present in both
                // regions — acceptable for an estimate, and exact in the
                // common pure-base configuration.
                let bs = b.source_stats();
                stats.indexed_triples += bs.indexed_triples;
                for (d, bd) in stats.distinct.iter_mut().zip(bs.distinct) {
                    *d += bd;
                }
            }
            stats
        })
    }

    /// Cheap cardinality estimate for a pattern: the indexed run length
    /// (two binary searches, tombstones *not* subtracted) plus matching
    /// tail entries. An upper bound on [`TripleStore::count_pattern`],
    /// exact while no deletions are pending.
    pub fn estimate_pattern(&self, pat: Pattern) -> usize {
        let (run, _) = self.index_run(pat.s.map(|t| t.0), pat.p.map(|t| t.0), pat.o.map(|t| t.0));
        let base = self.base.as_ref().map_or(0, |b| b.estimate(pat));
        base + run.len() + self.tail.iter().filter(|t| pat.matches(t)).count()
    }

    /// The triple position (0 = s, 1 = p, 2 = o) whose values the index
    /// run for this bound shape is naturally sorted by — the first
    /// *unbound* component in the selected index's key order. `None` for
    /// a fully bound pattern (at most one result; nothing to sort).
    ///
    /// Public so a query planner can predict when
    /// [`TripleStore::match_pattern_sorted_by`] is a zero-sort scan
    /// (this position, empty tail) and prefer a merge join there.
    pub fn natural_position(s: bool, p: bool, o: bool) -> Option<usize> {
        match (s, p, o) {
            (true, true, true) => None,
            // SPO: bound prefix constant, next key component varies first.
            (true, true, false) => Some(2),
            (true, false, false) => Some(1),
            (false, false, false) => Some(0),
            // POS (p, o, s).
            (false, true, true) => Some(0),
            (false, true, false) => Some(2),
            // OSP (o, s, p).
            (false, false, true) => Some(0),
            (true, false, true) => Some(1),
        }
    }

    /// Matches a pattern, returning encoded triples sorted ascending by
    /// `(t[position], t)` — the order a sort-merge join consumes.
    ///
    /// When the index run already arrives in that order (the bound shape's
    /// natural position equals `position`) and the tail is empty, this is
    /// a zero-sort scan; otherwise it is [`TripleStore::match_pattern`]
    /// plus one explicit sort. Both paths return byte-identical vectors:
    /// within a run the bound components are constant, so index key order
    /// and `(t[position], t)` order coincide.
    pub fn match_pattern_sorted_by(&self, pat: Pattern, position: usize) -> Vec<EncodedTriple> {
        debug_assert!(position < 3);
        let natural = Self::natural_position(pat.s.is_some(), pat.p.is_some(), pat.o.is_some());
        if self.tail.is_empty() && natural == Some(position) {
            // With no tail, match_pattern is globally key-ordered (base
            // and local regions are merged in key order), which within a
            // run equals the `(t[position], t)` order.
            return self.match_pattern(pat);
        }
        let mut out = self.match_pattern(pat);
        out.sort_unstable_by_key(|t| (t[position], *t));
        out
    }

    /// The triple-position sequence the index run for this bound shape is
    /// naturally sorted by: every *unbound* component, in the selected
    /// index's key order. The multi-position generalization of
    /// [`TripleStore::natural_position`], whose value is always this
    /// sequence's first element. Empty for a fully bound pattern.
    pub fn natural_order(s: bool, p: bool, o: bool) -> &'static [usize] {
        match (s, p, o) {
            (true, true, true) => &[],
            // SPO: the bound prefix is constant, the remaining key
            // components vary in index order.
            (true, true, false) => &[2],
            (true, false, false) => &[1, 2],
            (false, false, false) => &[0, 1, 2],
            // POS (p, o, s).
            (false, true, true) => &[0],
            (false, true, false) => &[2, 0],
            // OSP (o, s, p).
            (false, false, true) => &[0, 1],
            (true, false, true) => &[1],
        }
    }

    /// Matches a pattern, returning encoded triples sorted
    /// lexicographically by the value tuple `(t[positions[0]],
    /// t[positions[1]], …)` — the trie order a multiway leapfrog join's
    /// [`crate::cursor::SortedCursor`] consumes.
    ///
    /// When the requested sequence equals the bound shape's full natural
    /// order ([`TripleStore::natural_order`]) and the tail is empty this
    /// is a zero-sort scan: the index run already arrives in exactly that
    /// order, and with every unbound position covered there are no ties.
    /// Otherwise it is [`TripleStore::match_pattern`] plus one explicit
    /// sort, with ties beyond the requested positions broken by the full
    /// triple — a deterministic total order either way.
    pub fn match_pattern_sorted_lex(
        &self,
        pat: Pattern,
        positions: &[usize],
    ) -> Vec<EncodedTriple> {
        debug_assert!(positions.iter().all(|&p| p < 3));
        let natural = Self::natural_order(pat.s.is_some(), pat.p.is_some(), pat.o.is_some());
        if self.tail.is_empty() && positions == natural {
            return self.match_pattern(pat);
        }
        let mut out = self.match_pattern(pat);
        out.sort_unstable_by_key(|t| {
            let mut key = [0u32; 3];
            for (slot, &p) in key.iter_mut().zip(positions) {
                *slot = t[p];
            }
            (key, *t)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::vocab::{rdf, rdfs};

    fn store() -> TripleStore {
        let mut g = Graph::new();
        for i in 0..10 {
            let s = format!("http://e.org/s{i}");
            g.insert(Triple::iri(&s, rdf::TYPE, Term::iri("http://e.org/C")));
            g.insert(Triple::iri(&s, rdfs::LABEL, Term::literal(format!("{i}"))));
        }
        TripleStore::from_graph(&g)
    }

    #[test]
    fn bulk_build_counts() {
        let st = store();
        assert_eq!(st.len(), 20);
        assert_eq!(st.tail_len(), 0);
    }

    #[test]
    fn match_by_predicate() {
        let st = store();
        let p = st.id_of(&Term::iri(rdf::TYPE)).unwrap();
        let r = st.match_pattern(Pattern::any().with_p(p));
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn match_by_subject_and_full() {
        let st = store();
        let s = st.id_of(&Term::iri("http://e.org/s3")).unwrap();
        assert_eq!(st.match_pattern(Pattern::any().with_s(s)).len(), 2);
        let p = st.id_of(&Term::iri(rdf::TYPE)).unwrap();
        let o = st.id_of(&Term::iri("http://e.org/C")).unwrap();
        let full = Pattern::any().with_s(s).with_p(p).with_o(o);
        assert_eq!(st.match_pattern(full).len(), 1);
    }

    #[test]
    fn match_by_object_and_so() {
        let st = store();
        let o = st.id_of(&Term::iri("http://e.org/C")).unwrap();
        assert_eq!(st.match_pattern(Pattern::any().with_o(o)).len(), 10);
        let s = st.id_of(&Term::iri("http://e.org/s3")).unwrap();
        let so = Pattern::any().with_s(s).with_o(o);
        assert_eq!(st.match_pattern(so).len(), 1);
    }

    #[test]
    fn streaming_inserts_visible_before_merge() {
        let mut st = TripleStore::new();
        st.insert(&Triple::iri(
            "http://e.org/a",
            rdfs::LABEL,
            Term::literal("A"),
        ));
        assert_eq!(st.tail_len(), 1);
        let p = st.id_of(&Term::iri(rdfs::LABEL)).unwrap();
        assert_eq!(st.match_pattern(Pattern::any().with_p(p)).len(), 1);
        st.merge_tail();
        assert_eq!(st.tail_len(), 0);
        assert_eq!(st.match_pattern(Pattern::any().with_p(p)).len(), 1);
    }

    #[test]
    fn duplicate_inserts_rejected_in_both_regions() {
        let mut st = TripleStore::with_tail_limit(1000);
        let t = Triple::iri("http://e.org/a", rdfs::LABEL, Term::literal("A"));
        assert!(st.insert(&t));
        assert!(!st.insert(&t)); // duplicate in tail
        st.merge_tail();
        assert!(!st.insert(&t)); // duplicate in sorted region
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn auto_merge_at_tail_limit() {
        let mut st = TripleStore::with_tail_limit(5);
        for i in 0..20 {
            st.insert(&Triple::iri(
                &format!("http://e.org/s{i}"),
                rdfs::LABEL,
                Term::literal(format!("{i}")),
            ));
        }
        assert!(st.tail_len() <= 5);
        assert_eq!(st.len(), 20);
        let p = st.id_of(&Term::iri(rdfs::LABEL)).unwrap();
        assert_eq!(st.match_pattern(Pattern::any().with_p(p)).len(), 20);
    }

    #[test]
    fn contains_decoded() {
        let st = store();
        assert!(st.contains(&Triple::iri(
            "http://e.org/s0",
            rdf::TYPE,
            Term::iri("http://e.org/C")
        )));
        assert!(!st.contains(&Triple::iri(
            "http://e.org/s0",
            rdf::TYPE,
            Term::iri("http://e.org/Nope")
        )));
    }

    #[test]
    fn decode_roundtrip() {
        let st = store();
        let all = st.match_pattern(Pattern::any());
        assert_eq!(all.len(), 20);
        for t in all {
            let decoded = st.decode(t);
            assert!(st.contains(&decoded));
        }
    }

    #[test]
    fn encode_pattern_fails_for_unknown_constants() {
        let st = store();
        assert!(st
            .encode_pattern(None, Some(&Term::iri("http://nope/")), None)
            .is_none());
        let pat = st
            .encode_pattern(None, Some(&Term::iri(rdf::TYPE)), None)
            .unwrap();
        assert_eq!(pat.bound_count(), 1);
    }

    #[test]
    fn remove_from_tail_and_from_sorted_region() {
        let mut st = TripleStore::with_tail_limit(1000);
        let a = Triple::iri("http://e.org/a", rdfs::LABEL, Term::literal("A"));
        let b = Triple::iri("http://e.org/b", rdfs::LABEL, Term::literal("B"));
        st.insert(&a);
        st.merge_tail(); // a is now in the sorted region
        st.insert(&b); // b stays in the tail
        assert!(st.remove(&b), "tail delete");
        assert!(st.remove(&a), "sorted-region delete (tombstone)");
        assert_eq!(st.len(), 0);
        assert!(!st.contains(&a));
        assert!(!st.contains(&b));
        let p = st.id_of(&Term::iri(rdfs::LABEL)).unwrap();
        assert!(st.match_pattern(Pattern::any().with_p(p)).is_empty());
        assert!(!st.remove(&a), "double delete is a no-op");
    }

    #[test]
    fn deleted_triples_can_be_reinserted() {
        let mut st = TripleStore::with_tail_limit(1000);
        let t = Triple::iri("http://e.org/a", rdfs::LABEL, Term::literal("A"));
        st.insert(&t);
        st.merge_tail();
        assert!(st.remove(&t));
        assert!(st.insert(&t), "resurrection counts as a new insert");
        assert!(st.contains(&t));
        assert_eq!(st.len(), 1);
        assert_eq!(st.match_pattern(Pattern::any()).len(), 1);
    }

    #[test]
    fn compaction_physically_drops_tombstones() {
        let mut st = TripleStore::with_tail_limit(usize::MAX / 2);
        for i in 0..50 {
            st.insert(&Triple::iri(
                &format!("http://e.org/s{i}"),
                rdfs::LABEL,
                Term::literal(format!("{i}")),
            ));
        }
        st.merge_tail();
        for i in 0..25 {
            assert!(st.remove(&Triple::iri(
                &format!("http://e.org/s{i}"),
                rdfs::LABEL,
                Term::literal(format!("{i}")),
            )));
        }
        assert_eq!(st.len(), 25);
        // snapshot_sorted triggers compaction.
        let snapshot = st.snapshot_sorted();
        assert_eq!(snapshot.len(), 25);
        let p = st.id_of(&Term::iri(rdfs::LABEL)).unwrap();
        assert_eq!(st.match_pattern(Pattern::any().with_p(p)).len(), 25);
    }

    #[test]
    fn remove_unknown_triple_is_false() {
        let mut st = store();
        assert!(!st.remove(&Triple::iri(
            "http://e.org/nope",
            rdfs::LABEL,
            Term::literal("x")
        )));
        assert_eq!(st.len(), 20);
    }

    #[test]
    fn stats_count_distinct_terms_per_position() {
        let st = store();
        let stats = st.stats();
        assert_eq!(stats.indexed_triples, 20);
        // 10 subjects, 2 predicates (rdf:type + rdfs:label), 11 objects
        // (the class IRI + 10 distinct labels).
        assert_eq!(stats.distinct, [10, 2, 11]);
        assert_eq!(stats.distinct_at(1), 2);
        // Cached value is stable across calls.
        assert_eq!(st.stats(), stats);
    }

    #[test]
    fn revision_bumps_on_every_mutation_and_resets_stats() {
        let mut st = TripleStore::with_tail_limit(1000);
        let r0 = st.revision();
        let t = Triple::iri("http://e.org/a", rdfs::LABEL, Term::literal("A"));
        assert!(st.insert(&t));
        let r1 = st.revision();
        assert_ne!(r0, r1, "insert bumps revision");
        assert_eq!(st.stats().indexed_triples, 0, "tail not indexed yet");
        st.merge_tail();
        let r2 = st.revision();
        assert_ne!(r1, r2, "merge bumps revision");
        assert_eq!(st.stats().indexed_triples, 1, "stats recomputed");
        assert!(st.remove(&t));
        assert_ne!(st.revision(), r2, "remove bumps revision");
        // Two stores never share a revision.
        let other = TripleStore::from_graph(&Graph::new());
        assert_ne!(other.revision(), st.revision());
    }

    #[test]
    fn estimate_pattern_is_exact_without_deletions() {
        let mut st = store();
        let p = st.id_of(&Term::iri(rdf::TYPE)).unwrap();
        let pat = Pattern::any().with_p(p);
        assert_eq!(st.estimate_pattern(pat), st.count_pattern(pat));
        // With a pending tombstone the estimate is an upper bound.
        st.remove(&Triple::iri(
            "http://e.org/s0",
            rdf::TYPE,
            Term::iri("http://e.org/C"),
        ));
        assert!(st.estimate_pattern(pat) >= st.count_pattern(pat));
    }

    #[test]
    fn sorted_scan_equals_explicit_sort_for_every_shape_and_position() {
        // Exercise both the zero-sort fast path (tail empty) and the
        // fallback (tail present, tombstones pending) against the
        // brute-force reference order.
        let mut st = store();
        st.remove(&Triple::iri(
            "http://e.org/s4",
            rdf::TYPE,
            Term::iri("http://e.org/C"),
        ));
        for with_tail in [false, true] {
            if with_tail {
                // Leave fresh triples in the tail (limit is high enough).
                let mut grown = TripleStore::with_tail_limit(1_000_000);
                for t in st.match_pattern(Pattern::any()) {
                    grown.insert(&st.decode(t));
                }
                grown.merge_tail();
                grown.insert(&Triple::iri(
                    "http://e.org/zz",
                    rdfs::LABEL,
                    Term::literal("zz"),
                ));
                st = grown;
            }
            let s = st.id_of(&Term::iri("http://e.org/s3"));
            let p = st.id_of(&Term::iri(rdfs::LABEL));
            let o = st.id_of(&Term::iri("http://e.org/C"));
            for &ps in &[None, s] {
                for &pp in &[None, p] {
                    for &po in &[None, o] {
                        let pat = Pattern {
                            s: ps,
                            p: pp,
                            o: po,
                        };
                        for position in 0..3 {
                            let got = st.match_pattern_sorted_by(pat, position);
                            let mut want = st.match_pattern(pat);
                            want.sort_unstable_by_key(|t| (t[position], *t));
                            assert_eq!(got, want, "pattern {pat:?} position {position}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn natural_order_starts_at_the_natural_position() {
        for s in [false, true] {
            for p in [false, true] {
                for o in [false, true] {
                    let order = TripleStore::natural_order(s, p, o);
                    assert_eq!(
                        order.first().copied(),
                        TripleStore::natural_position(s, p, o),
                        "shape ({s},{p},{o})"
                    );
                    assert_eq!(
                        order.len(),
                        [s, p, o].iter().filter(|b| !**b).count(),
                        "every unbound position appears once for ({s},{p},{o})"
                    );
                }
            }
        }
    }

    #[test]
    fn lex_sorted_scan_equals_explicit_sort_for_every_shape_and_order() {
        let mut st = store();
        st.remove(&Triple::iri(
            "http://e.org/s4",
            rdf::TYPE,
            Term::iri("http://e.org/C"),
        ));
        let s = st.id_of(&Term::iri("http://e.org/s3"));
        let p = st.id_of(&Term::iri(rdfs::LABEL));
        let reference = |st: &TripleStore, pat: Pattern, positions: &[usize]| {
            let mut want = st.match_pattern(pat);
            want.sort_unstable_by_key(|t| {
                let mut key = [0u32; 3];
                for (slot, &pos) in key.iter_mut().zip(positions) {
                    *slot = t[pos];
                }
                (key, *t)
            });
            want
        };
        // Every bound shape with its natural order (zero-sort fast path)
        // and with a deliberately different permutation (explicit sort).
        for &ps in &[None, s] {
            for &pp in &[None, p] {
                let pat = Pattern {
                    s: ps,
                    p: pp,
                    o: None,
                };
                let natural =
                    TripleStore::natural_order(ps.is_some(), pp.is_some(), false).to_vec();
                let mut reversed = natural.clone();
                reversed.reverse();
                for positions in [natural, reversed, vec![2, 1, 0], vec![0]] {
                    let got = st.match_pattern_sorted_lex(pat, &positions);
                    assert_eq!(
                        got,
                        reference(&st, pat, &positions),
                        "pattern {pat:?} positions {positions:?}"
                    );
                }
            }
        }
        // A tailed store must fall back to the explicit sort and agree.
        st.insert(&Triple::iri(
            "http://e.org/zz",
            rdfs::LABEL,
            Term::literal("zz"),
        ));
        assert!(st.tail_len() > 0);
        let pat = Pattern::any();
        let positions = [0usize, 1, 2];
        assert_eq!(
            st.match_pattern_sorted_lex(pat, &positions),
            reference(&st, pat, &positions)
        );
    }

    /// The `store()` fixture split into a base region (its sorted
    /// triples) and a layered store on top.
    fn layered_store() -> (TripleStore, TripleStore) {
        let reference = store();
        let base = store();
        let dict = base.dict().clone();
        let layered = TripleStore::with_base(dict, Arc::new(base));
        (layered, reference)
    }

    #[test]
    fn base_backed_store_reads_like_the_flat_store() {
        let (layered, reference) = layered_store();
        assert_eq!(layered.len(), reference.len());
        let s = reference.id_of(&Term::iri("http://e.org/s3"));
        let p = reference.id_of(&Term::iri(rdf::TYPE));
        let o = reference.id_of(&Term::iri("http://e.org/C"));
        for &ps in &[None, s] {
            for &pp in &[None, p] {
                for &po in &[None, o] {
                    let pat = Pattern {
                        s: ps,
                        p: pp,
                        o: po,
                    };
                    assert_eq!(
                        layered.match_pattern(pat),
                        reference.match_pattern(pat),
                        "{pat:?}"
                    );
                    assert_eq!(layered.count_pattern(pat), reference.count_pattern(pat));
                    assert!(layered.estimate_pattern(pat) >= layered.count_pattern(pat));
                    for position in 0..3 {
                        assert_eq!(
                            layered.match_pattern_sorted_by(pat, position),
                            reference.match_pattern_sorted_by(pat, position),
                            "{pat:?} sorted_by {position}"
                        );
                    }
                    for positions in [&[0usize, 1, 2][..], &[2, 0], &[1]] {
                        assert_eq!(
                            layered.match_pattern_sorted_lex(pat, positions),
                            reference.match_pattern_sorted_lex(pat, positions),
                            "{pat:?} sorted_lex {positions:?}"
                        );
                    }
                }
            }
        }
        assert_eq!(layered.stats(), reference.stats());
    }

    #[test]
    fn base_backed_store_supports_inserts_deletes_and_tombstones() {
        let (mut layered, _) = layered_store();
        let n = layered.len();
        // Duplicate of a base triple is rejected.
        let dup = Triple::iri("http://e.org/s0", rdf::TYPE, Term::iri("http://e.org/C"));
        assert!(layered.contains(&dup));
        assert!(!layered.insert(&dup));
        assert_eq!(layered.len(), n);
        // A new triple lands in the tail and unions with base reads.
        let fresh = Triple::iri("http://e.org/zz", rdfs::LABEL, Term::literal("zz"));
        assert!(layered.insert(&fresh));
        assert_eq!(layered.len(), n + 1);
        let p = layered.id_of(&Term::iri(rdfs::LABEL)).unwrap();
        assert_eq!(layered.match_pattern(Pattern::any().with_p(p)).len(), 11);
        // Deleting a base triple tombstones it…
        assert!(layered.remove(&dup));
        assert!(!layered.contains(&dup));
        assert_eq!(layered.len(), n);
        // …and the tombstone survives a tail merge (the base is
        // immutable, so the tombstone is the only record of the delete).
        layered.merge_tail();
        assert!(!layered.contains(&dup));
        let t = layered.id_of(&Term::iri(rdf::TYPE)).unwrap();
        assert_eq!(layered.match_pattern(Pattern::any().with_p(t)).len(), 9);
        assert_eq!(layered.count_pattern(Pattern::any().with_p(t)), 9);
        // Resurrection works across the base boundary.
        assert!(layered.insert(&dup));
        assert!(layered.contains(&dup));
        assert_eq!(layered.count_pattern(Pattern::any().with_p(t)), 10);
        // Sorted scans stay consistent with the explicit sort everywhere.
        for position in 0..3 {
            let got = layered.match_pattern_sorted_by(Pattern::any(), position);
            let mut want = layered.match_pattern(Pattern::any());
            want.sort_unstable_by_key(|x| (x[position], *x));
            assert_eq!(got, want, "position {position}");
        }
        // Snapshot includes base + local minus tombstones, SPO-sorted.
        let snap = layered.snapshot_sorted();
        assert_eq!(snap.len(), layered.len());
        assert!(snap.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chunked_matches_concatenate_to_match_pattern() {
        // The streaming bridge must see exactly what the materializing
        // path sees — same rows, same order — on every store shape:
        // flat, base-backed, and base-backed with tombstones + tail.
        let collect = |st: &TripleStore, pat: Pattern| -> Vec<EncodedTriple> {
            let mut out = Vec::new();
            assert!(st.match_pattern_chunks(pat, &mut |c| {
                assert!(!c.is_empty(), "empty chunk emitted for {pat:?}");
                out.extend_from_slice(c);
                true
            }));
            out
        };
        let check_all = |st: &TripleStore| {
            let s = st.id_of(&Term::iri("http://e.org/s3"));
            let p = st.id_of(&Term::iri(rdf::TYPE));
            let o = st.id_of(&Term::iri("http://e.org/C"));
            for &ps in &[None, s] {
                for &pp in &[None, p] {
                    for &po in &[None, o] {
                        let pat = Pattern {
                            s: ps,
                            p: pp,
                            o: po,
                        };
                        assert_eq!(collect(st, pat), st.match_pattern(pat), "{pat:?}");
                    }
                }
            }
        };
        check_all(&store());
        let (mut layered, _) = layered_store();
        check_all(&layered);
        // Tombstone a base triple, resurrect-adjacent insert, leave a tail.
        let dup = Triple::iri("http://e.org/s0", rdf::TYPE, Term::iri("http://e.org/C"));
        assert!(layered.remove(&dup));
        layered.insert(&Triple::iri(
            "http://e.org/zz",
            rdfs::LABEL,
            Term::literal("zz"),
        ));
        assert!(layered.tail_len() > 0);
        check_all(&layered);
        // Early stop: the callback returning false halts the scan and
        // the bridge reports it.
        let mut calls = 0usize;
        assert!(!layered.match_pattern_chunks(Pattern::any(), &mut |_| {
            calls += 1;
            false
        }));
        assert_eq!(calls, 1);
    }

    #[test]
    fn match_equals_naive_scan_on_random_patterns() {
        // Cross-check every access path against the brute-force filter.
        let st = store();
        let all = st.match_pattern(Pattern::any());
        let ids: Vec<u32> = (0..st.dict().len() as u32).collect();
        for &s in &[None, Some(ids[0]), Some(ids[5])] {
            for &p in &[None, Some(ids[1]), Some(ids[3])] {
                for &o in &[None, Some(ids[2]), Some(ids[8])] {
                    let pat = Pattern {
                        s: s.map(TermId),
                        p: p.map(TermId),
                        o: o.map(TermId),
                    };
                    let mut got = st.match_pattern(pat);
                    let mut want: Vec<_> = all.iter().filter(|t| pat.matches(t)).copied().collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got, want, "pattern {pat:?}");
                }
            }
        }
    }
}
