//! Seekable sorted-prefix cursors for multiway (worst-case-optimal)
//! joins.
//!
//! A [`SortedCursor`] walks one pattern's matches as a *trie*: the run
//! is sorted lexicographically by a sequence of triple positions (see
//! [`crate::TripleStore::match_pattern_sorted_lex`]), each position is
//! one trie level, and the distinct values at the current level within
//! the current range are the node's children. The three operations a
//! leapfrog triejoin needs are all sub-linear over the sorted run:
//!
//! * [`SortedCursor::seek_geq`] — gallop (exponential probe + binary
//!   search) to the first entry whose current-level value is `≥ v`,
//! * [`SortedCursor::open`] — descend into the current value, narrowing
//!   the range to its equal-run,
//! * [`SortedCursor::up`] — pop back to the parent range.
//!
//! The cursor is a *view*: it borrows the run, allocates nothing but
//! its small range stack, and several cursors over the same run are
//! cheap (the per-candidate worker pattern in `wodex-sparql`'s WCO
//! executor). Seek and descent counters are kept per cursor so an
//! executor can aggregate them into metrics.

use crate::encoded::EncodedTriple;

/// A trie-style cursor over a lexicographically sorted triple run.
///
/// Invariants: `run` is sorted by the value tuple at `levels` (ties
/// broken arbitrarily — with `levels` covering every variable position
/// of a pattern there are none); `stack` always holds the root range at
/// the bottom, and each pushed range is the equal-run of one value one
/// level deeper.
#[derive(Debug)]
pub struct SortedCursor<'a> {
    run: &'a [EncodedTriple],
    levels: &'a [usize],
    /// `(lo, hi)` ranges; the top is the currently enumerated level.
    stack: Vec<(usize, usize)>,
    /// Enumeration position within the top range.
    pos: usize,
    seeks: u64,
    descents: u64,
}

impl<'a> SortedCursor<'a> {
    /// Creates a cursor at depth 0 over the whole run. `levels` maps
    /// trie depth to triple position (0 = s, 1 = p, 2 = o); the run
    /// must already be sorted lexicographically by that sequence.
    pub fn new(run: &'a [EncodedTriple], levels: &'a [usize]) -> SortedCursor<'a> {
        let mut stack = Vec::with_capacity(levels.len() + 1);
        stack.push((0, run.len()));
        SortedCursor {
            run,
            levels,
            stack,
            pos: 0,
            seeks: 0,
            descents: 0,
        }
    }

    /// Current trie depth: how many values have been [`SortedCursor::open`]ed.
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// Rewinds the enumeration position to the start of the current
    /// range. A relation re-entering a join level it does not share
    /// with the levels in between must start its range over.
    pub fn reset(&mut self) {
        self.pos = self.stack.last().expect("root range always present").0;
    }

    /// The current-level value at the enumeration position, or `None`
    /// when the range is exhausted.
    pub fn current(&self) -> Option<u32> {
        let &(_, hi) = self.stack.last().expect("root range always present");
        (self.pos < hi).then(|| self.run[self.pos][self.levels[self.depth()]])
    }

    /// Seeks forward (never backward) to the first entry whose
    /// current-level value is `≥ v`, returning that value. Galloping:
    /// exponential probe doubling from the current position, then a
    /// binary search inside the bracketed window — `O(log d)` in the
    /// distance `d` moved, the bound leapfrog's complexity proof needs.
    pub fn seek_geq(&mut self, v: u32) -> Option<u32> {
        self.seeks += 1;
        let &(_, hi) = self.stack.last().expect("root range always present");
        let lo = self.pos;
        if lo >= hi {
            return None;
        }
        let lvl = self.levels[self.depth()];
        let mut offset = 1usize;
        while lo + offset < hi && self.run[lo + offset][lvl] < v {
            offset *= 2;
        }
        let win_lo = lo + offset / 2;
        let win_hi = (lo + offset).min(hi);
        self.pos = win_lo + self.run[win_lo..win_hi].partition_point(|t| t[lvl] < v);
        self.current()
    }

    /// Descends into the current value: the new top range is its
    /// equal-run one level deeper, with the enumeration position at its
    /// start. Panics if the range is exhausted or already at the
    /// deepest level.
    pub fn open(&mut self) {
        let v = self.current().expect("open requires a current value");
        let &(_, hi) = self.stack.last().expect("root range always present");
        let lvl = self.levels[self.depth()];
        debug_assert!(self.depth() < self.levels.len(), "trie depth overflow");
        // The equal-run end, found by the same gallop as seek.
        let lo = self.pos;
        let mut offset = 1usize;
        while lo + offset < hi && self.run[lo + offset][lvl] == v {
            offset *= 2;
        }
        let win_lo = lo + offset / 2;
        let win_hi = (lo + offset).min(hi);
        let end = win_lo + self.run[win_lo..win_hi].partition_point(|t| t[lvl] == v);
        self.stack.push((lo, end));
        self.descents += 1;
    }

    /// Pops back to the parent range, leaving the enumeration position
    /// at the start of the value that was opened (callers seek past it).
    pub fn up(&mut self) {
        assert!(self.stack.len() > 1, "cannot pop the root range");
        let (lo, _) = self.stack.pop().expect("checked non-root");
        self.pos = lo;
    }

    /// `(seek_geq calls, open descents)` performed so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.seeks, self.descents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// s-major, o-minor sorted run shaped like `?s <p> ?o` matches.
    fn run() -> Vec<EncodedTriple> {
        vec![
            [1, 7, 2],
            [1, 7, 5],
            [1, 7, 9],
            [3, 7, 1],
            [3, 7, 5],
            [8, 7, 5],
            [8, 7, 8],
        ]
    }

    #[test]
    fn seek_gallops_to_the_first_geq_value() {
        let r = run();
        let levels = [0usize, 2];
        let mut c = SortedCursor::new(&r, &levels);
        assert_eq!(c.current(), Some(1));
        assert_eq!(c.seek_geq(2), Some(3));
        assert_eq!(c.seek_geq(3), Some(3), "seek to the current value stays");
        assert_eq!(c.seek_geq(4), Some(8));
        assert_eq!(c.seek_geq(9), None, "past the last value");
    }

    #[test]
    fn open_narrows_to_the_equal_run_and_up_restores() {
        let r = run();
        let levels = [0usize, 2];
        let mut c = SortedCursor::new(&r, &levels);
        assert_eq!(c.seek_geq(1), Some(1));
        c.open();
        assert_eq!(c.depth(), 1);
        // Children of s=1 are its objects 2, 5, 9.
        assert_eq!(c.current(), Some(2));
        assert_eq!(c.seek_geq(3), Some(5));
        assert_eq!(c.seek_geq(6), Some(9));
        c.up();
        assert_eq!(c.depth(), 0);
        assert_eq!(
            c.current(),
            Some(1),
            "parent position points at the opened value"
        );
        assert_eq!(c.seek_geq(2), Some(3));
        c.open();
        assert_eq!(c.current(), Some(1), "objects of s=3 start at 1");
    }

    #[test]
    fn reset_rewinds_the_top_range() {
        let r = run();
        let levels = [0usize, 2];
        let mut c = SortedCursor::new(&r, &levels);
        assert_eq!(c.seek_geq(8), Some(8));
        c.reset();
        assert_eq!(c.current(), Some(1));
        // Reset inside an opened range rewinds to that range's start.
        assert_eq!(c.seek_geq(3), Some(3));
        c.open();
        assert_eq!(c.seek_geq(5), Some(5));
        c.reset();
        assert_eq!(c.current(), Some(1));
    }

    #[test]
    fn counters_track_seeks_and_descents() {
        let r = run();
        let levels = [0usize, 2];
        let mut c = SortedCursor::new(&r, &levels);
        let _ = c.seek_geq(3);
        c.open();
        let _ = c.seek_geq(5);
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn empty_run_is_exhausted_from_the_start() {
        let r: Vec<EncodedTriple> = Vec::new();
        let levels = [0usize];
        let mut c = SortedCursor::new(&r, &levels);
        assert_eq!(c.current(), None);
        assert_eq!(c.seek_geq(0), None);
    }

    #[test]
    fn seek_past_end_is_sticky_and_safe() {
        let r = run();
        let levels = [0usize, 2];
        let mut c = SortedCursor::new(&r, &levels);
        // Past the last level-0 value: exhausted, and every further seek
        // (smaller, equal, maximal) stays exhausted without wrapping.
        assert_eq!(c.seek_geq(9), None);
        assert_eq!(c.current(), None);
        assert_eq!(c.seek_geq(0), None, "seek never goes backward");
        assert_eq!(c.seek_geq(u32::MAX), None);
        // Reset recovers the full range.
        c.reset();
        assert_eq!(c.current(), Some(1));
    }

    #[test]
    fn seek_past_end_inside_an_opened_range_stays_in_range() {
        let r = run();
        let levels = [0usize, 2];
        let mut c = SortedCursor::new(&r, &levels);
        assert_eq!(c.seek_geq(3), Some(3));
        c.open();
        // s=3's objects are 1 and 5; seeking past them exhausts only the
        // subrange, never leaking into s=8's objects.
        assert_eq!(c.seek_geq(6), None);
        assert_eq!(c.seek_geq(u32::MAX), None);
        c.up();
        assert_eq!(c.seek_geq(4), Some(8), "parent range is intact");
    }

    #[test]
    fn duplicate_prefix_runs_group_into_one_child_range() {
        // Many entries sharing one level-0 value (a "fat" trie node),
        // with duplicate (s, p) prefixes differing only at the last
        // level — the shape galloping must bracket correctly.
        let r: Vec<EncodedTriple> = (0..64u32)
            .map(|i| [7, i / 8, i])
            .chain(std::iter::once([9, 0, 0]))
            .collect();
        let levels = [0usize, 1, 2];
        let mut c = SortedCursor::new(&r, &levels);
        assert_eq!(c.seek_geq(7), Some(7));
        c.open();
        // Level 1 enumerates each duplicated prefix value exactly once
        // per seek target.
        for want in 0..8u32 {
            assert_eq!(c.seek_geq(want), Some(want));
            c.open();
            assert_eq!(c.current(), Some(want * 8), "first grandchild");
            // The equal-run has exactly 8 leaves.
            assert_eq!(c.seek_geq(want * 8 + 7), Some(want * 8 + 7));
            assert_eq!(c.seek_geq(want * 8 + 8), None);
            c.up();
        }
        assert_eq!(c.seek_geq(8), None, "no ninth prefix under s=7");
        c.up();
        assert_eq!(c.seek_geq(8), Some(9), "sibling subject still there");
    }
}
