//! Exploration-aware prefetching.
//!
//! Pan/zoom interaction has strong *momentum*: the next viewport is
//! overwhelmingly likely to continue the current direction of movement.
//! The survey's §4 lists prefetching (\[16\] dynamic tile prefetching, \[39\]
//! visual-exploration prefetching, \[128\] latent-feature following) as a
//! key future direction for WoD systems. [`TilePrefetcher`] implements the
//! momentum strategy over an abstract 1-D/2-D tile space: after each demand
//! request it extrapolates the recent movement vector and preloads the
//! predicted tiles into an LRU tile cache.

use crate::cache::LruCache;
use std::sync::{Arc, OnceLock};
use wodex_obs::Counter;

/// A tile coordinate (1-D exploration uses `y = 0`).
pub type Tile = (i64, i64);

/// Global registry mirrors shared by every prefetcher in the process.
struct PrefetchMetrics {
    demand_hits: Arc<Counter>,
    demand_misses: Arc<Counter>,
    prefetched: Arc<Counter>,
}

fn prefetch_metrics() -> &'static PrefetchMetrics {
    static METRICS: OnceLock<PrefetchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        PrefetchMetrics {
            demand_hits: r.counter(
                "wodex_store_prefetch_demand_hits_total",
                "Demand tile requests served from the prefetch cache",
            ),
            demand_misses: r.counter(
                "wodex_store_prefetch_demand_misses_total",
                "Demand tile requests that fetched synchronously",
            ),
            prefetched: r.counter(
                "wodex_store_prefetch_speculative_total",
                "Tiles preloaded speculatively along the movement vector",
            ),
        }
    })
}

/// Prefetcher counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Demand requests served from cache.
    pub demand_hits: u64,
    /// Demand requests that had to fetch synchronously.
    pub demand_misses: u64,
    /// Tiles preloaded speculatively.
    pub prefetched: u64,
}

impl PrefetchStats {
    /// Fraction of demand requests served without a synchronous fetch.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.demand_hits + self.demand_misses;
        if total == 0 {
            0.0
        } else {
            self.demand_hits as f64 / total as f64
        }
    }
}

/// A tile cache with momentum-based prefetching.
pub struct TilePrefetcher<V> {
    cache: LruCache<Tile, V>,
    history: Vec<Tile>,
    depth: usize,
    stats: PrefetchStats,
}

impl<V: Clone> TilePrefetcher<V> {
    /// Creates a prefetcher with an LRU tile cache of `capacity` tiles,
    /// prefetching `depth` tiles ahead along the movement vector
    /// (`depth = 0` disables prefetching — the baseline configuration for
    /// experiment E6).
    pub fn new(capacity: usize, depth: usize) -> TilePrefetcher<V> {
        TilePrefetcher {
            cache: LruCache::new(capacity),
            history: Vec::new(),
            depth,
            stats: PrefetchStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Handles a demand request for `tile`; `fetch` loads a tile's payload
    /// when it is not resident. Returns the payload and then prefetches
    /// predicted tiles.
    pub fn request(&mut self, tile: Tile, mut fetch: impl FnMut(Tile) -> V) -> V {
        match self.try_request(tile, |t| Ok::<V, std::convert::Infallible>(fetch(t))) {
            Ok(v) => v,
        }
    }

    /// Fallible [`TilePrefetcher::request`]: a failed *demand* fetch
    /// propagates its error (nothing is cached); a failed *speculative*
    /// fetch is dropped silently — prefetching is best-effort, and the
    /// demand path will retry the tile properly if it is ever needed.
    pub fn try_request<E>(
        &mut self,
        tile: Tile,
        mut fetch: impl FnMut(Tile) -> Result<V, E>,
    ) -> Result<V, E> {
        // Single lookup: get-then-get on the LRU would bump recency twice
        // and TOCTOU-races against any future interior mutability.
        let m = prefetch_metrics();
        let value = match self.cache.get(&tile).cloned() {
            Some(v) => {
                self.stats.demand_hits += 1;
                m.demand_hits.inc();
                v
            }
            None => {
                self.stats.demand_misses += 1;
                m.demand_misses.inc();
                let v = fetch(tile)?;
                self.cache.put(tile, v.clone());
                v
            }
        };
        self.history.push(tile);
        if self.history.len() > 8 {
            self.history.remove(0);
        }
        for t in self.predict() {
            if !self.cache.peek(&t) {
                if let Ok(v) = fetch(t) {
                    self.cache.put(t, v);
                    self.stats.prefetched += 1;
                    m.prefetched.inc();
                }
            }
        }
        Ok(value)
    }

    /// Predicts the next tiles by extrapolating the last movement vector.
    /// No movement (or a single observation) predicts nothing.
    pub fn predict(&self) -> Vec<Tile> {
        if self.depth == 0 || self.history.len() < 2 {
            return Vec::new();
        }
        let a = self.history[self.history.len() - 2];
        let b = self.history[self.history.len() - 1];
        let v = (b.0 - a.0, b.1 - a.1);
        if v == (0, 0) {
            return Vec::new();
        }
        (1..=self.depth as i64)
            .map(|k| (b.0 + v.0 * k, b.1 + v.1 * k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a straight pan of `steps` tiles and returns the hit ratio.
    fn pan_hit_ratio(depth: usize, steps: i64) -> f64 {
        let mut pf: TilePrefetcher<u64> = TilePrefetcher::new(64, depth);
        for x in 0..steps {
            pf.request((x, 0), |t| (t.0 * 1000 + t.1) as u64);
        }
        pf.stats().hit_ratio()
    }

    #[test]
    fn no_prefetch_baseline_always_misses_on_a_pan() {
        assert_eq!(pan_hit_ratio(0, 50), 0.0);
    }

    #[test]
    fn momentum_prefetch_hits_on_a_steady_pan() {
        let r = pan_hit_ratio(2, 50);
        assert!(r > 0.9, "steady pan should be nearly all hits, got {r}");
    }

    #[test]
    fn prediction_follows_direction_changes() {
        let mut pf: TilePrefetcher<i64> = TilePrefetcher::new(64, 2);
        pf.request((0, 0), |t| t.0);
        pf.request((1, 0), |t| t.0);
        assert_eq!(pf.predict(), vec![(2, 0), (3, 0)]);
        pf.request((1, 1), |t| t.0); // turn upward
        assert_eq!(pf.predict(), vec![(1, 2), (1, 3)]);
    }

    #[test]
    fn stationary_viewport_predicts_nothing() {
        let mut pf: TilePrefetcher<i64> = TilePrefetcher::new(8, 3);
        pf.request((5, 5), |_| 0);
        pf.request((5, 5), |_| 0);
        assert!(pf.predict().is_empty());
    }

    #[test]
    fn revisits_hit_via_lru() {
        let mut pf: TilePrefetcher<i64> = TilePrefetcher::new(16, 0);
        pf.request((0, 0), |_| 1);
        pf.request((1, 0), |_| 1);
        pf.request((0, 0), |_| panic!("cached"));
        assert_eq!(pf.stats().demand_hits, 1);
    }

    #[test]
    fn fetch_returns_payload() {
        let mut pf: TilePrefetcher<String> = TilePrefetcher::new(4, 1);
        let v = pf.request((3, 4), |t| format!("{},{}", t.0, t.1));
        assert_eq!(v, "3,4");
    }

    #[test]
    fn demand_fetch_error_propagates_and_caches_nothing() {
        let mut pf: TilePrefetcher<i64> = TilePrefetcher::new(8, 2);
        let r = pf.try_request((0, 0), |_| Err::<i64, &str>("disk gone"));
        assert_eq!(r, Err("disk gone"));
        // Next demand for the same tile is a miss — nothing was cached.
        let v = pf.try_request((0, 0), |_| Ok::<_, &str>(9)).unwrap();
        assert_eq!(v, 9);
        assert_eq!(pf.stats().demand_hits, 0);
        assert_eq!(pf.stats().demand_misses, 2);
    }

    #[test]
    fn speculative_fetch_errors_are_swallowed() {
        let mut pf: TilePrefetcher<i64> = TilePrefetcher::new(64, 3);
        pf.try_request((0, 0), |t| Ok::<_, &str>(t.0)).unwrap();
        // Second request establishes momentum; speculative fetches fail.
        let v = pf
            .try_request((1, 0), |t| if t == (1, 0) { Ok(1) } else { Err("flaky") })
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(pf.stats().prefetched, 0);
        // A later demand for the never-prefetched tile still works.
        let v = pf.try_request((2, 0), |_| Ok::<_, &str>(2)).unwrap();
        assert_eq!(v, 2);
    }

    #[test]
    fn prefetched_counter_tracks_speculative_loads() {
        let mut pf: TilePrefetcher<i64> = TilePrefetcher::new(64, 3);
        pf.request((0, 0), |_| 0);
        assert_eq!(pf.stats().prefetched, 0); // no vector yet
        pf.request((1, 0), |_| 0);
        assert_eq!(pf.stats().prefetched, 3);
    }
}
