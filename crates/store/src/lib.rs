//! # wodex-store — a scalable triple store substrate
//!
//! §2 of the survey states the requirement this crate exists to satisfy:
//! modern systems must "*efficiently and effectively handle billion-object
//! dynamic datasets throughout an exploratory scenario*" on "*machines with
//! limited computational and memory resources*", which rules out both
//! preprocessing-everything and loading-everything-in-memory. The store
//! therefore provides, from scratch:
//!
//! * **Dictionary-encoded triples** over [`wodex_rdf::TermDict`] — triples
//!   are `[u32; 3]`, indexes are sorted integer arrays ([`encoded`]).
//! * **SPO/POS/OSP permutation indexes** with binary-search range lookup
//!   and a log-structured unsorted tail so that *streaming inserts* (the
//!   "dynamic setting") do not force a full re-sort per triple
//!   ([`index`], [`memstore`]).
//! * A **paged disk store + buffer pool** with LRU eviction and I/O
//!   accounting — the "Disk" feature column of Tables 1 & 2, and the
//!   architecture the survey's §4 recommends (graphVizdb \[22\], GMine \[72\])
//!   ([`paged`], [`buffer`]).
//! * **Adaptive indexing (database cracking)** \[67\], applied to
//!   exploration-driven range queries exactly as \[144\] proposes: the index
//!   materializes incrementally as a side effect of the query sequence
//!   ([`cracking`]).
//! * An **LRU result cache** and an **exploration-aware prefetcher**
//!   exploiting pan/zoom locality, per the §4 future direction
//!   (caching/prefetching \[16, 39, 128\]) ([`cache`], [`prefetch`]).

//!
//! The disk path is **fault-tolerant**: page reads return typed
//! [`StoreError`]s instead of panicking, every page carries a checksum,
//! transient faults are retried with capped backoff, and a deterministic
//! [`fault::FaultBackend`] injects failures for chaos testing.

pub mod buffer;
pub mod cache;
pub mod cracking;
pub mod cursor;
pub mod encoded;
pub mod fault;
pub mod index;
pub mod memstore;
pub mod mvcc;
pub mod paged;
pub mod prefetch;
pub mod segment;
pub mod shard;

pub use buffer::{BufferPool, PoolStats};
pub use cache::LruCache;
pub use cracking::CrackerColumn;
pub use cursor::SortedCursor;
pub use encoded::{EncodedTriple, Pattern};
pub use fault::{FaultBackend, FaultConfig, FaultSnapshot};
pub use memstore::{StoreStats, TripleStore};
pub use mvcc::{CommitOutcome, DeltaFrame, FramesSince, LiveStore, Snapshot, WalSink, WriteBatch};
pub use paged::{FileBackend, MemBackend, PageBackend, PagedTripleStore};
pub use segment::{shape_key_bounds, shape_order, PagedSegmentSource, SegmentSource};
pub use shard::{Route, ShardMap};
pub use wodex_resilience::{RetrySnapshot, StoreError};
