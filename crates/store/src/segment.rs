//! The [`SegmentSource`] abstraction: one scan interface over every
//! *immutable, sorted* triple region — the in-memory store, the paged
//! disk store, and `wodex-seg`'s persistent compressed segments.
//!
//! The survey's §4 asks for systems "integrated with disk structures,
//! retrieving data dynamically during runtime". The query layer above
//! (`wodex-sparql`'s three engines, the PR 5 planner, the PR 7 shard
//! workers) speaks to [`crate::TripleStore`]; a `TripleStore` can in turn
//! sit on top of any `SegmentSource` as its immutable *base region*, with
//! the existing log-structured tail and tombstones layered on top (see
//! [`crate::TripleStore::with_base`]). That keeps the engines byte-for-byte
//! unchanged while the bytes underneath move from RAM to disk.
//!
//! ## The scan-order contract
//!
//! [`SegmentSource::scan`] must return the *deduplicated* matches in the
//! key order of [`shape_order`]'s index for the pattern's bound shape —
//! exactly the order `TripleStore::match_pattern` yields from its sorted
//! region. Because the bound components are constant across a run, that
//! order simultaneously satisfies `match_pattern_sorted_by`'s
//! `(t[position], t)` order at the shape's natural position and
//! `match_pattern_sorted_lex`'s trie order at the shape's natural
//! position sequence — which is why the provided `scan_sorted_*` methods
//! can delegate to a plain `scan` on the fast path.
//!
//! Every read is fallible ([`StoreError`]): sources that live on disk
//! retry transient faults internally and surface what remains as typed
//! errors, never panics. The infallible `TripleStore` facade above
//! documents its fail-stop translation.

use crate::buffer::BufferPool;
use crate::encoded::{EncodedTriple, Pattern};
use crate::index::Order;
use crate::memstore::{StoreStats, TripleStore};
use crate::paged::{PageBackend, PagedTripleStore, TRIPLES_PER_PAGE};
use wodex_resilience::StoreError;

/// The permutation index a pattern's bound shape scans — the single
/// source of truth shared by `TripleStore::index_run` and every
/// [`SegmentSource`] implementation, so scan orders cannot drift apart.
///
/// For every shape the bound components form a *leading prefix* of the
/// returned order's key (the `s+o` shape lands on OSP's `o, s` prefix),
/// so a range scan needs no residual filtering.
pub fn shape_order(s: bool, p: bool, o: bool) -> Order {
    match (s, p, o) {
        (true, _, false) => Order::Spo,
        (true, true, true) => Order::Spo,
        (false, true, _) => Order::Pos,
        (_, false, true) => Order::Osp,
        (false, false, false) => Order::Spo,
    }
}

/// Inclusive key-space bounds of a pattern's run in its
/// [`shape_order`] index: unbound key components are `0` in the lower
/// bound and `u32::MAX` in the upper. Everything in `[lo, hi]` matches
/// the pattern and vice versa.
pub fn shape_key_bounds(pat: Pattern) -> (Order, [u32; 3], [u32; 3]) {
    let order = shape_order(pat.s.is_some(), pat.p.is_some(), pat.o.is_some());
    let lo = order.key(&[
        pat.s.map_or(0, |t| t.0),
        pat.p.map_or(0, |t| t.0),
        pat.o.map_or(0, |t| t.0),
    ]);
    let hi = order.key(&[
        pat.s.map_or(u32::MAX, |t| t.0),
        pat.p.map_or(u32::MAX, |t| t.0),
        pat.o.map_or(u32::MAX, |t| t.0),
    ]);
    (order, lo, hi)
}

/// An immutable, sorted, deduplicated triple region.
///
/// See the module docs for the scan-order contract. `estimate` and
/// `source_stats` must be cheap (metadata-only) — the PR 5 planner calls
/// them per candidate join order.
pub trait SegmentSource: Send + Sync + std::fmt::Debug {
    /// Total triples in the source.
    fn source_len(&self) -> usize;

    /// All matches of `pat`, deduplicated, in [`shape_order`] key order.
    fn scan(&self, pat: Pattern) -> Result<Vec<EncodedTriple>, StoreError>;

    /// Cheap cardinality upper-bound estimate from metadata only.
    fn estimate(&self, pat: Pattern) -> usize;

    /// Planner statistics from metadata only (no full scan).
    fn source_stats(&self) -> StoreStats;

    /// Streams the matches of `pat` as a sequence of chunks, in the
    /// same order and with the same contents as [`SegmentSource::scan`]
    /// — concatenating every chunk yields exactly `scan(pat)`. Chunk
    /// boundaries are an implementation detail (block-structured
    /// sources emit one chunk per decoded block).
    ///
    /// `f` returns `false` to stop the scan early — a budget-aware
    /// consumer degrades at chunk granularity without the source
    /// decoding further. Returns `Ok(true)` iff the scan ran to
    /// completion. The default materializes via `scan` and emits one
    /// chunk; sources that can stream from cached blocks override it.
    fn scan_chunks(
        &self,
        pat: Pattern,
        f: &mut dyn FnMut(&[EncodedTriple]) -> bool,
    ) -> Result<bool, StoreError> {
        let all = self.scan(pat)?;
        if all.is_empty() {
            return Ok(true);
        }
        Ok(f(&all))
    }

    /// Exact match count. Default: scan and count.
    fn count(&self, pat: Pattern) -> Result<usize, StoreError> {
        Ok(self.scan(pat)?.len())
    }

    /// Membership test. Default: count of the fully bound pattern.
    fn contains_triple(&self, t: &EncodedTriple) -> Result<bool, StoreError> {
        let pat = Pattern {
            s: Some(wodex_rdf::TermId(t[0])),
            p: Some(wodex_rdf::TermId(t[1])),
            o: Some(wodex_rdf::TermId(t[2])),
        };
        Ok(self.count(pat)? > 0)
    }

    /// Matches sorted ascending by `(t[position], t)` — the
    /// `match_pattern_sorted_by` contract. The default delegates to
    /// [`SegmentSource::scan`] when the shape's natural position already
    /// yields that order, and sorts otherwise.
    fn scan_sorted_by(
        &self,
        pat: Pattern,
        position: usize,
    ) -> Result<Vec<EncodedTriple>, StoreError> {
        let natural =
            TripleStore::natural_position(pat.s.is_some(), pat.p.is_some(), pat.o.is_some());
        let mut out = self.scan(pat)?;
        if natural != Some(position) {
            out.sort_unstable_by_key(|t| (t[position], *t));
        }
        Ok(out)
    }

    /// Matches in trie order over `positions` — the
    /// `match_pattern_sorted_lex` contract. The default delegates to
    /// [`SegmentSource::scan`] when `positions` is the shape's natural
    /// order, and sorts otherwise.
    fn scan_sorted_lex(
        &self,
        pat: Pattern,
        positions: &[usize],
    ) -> Result<Vec<EncodedTriple>, StoreError> {
        let natural = TripleStore::natural_order(pat.s.is_some(), pat.p.is_some(), pat.o.is_some());
        let mut out = self.scan(pat)?;
        if positions != natural {
            out.sort_unstable_by_key(|t| {
                let mut key = [0u32; 3];
                for (slot, &p) in key.iter_mut().zip(positions) {
                    *slot = t[p];
                }
                (key, *t)
            });
        }
        Ok(out)
    }
}

/// The in-memory store is its own reference [`SegmentSource`]: every
/// other implementation is tested for scan-for-scan equality against it.
impl SegmentSource for TripleStore {
    fn source_len(&self) -> usize {
        self.len()
    }

    fn scan(&self, pat: Pattern) -> Result<Vec<EncodedTriple>, StoreError> {
        let natural = TripleStore::natural_order(pat.s.is_some(), pat.p.is_some(), pat.o.is_some());
        Ok(self.match_pattern_sorted_lex(pat, natural))
    }

    fn estimate(&self, pat: Pattern) -> usize {
        self.estimate_pattern(pat)
    }

    fn source_stats(&self) -> StoreStats {
        self.stats()
    }

    fn count(&self, pat: Pattern) -> Result<usize, StoreError> {
        Ok(self.count_pattern(pat))
    }

    fn contains_triple(&self, t: &EncodedTriple) -> Result<bool, StoreError> {
        Ok(self.contains_encoded(t))
    }

    fn scan_sorted_by(
        &self,
        pat: Pattern,
        position: usize,
    ) -> Result<Vec<EncodedTriple>, StoreError> {
        Ok(self.match_pattern_sorted_by(pat, position))
    }

    fn scan_sorted_lex(
        &self,
        pat: Pattern,
        positions: &[usize],
    ) -> Result<Vec<EncodedTriple>, StoreError> {
        Ok(self.match_pattern_sorted_lex(pat, positions))
    }
}

/// The PR 2 paged SPO store as a [`SegmentSource`]: subject-bound shapes
/// use the page directory, everything else is a full scan reordered to
/// the shape's key order. It exists to put the fixed-page path behind
/// the same interface as the compressed segments — tests and the
/// chaos sweep drive both through one API.
pub struct PagedSegmentSource<B: PageBackend> {
    store: PagedTripleStore<B>,
    pool: BufferPool,
    stats: StoreStats,
}

impl<B: PageBackend> std::fmt::Debug for PagedSegmentSource<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedSegmentSource")
            .field("len", &self.store.len())
            .field("pages", &self.store.page_count())
            .finish()
    }
}

impl<B: PageBackend> PagedSegmentSource<B> {
    /// Bulk-loads sorted, deduplicated SPO triples into `backend` and
    /// wraps the result with a pool of `pool_pages` resident pages.
    /// Planner statistics are computed once from the input.
    pub fn bulk_load(
        backend: B,
        triples: &[EncodedTriple],
        pool_pages: usize,
    ) -> Result<PagedSegmentSource<B>, StoreError> {
        let mut distinct = [0usize; 3];
        for (i, order) in [Order::Spo, Order::Pos, Order::Osp].into_iter().enumerate() {
            let mut leads: Vec<u32> = triples.iter().map(|t| order.key(t)[0]).collect();
            leads.sort_unstable();
            leads.dedup();
            distinct[i] = leads.len();
        }
        let stats = StoreStats {
            indexed_triples: triples.len(),
            distinct,
        };
        Ok(PagedSegmentSource {
            store: PagedTripleStore::bulk_load(backend, triples)?,
            pool: BufferPool::new(pool_pages),
            stats,
        })
    }

    /// The underlying paged store (for I/O accounting in tests).
    pub fn paged(&self) -> &PagedTripleStore<B> {
        &self.store
    }
}

impl<B: PageBackend + Send + Sync> SegmentSource for PagedSegmentSource<B> {
    fn source_len(&self) -> usize {
        self.store.len()
    }

    fn scan(&self, pat: Pattern) -> Result<Vec<EncodedTriple>, StoreError> {
        let (order, lo, hi) = shape_key_bounds(pat);
        let mut out = if let Some(s) = pat.s {
            self.store.match_subject(&self.pool, s.0)?
        } else {
            self.store.scan_all(&self.pool)?
        };
        out.retain(|t| pat.matches(t));
        if order != Order::Spo {
            out.sort_unstable_by_key(|t| order.key(t));
        }
        debug_assert!(out.iter().all(|t| {
            let k = order.key(t);
            k >= lo && k <= hi
        }));
        Ok(out)
    }

    fn estimate(&self, pat: Pattern) -> usize {
        match pat.s {
            Some(s) => {
                let pages = self.store.pages_for_subject_range(s.0, s.0).len();
                (pages * TRIPLES_PER_PAGE).min(self.store.len())
            }
            None => self.store.len(),
        }
    }

    fn source_stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paged::MemBackend;
    use wodex_rdf::TermId;

    fn triples() -> Vec<EncodedTriple> {
        let mut v = Vec::new();
        for s in 0..20u32 {
            v.push([s, 100, s % 5]);
            v.push([s, 101, 3]);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    fn mem_store(ts: &[EncodedTriple]) -> TripleStore {
        let mut st = TripleStore::with_tail_limit(0);
        for &t in ts {
            // Ids must exist in the dict for decode paths; tests here only
            // exercise encoded scans, so a raw insert suffices.
            st.insert_encoded(t);
        }
        st.merge_tail();
        st
    }

    fn patterns() -> Vec<Pattern> {
        let mut pats = Vec::new();
        for s in [None, Some(TermId(3))] {
            for p in [None, Some(TermId(100))] {
                for o in [None, Some(TermId(3))] {
                    pats.push(Pattern { s, p, o });
                }
            }
        }
        pats
    }

    #[test]
    fn shape_order_matches_memstore_run_selection() {
        // The memstore's scan order is its index_run order; scanning via
        // the trait must agree for every bound shape.
        let ts = triples();
        let st = mem_store(&ts);
        for pat in patterns() {
            let via_trait = st.scan(pat).unwrap();
            let direct = st.match_pattern(pat);
            assert_eq!(via_trait, direct, "shape {pat:?}");
        }
    }

    #[test]
    fn paged_source_agrees_with_memstore_for_every_shape() {
        let ts = triples();
        let st = mem_store(&ts);
        let paged = PagedSegmentSource::bulk_load(MemBackend::new(), &ts, 8).unwrap();
        assert_eq!(paged.source_len(), st.len());
        for pat in patterns() {
            assert_eq!(paged.scan(pat).unwrap(), st.scan(pat).unwrap(), "{pat:?}");
            assert_eq!(
                paged.count(pat).unwrap(),
                st.count_pattern(pat),
                "count {pat:?}"
            );
            assert!(paged.estimate(pat) >= paged.count(pat).unwrap());
            for position in 0..3 {
                assert_eq!(
                    paged.scan_sorted_by(pat, position).unwrap(),
                    st.match_pattern_sorted_by(pat, position),
                    "sorted_by {pat:?}/{position}"
                );
            }
            for positions in [&[0usize, 1, 2][..], &[2, 1, 0], &[1]] {
                assert_eq!(
                    paged.scan_sorted_lex(pat, positions).unwrap(),
                    st.match_pattern_sorted_lex(pat, positions),
                    "sorted_lex {pat:?}/{positions:?}"
                );
            }
        }
    }

    #[test]
    fn key_bounds_bracket_exactly_the_matches() {
        let ts = triples();
        for pat in patterns() {
            let (order, lo, hi) = shape_key_bounds(pat);
            for t in &ts {
                let k = order.key(t);
                assert_eq!(pat.matches(t), k >= lo && k <= hi, "{pat:?} {t:?}");
            }
        }
    }

    #[test]
    fn stats_from_metadata_match_memstore() {
        let ts = triples();
        let st = mem_store(&ts);
        let paged = PagedSegmentSource::bulk_load(MemBackend::new(), &ts, 8).unwrap();
        assert_eq!(paged.source_stats(), st.stats());
    }
}
