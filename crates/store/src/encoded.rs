//! Dictionary-encoded triples and match patterns.

use wodex_rdf::TermId;

/// A triple encoded as three dictionary ids: `[subject, predicate, object]`.
pub type EncodedTriple = [u32; 3];

/// Subject position in an [`EncodedTriple`].
pub const S: usize = 0;
/// Predicate position in an [`EncodedTriple`].
pub const P: usize = 1;
/// Object position in an [`EncodedTriple`].
pub const O: usize = 2;

/// A triple pattern: each position is either bound to a term id or a
/// wildcard. This is the access-path primitive of the store; SPARQL BGPs
/// compile down to sequences of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pattern {
    /// Bound subject, or `None` for a wildcard.
    pub s: Option<TermId>,
    /// Bound predicate, or `None` for a wildcard.
    pub p: Option<TermId>,
    /// Bound object, or `None` for a wildcard.
    pub o: Option<TermId>,
}

impl Pattern {
    /// The fully-unbound pattern (matches everything).
    pub fn any() -> Pattern {
        Pattern::default()
    }

    /// Pattern with a bound subject.
    pub fn with_s(mut self, s: TermId) -> Pattern {
        self.s = Some(s);
        self
    }

    /// Pattern with a bound predicate.
    pub fn with_p(mut self, p: TermId) -> Pattern {
        self.p = Some(p);
        self
    }

    /// Pattern with a bound object.
    pub fn with_o(mut self, o: TermId) -> Pattern {
        self.o = Some(o);
        self
    }

    /// True if the encoded triple matches this pattern.
    pub fn matches(&self, t: &EncodedTriple) -> bool {
        self.s.is_none_or(|v| v.0 == t[S])
            && self.p.is_none_or(|v| v.0 == t[P])
            && self.o.is_none_or(|v| v.0 == t[O])
    }

    /// Number of bound positions (0–3); higher is more selective.
    pub fn bound_count(&self) -> usize {
        usize::from(self.s.is_some())
            + usize::from(self.p.is_some())
            + usize::from(self.o.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_respects_bound_positions() {
        let t: EncodedTriple = [1, 2, 3];
        assert!(Pattern::any().matches(&t));
        assert!(Pattern::any().with_s(TermId(1)).matches(&t));
        assert!(!Pattern::any().with_s(TermId(9)).matches(&t));
        assert!(Pattern::any()
            .with_p(TermId(2))
            .with_o(TermId(3))
            .matches(&t));
        assert!(!Pattern::any()
            .with_p(TermId(2))
            .with_o(TermId(4))
            .matches(&t));
    }

    #[test]
    fn bound_count() {
        assert_eq!(Pattern::any().bound_count(), 0);
        assert_eq!(Pattern::any().with_p(TermId(0)).bound_count(), 1);
        assert_eq!(
            Pattern::any()
                .with_s(TermId(0))
                .with_p(TermId(0))
                .with_o(TermId(0))
                .bound_count(),
            3
        );
    }
}
