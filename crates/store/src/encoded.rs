//! Dictionary-encoded triples and match patterns, plus the *one* set of
//! byte-layout helpers every serialized form of a term id or triple key
//! derives from.
//!
//! Term ids are `u32` ([`wodex_rdf::TermId`]); a raw triple is therefore
//! [`TRIPLE_BYTES`] bytes and a serialized id at most [`MAX_VARINT_BYTES`]
//! varint bytes. The paged store, the segment store (`wodex-seg`), and the
//! on-disk dictionary all encode through [`write_varint`] /
//! [`read_varint`] and [`encode_key_run`] / [`decode_key_run`] so the
//! width assumption lives in exactly one place.

use wodex_rdf::TermId;

/// A triple encoded as three dictionary ids: `[subject, predicate, object]`.
pub type EncodedTriple = [u32; 3];

/// Bytes of one fixed-width term id (`u32` little-endian).
pub const TERM_ID_BYTES: usize = 4;

/// Bytes of one fixed-width encoded triple (three term ids).
pub const TRIPLE_BYTES: usize = 3 * TERM_ID_BYTES;

/// Maximum bytes one LEB128 varint can occupy for a `u64`.
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends `v` as an LEB128 varint (7 payload bits per byte, high bit =
/// continuation). Small deltas — the common case in sorted key runs —
/// cost one byte.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it. Returns `None` on a
/// truncated or over-long (> [`MAX_VARINT_BYTES`]) encoding — corrupt
/// input is a value, never a panic.
pub fn read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// [`read_varint`] narrowed to the term-id width; rejects values that do
/// not fit a `u32` so a corrupt stream cannot silently truncate an id.
pub fn read_varint_u32(data: &[u8], pos: &mut usize) -> Option<u32> {
    u32::try_from(read_varint(data, pos)?).ok()
}

/// Delta-encodes a sorted, deduplicated run of 3-component index keys.
///
/// Per key, relative to its predecessor (the run starts from `[0,0,0]`):
/// the first-component delta is always written; while a higher component's
/// delta is zero the next component is written as a delta too, and once a
/// component moved, the lower components are written raw. Sorted runs make
/// every delta non-negative, so the varints stay short and the layout
/// needs no tag bytes.
pub fn encode_key_run(keys: &[[u32; 3]], out: &mut Vec<u8>) {
    debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "run not sorted");
    let mut prev = [0u32; 3];
    for k in keys {
        let d0 = k[0] - prev[0];
        write_varint(out, u64::from(d0));
        if d0 == 0 {
            let d1 = k[1] - prev[1];
            write_varint(out, u64::from(d1));
            if d1 == 0 {
                write_varint(out, u64::from(k[2] - prev[2]));
            } else {
                write_varint(out, u64::from(k[2]));
            }
        } else {
            write_varint(out, u64::from(k[1]));
            write_varint(out, u64::from(k[2]));
        }
        prev = *k;
    }
}

/// Decodes `count` keys written by [`encode_key_run`], appending to
/// `out`. Returns `None` (leaving `out` in an unspecified state) on
/// truncated input, varint overflow, or a component overflowing `u32` —
/// the typed-corruption path for block decoders.
pub fn decode_key_run(
    data: &[u8],
    pos: &mut usize,
    count: usize,
    out: &mut Vec<[u32; 3]>,
) -> Option<()> {
    let mut prev = [0u32; 3];
    out.reserve(count);
    for _ in 0..count {
        let d0 = read_varint_u32(data, pos)?;
        let k = if d0 == 0 {
            let d1 = read_varint_u32(data, pos)?;
            if d1 == 0 {
                let d2 = read_varint_u32(data, pos)?;
                [prev[0], prev[1], prev[2].checked_add(d2)?]
            } else {
                [
                    prev[0],
                    prev[1].checked_add(d1)?,
                    read_varint_u32(data, pos)?,
                ]
            }
        } else {
            [
                prev[0].checked_add(d0)?,
                read_varint_u32(data, pos)?,
                read_varint_u32(data, pos)?,
            ]
        };
        out.push(k);
        prev = k;
    }
    Some(())
}

/// Subject position in an [`EncodedTriple`].
pub const S: usize = 0;
/// Predicate position in an [`EncodedTriple`].
pub const P: usize = 1;
/// Object position in an [`EncodedTriple`].
pub const O: usize = 2;

/// A triple pattern: each position is either bound to a term id or a
/// wildcard. This is the access-path primitive of the store; SPARQL BGPs
/// compile down to sequences of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pattern {
    /// Bound subject, or `None` for a wildcard.
    pub s: Option<TermId>,
    /// Bound predicate, or `None` for a wildcard.
    pub p: Option<TermId>,
    /// Bound object, or `None` for a wildcard.
    pub o: Option<TermId>,
}

impl Pattern {
    /// The fully-unbound pattern (matches everything).
    pub fn any() -> Pattern {
        Pattern::default()
    }

    /// Pattern with a bound subject.
    pub fn with_s(mut self, s: TermId) -> Pattern {
        self.s = Some(s);
        self
    }

    /// Pattern with a bound predicate.
    pub fn with_p(mut self, p: TermId) -> Pattern {
        self.p = Some(p);
        self
    }

    /// Pattern with a bound object.
    pub fn with_o(mut self, o: TermId) -> Pattern {
        self.o = Some(o);
        self
    }

    /// True if the encoded triple matches this pattern.
    pub fn matches(&self, t: &EncodedTriple) -> bool {
        self.s.is_none_or(|v| v.0 == t[S])
            && self.p.is_none_or(|v| v.0 == t[P])
            && self.o.is_none_or(|v| v.0 == t[O])
    }

    /// Number of bound positions (0–3); higher is more selective.
    pub fn bound_count(&self) -> usize {
        usize::from(self.s.is_some())
            + usize::from(self.p.is_some())
            + usize::from(self.o.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_respects_bound_positions() {
        let t: EncodedTriple = [1, 2, 3];
        assert!(Pattern::any().matches(&t));
        assert!(Pattern::any().with_s(TermId(1)).matches(&t));
        assert!(!Pattern::any().with_s(TermId(9)).matches(&t));
        assert!(Pattern::any()
            .with_p(TermId(2))
            .with_o(TermId(3))
            .matches(&t));
        assert!(!Pattern::any()
            .with_p(TermId(2))
            .with_o(TermId(4))
            .matches(&t));
    }

    #[test]
    fn varint_roundtrip_and_boundaries() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
        // One-byte values really are one byte.
        let mut one = Vec::new();
        write_varint(&mut one, 127);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // Truncated: continuation bit set, then nothing.
        assert_eq!(read_varint(&[0x80], &mut 0), None);
        // Over-long: 10 continuation bytes overflow u64.
        let overlong = [0xffu8; 11];
        assert_eq!(read_varint(&overlong, &mut 0), None);
        // u32 narrowing rejects wider values.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::from(u32::MAX) + 1);
        assert_eq!(read_varint_u32(&buf, &mut 0), None);
    }

    #[test]
    fn key_run_roundtrip_compresses_shared_prefixes() {
        let keys: Vec<[u32; 3]> = vec![
            [0, 0, 0],
            [0, 0, 5],
            [0, 3, 1],
            [7, 1, 9],
            [7, 1, 10],
            [7, 2, 0],
            [u32::MAX, u32::MAX, u32::MAX],
        ];
        let mut buf = Vec::new();
        encode_key_run(&keys, &mut buf);
        let mut out = Vec::new();
        let mut pos = 0;
        decode_key_run(&buf, &mut pos, keys.len(), &mut out).expect("clean decode");
        assert_eq!(out, keys);
        assert_eq!(pos, buf.len());
        // Dense shared-prefix runs beat the raw 12-byte layout.
        let dense: Vec<[u32; 3]> = (0..1000u32).map(|i| [42, 7, i]).collect();
        let mut dense_buf = Vec::new();
        encode_key_run(&dense, &mut dense_buf);
        assert!(
            dense_buf.len() <= dense.len() * TRIPLE_BYTES / 3,
            "delta run should be ≤⅓ of raw: {} vs {}",
            dense_buf.len(),
            dense.len() * TRIPLE_BYTES
        );
    }

    #[test]
    fn key_run_decode_rejects_truncated_input() {
        let keys: Vec<[u32; 3]> = (0..10u32).map(|i| [i, 0, 0]).collect();
        let mut buf = Vec::new();
        encode_key_run(&keys, &mut buf);
        let mut out = Vec::new();
        assert!(decode_key_run(&buf[..buf.len() - 1], &mut 0, keys.len(), &mut out).is_none());
        // Asking for more keys than were encoded also fails cleanly.
        let mut out2 = Vec::new();
        assert!(decode_key_run(&buf, &mut 0, keys.len() + 1, &mut out2).is_none());
    }

    #[test]
    fn bound_count() {
        assert_eq!(Pattern::any().bound_count(), 0);
        assert_eq!(Pattern::any().with_p(TermId(0)).bound_count(), 1);
        assert_eq!(
            Pattern::any()
                .with_s(TermId(0))
                .with_p(TermId(0))
                .with_o(TermId(0))
                .bound_count(),
            3
        );
    }
}
