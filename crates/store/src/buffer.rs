//! A buffer pool with LRU replacement.
//!
//! §4's gap analysis: most surveyed systems "initially load all the
//! examined objects in main memory, assuming that the main memory is large
//! enough". The buffer pool is the standard database answer — a fixed
//! budget of page frames, demand paging, and LRU eviction — and is what
//! lets the paged store ([`crate::paged`]) serve datasets larger than
//! memory with memory use bounded by `capacity × page size` (experiment
//! E5).

use std::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Hit/miss/eviction counters for a pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that required a backend fetch.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit ratio in \[0, 1\]; 0 when no requests were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    data: Arc<Vec<u8>>,
    stamp: u64,
}

struct Inner {
    frames: HashMap<u32, Frame>,
    clock: u64,
    stats: PoolStats,
}

/// A fixed-capacity page cache with LRU replacement.
///
/// The pool is deliberately decoupled from any backend: [`BufferPool::get`]
/// takes a fetch closure, so the same pool serves file pages, in-memory
/// "disk" pages in tests, and tile payloads in the prefetcher.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages (min 1).
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                clock: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Page capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().unwrap().frames.len()
    }

    /// Fetches a page, reading through `fetch` on a miss.
    pub fn get(&self, page_id: u32, fetch: impl FnOnce() -> Vec<u8>) -> Arc<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(frame) = inner.frames.get_mut(&page_id) {
            frame.stamp = clock;
            let data = Arc::clone(&frame.data);
            inner.stats.hits += 1;
            return data;
        }
        inner.stats.misses += 1;
        // Fetch outside the map borrow (still under the lock: the pool is a
        // correctness structure here, not a concurrency benchmark).
        let data = Arc::new(fetch());
        if inner.frames.len() >= self.capacity {
            // Evict the least-recently-used frame.
            if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, f)| f.stamp) {
                inner.frames.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.frames.insert(
            page_id,
            Frame {
                data: Arc::clone(&data),
                stamp: clock,
            },
        );
        data
    }

    /// True if the page is resident (does not touch recency or stats).
    pub fn peek(&self, page_id: u32) -> bool {
        self.inner.lock().unwrap().frames.contains_key(&page_id)
    }

    /// Inserts a page without counting a demand miss — the prefetcher's
    /// entry point. Does nothing if already resident.
    pub fn preload(&self, page_id: u32, fetch: impl FnOnce() -> Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.frames.contains_key(&page_id) {
            return;
        }
        inner.clock += 1;
        let clock = inner.clock;
        let data = Arc::new(fetch());
        if inner.frames.len() >= self.capacity {
            if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, f)| f.stamp) {
                inner.frames.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.frames.insert(page_id, Frame { data, stamp: clock });
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().unwrap().stats
    }

    /// Drops all resident pages and resets counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.frames.clear();
        inner.stats = PoolStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let pool = BufferPool::new(4);
        let a = pool.get(1, || vec![1]);
        let b = pool.get(1, || panic!("must not refetch"));
        assert_eq!(a, b);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let pool = BufferPool::new(2);
        pool.get(1, || vec![1]);
        pool.get(2, || vec![2]);
        pool.get(1, || unreachable!()); // refresh 1
        pool.get(3, || vec![3]); // evicts 2
        assert!(pool.peek(1));
        assert!(!pool.peek(2));
        assert!(pool.peek(3));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_bounded() {
        let pool = BufferPool::new(8);
        for i in 0..100 {
            pool.get(i, || vec![i as u8]);
        }
        assert_eq!(pool.resident(), 8);
        assert_eq!(pool.stats().evictions, 92);
    }

    #[test]
    fn preload_counts_no_miss() {
        let pool = BufferPool::new(4);
        pool.preload(7, || vec![7]);
        assert!(pool.peek(7));
        assert_eq!(pool.stats().misses, 0);
        pool.get(7, || panic!("preloaded"));
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn hit_ratio() {
        let pool = BufferPool::new(4);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        pool.get(1, std::vec::Vec::new);
        pool.get(1, std::vec::Vec::new);
        pool.get(1, std::vec::Vec::new);
        pool.get(2, std::vec::Vec::new);
        assert_eq!(pool.stats().hit_ratio(), 0.5);
    }

    #[test]
    fn clear_resets() {
        let pool = BufferPool::new(2);
        pool.get(1, std::vec::Vec::new);
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let pool = BufferPool::new(0);
        pool.get(1, || vec![1]);
        assert_eq!(pool.resident(), 1);
    }
}
