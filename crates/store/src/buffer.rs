//! A buffer pool with LRU replacement.
//!
//! §4's gap analysis: most surveyed systems "initially load all the
//! examined objects in main memory, assuming that the main memory is large
//! enough". The buffer pool is the standard database answer — a fixed
//! budget of page frames, demand paging, and LRU eviction — and is what
//! lets the paged store ([`crate::paged`]) serve datasets larger than
//! memory with memory use bounded by `capacity × page size` (experiment
//! E5).
//!
//! Fetch closures are fallible: a miss whose backend read fails caches
//! nothing and propagates the error, so the pool never holds a frame it
//! did not fully fetch. Locks recover from poisoning — a panicking reader
//! cannot take the whole pool down with it.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use wodex_obs::Counter;

/// Global registry mirrors shared by every pool in the process. The
/// per-instance [`PoolStats`] stay authoritative for one pool's callers;
/// these feed `/metrics` and the conservation invariant
/// `hits + misses == lookups`.
struct PoolMetrics {
    lookups: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = wodex_obs::global();
        PoolMetrics {
            lookups: r.counter(
                "wodex_store_pool_lookups_total",
                "Buffer-pool page requests (hits + misses)",
            ),
            hits: r.counter(
                "wodex_store_pool_hits_total",
                "Buffer-pool requests served from resident frames",
            ),
            misses: r.counter(
                "wodex_store_pool_misses_total",
                "Buffer-pool requests that required a backend fetch",
            ),
            evictions: r.counter(
                "wodex_store_pool_evictions_total",
                "Frames evicted by LRU replacement",
            ),
        }
    })
}

/// Hit/miss/eviction counters for a pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that required a backend fetch.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit ratio in \[0, 1\]; 0 when no requests were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    data: Arc<Vec<u8>>,
    stamp: u64,
}

struct Inner {
    frames: HashMap<u32, Frame>,
    clock: u64,
    stats: PoolStats,
}

/// A fixed-capacity page cache with LRU replacement.
///
/// The pool is deliberately decoupled from any backend: [`BufferPool::get`]
/// takes a fetch closure, so the same pool serves file pages, in-memory
/// "disk" pages in tests, and tile payloads in the prefetcher.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages (min 1).
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                clock: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Locks the pool state, recovering from poison: the inner map is
    /// always structurally consistent (mutations never panic mid-update),
    /// so an abandoned lock is safe to reuse.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Page capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.lock().frames.len()
    }

    /// Fetches a page, reading through `fetch` on a miss. A failed fetch
    /// caches nothing — the page stays absent and the error propagates.
    pub fn get<E>(
        &self,
        page_id: u32,
        fetch: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<Arc<Vec<u8>>, E> {
        let m = pool_metrics();
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        m.lookups.inc();
        if let Some(frame) = inner.frames.get_mut(&page_id) {
            frame.stamp = clock;
            let data = Arc::clone(&frame.data);
            inner.stats.hits += 1;
            m.hits.inc();
            return Ok(data);
        }
        inner.stats.misses += 1;
        m.misses.inc();
        // Fetch outside the map borrow (still under the lock: the pool is a
        // correctness structure here, not a concurrency benchmark).
        let data = Arc::new(fetch()?);
        if inner.frames.len() >= self.capacity {
            // Evict the least-recently-used frame.
            if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, f)| f.stamp) {
                inner.frames.remove(&victim);
                inner.stats.evictions += 1;
                m.evictions.inc();
            }
        }
        inner.frames.insert(
            page_id,
            Frame {
                data: Arc::clone(&data),
                stamp: clock,
            },
        );
        Ok(data)
    }

    /// True if the page is resident (does not touch recency or stats).
    pub fn peek(&self, page_id: u32) -> bool {
        self.lock().frames.contains_key(&page_id)
    }

    /// Drops one page if resident (without counting an eviction) — used
    /// when a cached page turns out to be corrupt and must be re-read.
    pub fn evict(&self, page_id: u32) {
        self.lock().frames.remove(&page_id);
    }

    /// Inserts a page without counting a demand miss — the prefetcher's
    /// entry point. Does nothing if already resident; a failed fetch
    /// caches nothing and returns the error.
    pub fn preload<E>(
        &self,
        page_id: u32,
        fetch: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<(), E> {
        let mut inner = self.lock();
        if inner.frames.contains_key(&page_id) {
            return Ok(());
        }
        inner.clock += 1;
        let clock = inner.clock;
        let data = Arc::new(fetch()?);
        if inner.frames.len() >= self.capacity {
            if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, f)| f.stamp) {
                inner.frames.remove(&victim);
                inner.stats.evictions += 1;
                pool_metrics().evictions.inc();
            }
        }
        inner.frames.insert(page_id, Frame { data, stamp: clock });
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    /// Drops all resident pages and resets counters.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.frames.clear();
        inner.stats = PoolStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    /// An infallible fetch, for tests that only exercise caching.
    fn ok(bytes: Vec<u8>) -> impl FnOnce() -> Result<Vec<u8>, Infallible> {
        move || Ok(bytes)
    }

    #[test]
    fn hit_after_miss() {
        let pool = BufferPool::new(4);
        let a = pool.get(1, ok(vec![1])).unwrap();
        let b = pool.get(1, || -> Result<_, Infallible> {
            panic!("must not refetch")
        });
        assert_eq!(a, b.unwrap());
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let pool = BufferPool::new(2);
        pool.get(1, ok(vec![1])).unwrap();
        pool.get(2, ok(vec![2])).unwrap();
        pool.get(1, || -> Result<_, Infallible> { unreachable!() })
            .unwrap(); // refresh 1
        pool.get(3, ok(vec![3])).unwrap(); // evicts 2
        assert!(pool.peek(1));
        assert!(!pool.peek(2));
        assert!(pool.peek(3));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_bounded() {
        let pool = BufferPool::new(8);
        for i in 0..100 {
            pool.get(i, ok(vec![i as u8])).unwrap();
        }
        assert_eq!(pool.resident(), 8);
        assert_eq!(pool.stats().evictions, 92);
    }

    #[test]
    fn failed_fetch_caches_nothing() {
        let pool = BufferPool::new(4);
        let r: Result<_, &str> = pool.get(9, || Err("disk gone"));
        assert_eq!(r.unwrap_err(), "disk gone");
        assert!(!pool.peek(9));
        // The miss was counted, and a later successful fetch works.
        assert_eq!(pool.stats().misses, 1);
        pool.get(9, ok(vec![9])).unwrap();
        assert!(pool.peek(9));
    }

    #[test]
    fn evict_drops_a_resident_page() {
        let pool = BufferPool::new(4);
        pool.get(5, ok(vec![5])).unwrap();
        assert!(pool.peek(5));
        pool.evict(5);
        assert!(!pool.peek(5));
        assert_eq!(
            pool.stats().evictions,
            0,
            "manual evict is not an LRU eviction"
        );
    }

    #[test]
    fn preload_counts_no_miss() {
        let pool = BufferPool::new(4);
        pool.preload(7, ok(vec![7])).unwrap();
        assert!(pool.peek(7));
        assert_eq!(pool.stats().misses, 0);
        pool.get(7, || -> Result<_, Infallible> { panic!("preloaded") })
            .unwrap();
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn failed_preload_is_reported_and_caches_nothing() {
        let pool = BufferPool::new(4);
        let r: Result<(), &str> = pool.preload(3, || Err("flaky"));
        assert!(r.is_err());
        assert!(!pool.peek(3));
    }

    #[test]
    fn hit_ratio() {
        let pool = BufferPool::new(4);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        pool.get(1, ok(Vec::new())).unwrap();
        pool.get(1, ok(Vec::new())).unwrap();
        pool.get(1, ok(Vec::new())).unwrap();
        pool.get(2, ok(Vec::new())).unwrap();
        assert_eq!(pool.stats().hit_ratio(), 0.5);
    }

    #[test]
    fn clear_resets() {
        let pool = BufferPool::new(2);
        pool.get(1, ok(Vec::new())).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let pool = BufferPool::new(0);
        pool.get(1, ok(vec![1])).unwrap();
        assert_eq!(pool.resident(), 1);
    }
}
