//! Force-directed edge bundling (FDEB).
//!
//! §4's second edge-aggregation family: "*other approaches adopt edge
//! bundling techniques which aggregate graph edges to bundles*" [48, 44,
//! 107, 90, 34, 63]. Bundling reduces visual clutter ("ink") by routing
//! compatible edges along shared curved paths.
//!
//! This is Holten & van Wijk's FDEB with the standard compatibility
//! measure: edges are subdivided into control points that attract the
//! corresponding points of compatible edges, with the subdivision doubled
//! over a few cycles. The clutter metric [`total_ink`] lets experiment E9
//! quantify the reduction.

use crate::layout::Point;

/// A polyline path for one edge (endpoints fixed, interior points move).
pub type EdgePath = Vec<Point>;

/// Parameters for [`bundle`].
#[derive(Debug, Clone, Copy)]
pub struct BundleParams {
    /// Subdivision-doubling cycles (points per edge ≈ 2^cycles).
    pub cycles: usize,
    /// Iterations per cycle.
    pub iterations: usize,
    /// Spring constant between consecutive control points.
    pub stiffness: f32,
    /// Step size for control-point movement.
    pub step: f32,
    /// Minimum edge-pair compatibility (0..1) to interact.
    pub compat_threshold: f32,
}

impl Default for BundleParams {
    fn default() -> Self {
        BundleParams {
            cycles: 4,
            iterations: 30,
            stiffness: 0.1,
            step: 0.4,
            compat_threshold: 0.6,
        }
    }
}

/// Holten's edge-pair compatibility: the product of angle, scale,
/// position, and visibility-ish terms, each in \[0, 1\].
pub fn compatibility(p: (Point, Point), q: (Point, Point)) -> f32 {
    let vp = Point::new(p.1.x - p.0.x, p.1.y - p.0.y);
    let vq = Point::new(q.1.x - q.0.x, q.1.y - q.0.y);
    let lp = (vp.x * vp.x + vp.y * vp.y).sqrt();
    let lq = (vq.x * vq.x + vq.y * vq.y).sqrt();
    if lp < 1e-6 || lq < 1e-6 {
        return 0.0;
    }
    // Angle compatibility.
    let cos = ((vp.x * vq.x + vp.y * vq.y) / (lp * lq)).abs();
    // Scale compatibility.
    let lavg = (lp + lq) / 2.0;
    let scale = 2.0 / (lavg / lp.min(lq) + lp.max(lq) / lavg);
    // Position compatibility.
    let mp = Point::new((p.0.x + p.1.x) / 2.0, (p.0.y + p.1.y) / 2.0);
    let mq = Point::new((q.0.x + q.1.x) / 2.0, (q.0.y + q.1.y) / 2.0);
    let pos = lavg / (lavg + mp.dist(&mq));
    cos * scale * pos
}

/// Bundles a set of straight edges (pairs of endpoints) into curved
/// paths. O(E² · points) — meant for the rendered *visible* edge set (a
/// few hundred edges), which is exactly where bundling applies.
pub fn bundle(edges: &[(Point, Point)], params: BundleParams) -> Vec<EdgePath> {
    let m = edges.len();
    // Initialize: endpoints plus one midpoint.
    let mut paths: Vec<EdgePath> = edges
        .iter()
        .map(|&(a, b)| vec![a, Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0), b])
        .collect();
    if m < 2 {
        return paths;
    }
    // Precompute pairwise compatibility.
    let mut compat = vec![Vec::new(); m];
    for i in 0..m {
        for j in (i + 1)..m {
            let c = compatibility(edges[i], edges[j]);
            if c >= params.compat_threshold {
                compat[i].push((j, c));
                compat[j].push((i, c));
            }
        }
    }
    let mut step = params.step;
    for cycle in 0..params.cycles {
        if cycle > 0 {
            // Double subdivision: insert midpoints between existing points.
            for path in &mut paths {
                let mut denser = Vec::with_capacity(path.len() * 2 - 1);
                for w in path.windows(2) {
                    denser.push(w[0]);
                    denser.push(Point::new((w[0].x + w[1].x) / 2.0, (w[0].y + w[1].y) / 2.0));
                }
                denser.push(*path.last().expect("non-empty path"));
                *path = denser;
            }
            step *= 0.5;
        }
        let points = paths[0].len();
        for _ in 0..params.iterations {
            let snapshot = paths.clone();
            for (i, path) in paths.iter_mut().enumerate() {
                for t in 1..points - 1 {
                    let p = snapshot[i][t];
                    // Spring force toward neighbors on the same path.
                    let prev = snapshot[i][t - 1];
                    let next = snapshot[i][t + 1];
                    let mut fx = params.stiffness * (prev.x + next.x - 2.0 * p.x);
                    let mut fy = params.stiffness * (prev.y + next.y - 2.0 * p.y);
                    // Electrostatic attraction to compatible edges' points.
                    for &(j, c) in &compat[i] {
                        let q = snapshot[j][t];
                        let dx = q.x - p.x;
                        let dy = q.y - p.y;
                        let d = (dx * dx + dy * dy).sqrt();
                        if d > 1e-4 {
                            fx += c * dx / d;
                            fy += c * dy / d;
                        }
                    }
                    path[t].x = p.x + step * fx;
                    path[t].y = p.y + step * fy;
                }
            }
        }
    }
    paths
}

/// Total "ink": the summed length of all paths. Bundling's aim is to
/// reduce this relative to straight lines while keeping endpoints fixed.
pub fn total_ink(paths: &[EdgePath]) -> f64 {
    paths
        .iter()
        .map(|p| p.windows(2).map(|w| w[0].dist(&w[1]) as f64).sum::<f64>())
        .sum()
}

/// Mean distance between corresponding points of two bundles of paths —
/// used to verify bundling actually pulls compatible edges together.
pub fn mean_pairwise_midpoint_gap(paths: &[EdgePath]) -> f64 {
    let mids: Vec<Point> = paths.iter().map(|p| p[p.len() / 2]).collect();
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..mids.len() {
        for j in (i + 1)..mids.len() {
            total += mids[i].dist(&mids[j]) as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fan of nearly parallel edges.
    fn parallel_edges(n: usize) -> Vec<(Point, Point)> {
        (0..n)
            .map(|i| {
                let y = i as f32 * 4.0;
                (Point::new(0.0, y), Point::new(100.0, y))
            })
            .collect()
    }

    #[test]
    fn compatibility_of_identical_edges_is_one() {
        let e = (Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!((compatibility(e, e) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn compatibility_of_perpendicular_edges_is_zero() {
        let a = (Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let b = (Point::new(5.0, -5.0), Point::new(5.0, 5.0));
        assert!(compatibility(a, b) < 1e-6);
    }

    #[test]
    fn compatibility_decays_with_distance() {
        let a = (Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let near = (Point::new(0.0, 1.0), Point::new(10.0, 1.0));
        let far = (Point::new(0.0, 100.0), Point::new(10.0, 100.0));
        assert!(compatibility(a, near) > compatibility(a, far));
    }

    #[test]
    fn endpoints_stay_fixed() {
        let edges = parallel_edges(6);
        let paths = bundle(&edges, BundleParams::default());
        for (path, &(a, b)) in paths.iter().zip(&edges) {
            assert_eq!(path[0], a);
            assert_eq!(*path.last().unwrap(), b);
        }
    }

    #[test]
    fn bundling_pulls_parallel_edges_together() {
        let edges = parallel_edges(6);
        let straight: Vec<EdgePath> = edges
            .iter()
            .map(|&(a, b)| vec![a, Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0), b])
            .collect();
        let bundled = bundle(&edges, BundleParams::default());
        let gap_before = mean_pairwise_midpoint_gap(&straight);
        let gap_after = mean_pairwise_midpoint_gap(&bundled);
        assert!(
            gap_after < gap_before * 0.6,
            "midpoint gap {gap_after} should shrink well below {gap_before}"
        );
    }

    #[test]
    fn incompatible_edges_are_untouched() {
        // Two perpendicular edges: below threshold, so only the internal
        // spring acts, which keeps a straight line straight.
        let edges = vec![
            (Point::new(0.0, 0.0), Point::new(100.0, 0.0)),
            (Point::new(50.0, -50.0), Point::new(50.0, 50.0)),
        ];
        let paths = bundle(&edges, BundleParams::default());
        // Midpoint of edge 0 stays on (near) the straight line y=0.
        let mid = paths[0][paths[0].len() / 2];
        assert!(mid.y.abs() < 1.0, "midpoint drifted to {}", mid.y);
    }

    #[test]
    fn subdivision_grows_with_cycles() {
        let edges = parallel_edges(2);
        let p1 = bundle(
            &edges,
            BundleParams {
                cycles: 1,
                ..Default::default()
            },
        );
        let p4 = bundle(
            &edges,
            BundleParams {
                cycles: 4,
                ..Default::default()
            },
        );
        assert!(p4[0].len() > p1[0].len());
    }

    #[test]
    fn single_edge_is_left_alone() {
        let edges = vec![(Point::new(0.0, 0.0), Point::new(10.0, 10.0))];
        let paths = bundle(&edges, BundleParams::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
    }

    #[test]
    fn total_ink_of_straight_paths_is_euclidean() {
        let paths = vec![vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]];
        assert!((total_ink(&paths) - 5.0).abs() < 1e-6);
    }
}
