//! Graph coarsening and multilevel layout.
//!
//! The multilevel scheme is how state-of-the-art systems lay out graphs
//! that defeat plain force-direction: coarsen the graph (heavy-edge
//! matching merges matched endpoints into supernodes), lay out the small
//! coarse graph well, then project positions back level by level with a
//! short refinement pass each time. E8 compares this against flat FR.

use crate::adjacency::Adjacency;
use crate::layout::{self, FrParams, Layout, Point};

/// One coarsening step: the coarse graph plus the mapping fine→coarse.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// The coarse graph.
    pub graph: Adjacency,
    /// For each fine node, its coarse node id.
    pub map: Vec<u32>,
}

/// Coarsens by heavy-edge matching: greedily match each unmatched node to
/// an unmatched neighbor (visiting nodes in degree order so hubs match
/// early), merge matched pairs. Unmatched nodes survive as singletons.
pub fn heavy_edge_matching(graph: &Adjacency) -> Coarsening {
    let n = graph.node_count();
    let mut matched = vec![u32::MAX; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    for &v in &order {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        // Match with the highest-degree unmatched neighbor.
        let mate = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| matched[w as usize] == u32::MAX && w != v)
            .max_by_key(|&w| graph.degree(w));
        match mate {
            Some(w) => {
                matched[v as usize] = w;
                matched[w as usize] = v;
            }
            None => matched[v as usize] = v, // singleton
        }
    }
    // Assign coarse ids: one per pair / singleton.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let m = matched[v as usize];
        map[v as usize] = next;
        if m != v && m != u32::MAX {
            map[m as usize] = next;
        }
        next += 1;
    }
    // Build coarse edges.
    let mut edges = Vec::new();
    for (a, b) in graph.edges() {
        let (ca, cb) = (map[a as usize], map[b as usize]);
        if ca != cb {
            edges.push((ca, cb));
        }
    }
    Coarsening {
        graph: Adjacency::from_edges(next as usize, &edges),
        map,
    }
}

/// Repeatedly coarsens until the graph has at most `target` nodes or no
/// step shrinks it further. Returns the pyramid, finest first.
pub fn coarsen_to(graph: &Adjacency, target: usize) -> Vec<Coarsening> {
    let mut levels = Vec::new();
    let mut current = graph.clone();
    while current.node_count() > target.max(2) {
        let c = heavy_edge_matching(&current);
        // Hub-dominated graphs eventually shrink one node per matching
        // round; a level that removes <5% of nodes costs more than it
        // saves, so stop there.
        if c.graph.node_count() as f64 >= current.node_count() as f64 * 0.95 {
            break;
        }
        current = c.graph.clone();
        levels.push(c);
    }
    levels
}

/// Multilevel force-directed layout: coarsen to ≤ `coarse_target` nodes,
/// lay the coarsest level out with full iterations, then project upward
/// with a few refinement iterations per level.
pub fn multilevel_layout(graph: &Adjacency, params: FrParams, coarse_target: usize) -> Layout {
    let levels = coarsen_to(graph, coarse_target);
    if levels.is_empty() {
        return layout::fruchterman_reingold(graph, params);
    }
    // Lay out the coarsest graph.
    let coarsest = &levels[levels.len() - 1].graph;
    let mut lay = layout::fruchterman_reingold(coarsest, params);
    // Project back up.
    for (i, level) in levels.iter().enumerate().rev() {
        let fine_graph = if i == 0 { graph } else { &levels[i - 1].graph };
        let mut fine = Layout {
            positions: vec![Point::default(); fine_graph.node_count()],
        };
        // Jitter merged nodes apart by about one ideal edge length —
        // smaller offsets leave whole clusters in a single repulsion grid
        // cell and the refinement pass degenerates to O(n²).
        let k = params.size / (fine_graph.node_count() as f32).sqrt().max(1.0);
        for (v, &c) in level.map.iter().enumerate() {
            let p = lay.positions[c as usize];
            let a = v as f32 * 2.399_963; // golden angle: spread directions
            let j = 0.75 * k;
            fine.positions[v] = Point::new(
                (p.x + j * a.cos()).clamp(0.0, params.size),
                (p.y + j * a.sin()).clamp(0.0, params.size),
            );
        }
        let refine = FrParams {
            iterations: (params.iterations / 5).max(5),
            initial_temperature: params.initial_temperature * 0.3,
            ..params
        };
        lay = layout::fruchterman_reingold_from(fine_graph, fine, refine);
    }
    lay
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder(n: usize) -> Adjacency {
        // Two rails of n nodes plus rungs: 3n-2 edges, nicely matchable.
        let mut edges = Vec::new();
        for i in 0..n as u32 - 1 {
            edges.push((i, i + 1));
            edges.push((n as u32 + i, n as u32 + i + 1));
        }
        for i in 0..n as u32 {
            edges.push((i, n as u32 + i));
        }
        Adjacency::from_edges(2 * n, &edges)
    }

    #[test]
    fn matching_halves_node_count_roughly() {
        let g = ladder(50); // 100 nodes
        let c = heavy_edge_matching(&g);
        assert!(c.graph.node_count() <= 60, "got {}", c.graph.node_count());
        assert!(c.graph.node_count() >= 50);
    }

    #[test]
    fn map_is_total_and_surjective() {
        let g = ladder(20);
        let c = heavy_edge_matching(&g);
        assert_eq!(c.map.len(), g.node_count());
        let distinct: std::collections::HashSet<_> = c.map.iter().collect();
        assert_eq!(distinct.len(), c.graph.node_count());
        assert!(c.map.iter().all(|&m| (m as usize) < c.graph.node_count()));
    }

    #[test]
    fn coarse_edges_reflect_fine_edges() {
        let g = ladder(10);
        let c = heavy_edge_matching(&g);
        // Every coarse edge must come from at least one fine edge.
        for (ca, cb) in c.graph.edges() {
            let found = g.edges().any(|(a, b)| {
                (c.map[a as usize] == ca && c.map[b as usize] == cb)
                    || (c.map[a as usize] == cb && c.map[b as usize] == ca)
            });
            assert!(found, "coarse edge ({ca},{cb}) has no fine counterpart");
        }
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = ladder(128); // 256 nodes
        let levels = coarsen_to(&g, 20);
        assert!(!levels.is_empty());
        assert!(levels.last().unwrap().graph.node_count() <= 40);
        // Strictly decreasing.
        let mut prev = g.node_count();
        for l in &levels {
            assert!(l.graph.node_count() < prev);
            prev = l.graph.node_count();
        }
    }

    #[test]
    fn coarsen_edgeless_graph_terminates() {
        let g = Adjacency::from_edges(10, &[]);
        let levels = coarsen_to(&g, 2);
        // Singleton matching cannot shrink an edgeless graph below n.
        assert!(levels.len() <= 1);
    }

    #[test]
    fn multilevel_layout_positions_every_node() {
        let g = ladder(100);
        let l = multilevel_layout(&g, FrParams::default(), 25);
        assert_eq!(l.len(), 200);
        let (min, max) = l.bounds().unwrap();
        assert!(max.x > min.x && max.y > min.y, "layout must not collapse");
    }

    #[test]
    fn multilevel_beats_few_iteration_flat_fr_on_quality() {
        // With an equal (small) iteration budget, multilevel should not be
        // dramatically worse than flat FR — and usually better on total
        // edge length for structured graphs.
        let g = ladder(150);
        let p = FrParams {
            iterations: 30,
            ..Default::default()
        };
        let flat = layout::fruchterman_reingold(&g, p).total_edge_length(&g);
        let multi = multilevel_layout(&g, p, 30).total_edge_length(&g);
        assert!(
            multi < flat * 1.5,
            "multilevel quality collapsed: {multi} vs flat {flat}"
        );
    }

    #[test]
    fn multilevel_on_tiny_graph_falls_back() {
        let g = Adjacency::from_edges(3, &[(0, 1), (1, 2)]);
        let l = multilevel_layout(&g, FrParams::default(), 100);
        assert_eq!(l.len(), 3);
    }
}
