//! Abstraction hierarchies with expand/collapse navigation.
//!
//! §4: state-of-the-art systems "*utilize hierarchical aggregation
//! approaches where the graph is recursively decomposed into smaller
//! sub-graphs (in most cases using clustering and partitioning) that form
//! a hierarchy of abstraction layers*" (ASK-GraphView \[1\], Grouse \[8\],
//! GrouseFlocks \[9\], GMine \[71, 72\], CGV \[130\], ...).
//!
//! [`AbstractionHierarchy`] builds those layers by repeated community
//! detection; [`HierarchyView`] is the interactive cut through them: the
//! user sees supernodes, expands the ones of interest, and the *visible*
//! graph stays small no matter how large the base graph is — the E8
//! scalability claim.

use crate::adjacency::Adjacency;
use crate::community::{community_count, label_propagation};
use std::collections::{HashMap, HashSet};

/// A node handle: `(level, id)`. Level 0 = base nodes; higher levels are
/// supernodes.
pub type Handle = (usize, u32);

/// A multi-level decomposition of a graph.
#[derive(Debug, Clone)]
pub struct AbstractionHierarchy {
    base: Adjacency,
    /// `parents[l][v]` = parent (level `l+1` id) of level-`l` node `v`.
    parents: Vec<Vec<u32>>,
    /// `children[l]` lists, for each level-`l+1` supernode, its level-`l`
    /// members (redundant with `parents`, precomputed for traversal).
    children: Vec<Vec<Vec<u32>>>,
    /// Node counts per level (index 0 = base).
    level_sizes: Vec<usize>,
}

impl AbstractionHierarchy {
    /// Builds a hierarchy by repeated label propagation until fewer than
    /// `stop_at` supernodes remain or a level stops shrinking.
    pub fn build(base: Adjacency, stop_at: usize, seed: u64) -> AbstractionHierarchy {
        let mut parents: Vec<Vec<u32>> = Vec::new();
        let mut level_sizes = vec![base.node_count()];
        let mut current = base.clone();
        let mut round = 0u64;
        while current.node_count() > stop_at.max(1) {
            let labels = label_propagation(&current, 20, seed.wrapping_add(round));
            let k = community_count(&labels);
            // A single giant community (common on hub-dominated graphs) or
            // no shrinkage would make the level useless — fall back to
            // pairwise matching; if even matching stalls (<5% shrinkage,
            // the star-graph pathology), force a BFS-chunk partition down
            // to `stop_at` groups and finish.
            if k >= current.node_count() || k <= 1 {
                let c = crate::coarsen::heavy_edge_matching(&current);
                if (c.graph.node_count() as f64) >= current.node_count() as f64 * 0.95 {
                    let labels = bfs_partition(&current, stop_at.max(1));
                    let k = community_count(&labels);
                    let mut edges = Vec::new();
                    for (a, b) in current.edges() {
                        let (ca, cb) = (labels[a as usize], labels[b as usize]);
                        if ca != cb {
                            edges.push((ca, cb));
                        }
                    }
                    let _ = edges; // the forced level is terminal
                    parents.push(labels);
                    level_sizes.push(k);
                    break;
                }
                parents.push(c.map.clone());
                level_sizes.push(c.graph.node_count());
                current = c.graph;
            } else {
                // Build the community supergraph.
                let mut edges = Vec::new();
                for (a, b) in current.edges() {
                    let (ca, cb) = (labels[a as usize], labels[b as usize]);
                    if ca != cb {
                        edges.push((ca, cb));
                    }
                }
                parents.push(labels);
                level_sizes.push(k);
                current = Adjacency::from_edges(k, &edges);
            }
            round += 1;
        }
        let children = parents
            .iter()
            .zip(level_sizes.iter().skip(1))
            .map(|(par, &upper)| {
                let mut lists: Vec<Vec<u32>> = vec![Vec::new(); upper];
                for (v, &p) in par.iter().enumerate() {
                    lists[p as usize].push(v as u32);
                }
                lists
            })
            .collect();
        AbstractionHierarchy {
            base,
            parents,
            children,
            level_sizes,
        }
    }

    /// The base graph.
    pub fn base(&self) -> &Adjacency {
        &self.base
    }

    /// Number of levels including the base (≥ 1).
    pub fn levels(&self) -> usize {
        self.level_sizes.len()
    }

    /// Node count at a level.
    pub fn level_size(&self, level: usize) -> usize {
        self.level_sizes[level]
    }

    /// The top level's handles (the initial overview).
    pub fn roots(&self) -> Vec<Handle> {
        let top = self.levels() - 1;
        (0..self.level_sizes[top] as u32)
            .map(|i| (top, i))
            .collect()
    }

    /// Children of a supernode handle (empty for base nodes).
    pub fn children_of(&self, h: Handle) -> Vec<Handle> {
        let (level, id) = h;
        if level == 0 {
            return Vec::new();
        }
        self.children[level - 1][id as usize]
            .iter()
            .map(|&c| (level - 1, c))
            .collect()
    }

    /// Parent of a handle (None at the top level).
    pub fn parent_of(&self, h: Handle) -> Option<Handle> {
        let (level, id) = h;
        if level + 1 >= self.levels() {
            return None;
        }
        Some((level + 1, self.parents[level][id as usize]))
    }

    /// Number of base nodes under a handle.
    pub fn weight(&self, h: Handle) -> usize {
        let (level, id) = h;
        if level == 0 {
            return 1;
        }
        self.children_of((level, id))
            .into_iter()
            .map(|c| self.weight(c))
            .sum()
    }

    /// The ancestor of base node `v` at `level`.
    pub fn ancestor_at(&self, v: u32, level: usize) -> u32 {
        let mut id = v;
        for l in 0..level {
            id = self.parents[l][id as usize];
        }
        id
    }

    /// The aggregated supergraph at a level: edges between level-`level`
    /// nodes with multiplicities.
    pub fn abstract_graph(&self, level: usize) -> (Adjacency, HashMap<(u32, u32), usize>) {
        let mut weights: HashMap<(u32, u32), usize> = HashMap::new();
        for (a, b) in self.base.edges() {
            let (ca, cb) = (self.ancestor_at(a, level), self.ancestor_at(b, level));
            if ca != cb {
                let key = if ca < cb { (ca, cb) } else { (cb, ca) };
                *weights.entry(key).or_insert(0) += 1;
            }
        }
        let edges: Vec<(u32, u32)> = weights.keys().copied().collect();
        (
            Adjacency::from_edges(self.level_sizes[level], &edges),
            weights,
        )
    }
}

/// Partitions a graph into `k` groups of contiguous BFS chunks — the
/// last-resort coarsening for graphs where neither communities nor
/// matching make progress. Groups are locality-preserving (each is a BFS
/// region) and balanced (⌈n/k⌉ nodes each).
fn bfs_partition(graph: &Adjacency, k: usize) -> Vec<u32> {
    let n = graph.node_count();
    let k = k.min(n).max(1);
    let chunk = n.div_ceil(k);
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    // Start from the highest-degree node; restart BFS for other components.
    let mut starts: Vec<u32> = (0..n as u32).collect();
    starts.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let mut queue = std::collections::VecDeque::new();
    for &s in &starts {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in graph.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    let mut labels = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        labels[v as usize] = (i / chunk) as u32;
    }
    crate::community::densify(&labels)
}

/// An interactive cut through a hierarchy: which supernodes are expanded.
pub struct HierarchyView<'a> {
    hierarchy: &'a AbstractionHierarchy,
    expanded: HashSet<Handle>,
}

impl<'a> HierarchyView<'a> {
    /// Starts fully collapsed (only the top level is visible).
    pub fn new(hierarchy: &'a AbstractionHierarchy) -> HierarchyView<'a> {
        HierarchyView {
            hierarchy,
            expanded: HashSet::new(),
        }
    }

    /// Expands a supernode (no-op on base nodes).
    pub fn expand(&mut self, h: Handle) {
        if h.0 > 0 {
            self.expanded.insert(h);
        }
    }

    /// Collapses a supernode and everything under it.
    pub fn collapse(&mut self, h: Handle) {
        // Remove h and all expanded descendants.
        let mut stack = vec![h];
        while let Some(x) = stack.pop() {
            if self.expanded.remove(&x) || x == h {
                for c in self.hierarchy.children_of(x) {
                    stack.push(c);
                }
            }
        }
    }

    /// True if the handle is expanded.
    pub fn is_expanded(&self, h: Handle) -> bool {
        self.expanded.contains(&h)
    }

    /// The currently visible handles: a supernode is visible when all its
    /// ancestors are expanded and it is not; a base node is visible when
    /// every ancestor is expanded.
    pub fn visible(&self) -> Vec<Handle> {
        let mut out = Vec::new();
        let mut stack = self.hierarchy.roots();
        while let Some(h) = stack.pop() {
            if self.expanded.contains(&h) {
                stack.extend(self.hierarchy.children_of(h));
            } else {
                out.push(h);
            }
        }
        out.sort_unstable();
        out
    }

    /// The visible handle covering base node `v`.
    pub fn visible_ancestor(&self, v: u32) -> Handle {
        // Path from leaf to root.
        let mut path = vec![(0usize, v)];
        let mut cur = (0usize, v);
        while let Some(p) = self.hierarchy.parent_of(cur) {
            path.push(p);
            cur = p;
        }
        // Walk down from the root: the first non-expanded handle is
        // visible.
        for h in path.iter().rev() {
            if !self.expanded.contains(h) {
                return *h;
            }
        }
        (0, v) // every ancestor expanded: the leaf itself
    }

    /// The visible aggregated edges: pairs of visible handles with the
    /// number of base edges between them.
    pub fn visible_edges(&self) -> HashMap<(Handle, Handle), usize> {
        let mut out = HashMap::new();
        for (a, b) in self.hierarchy.base().edges() {
            let (ha, hb) = (self.visible_ancestor(a), self.visible_ancestor(b));
            if ha != hb {
                let key = if ha < hb { (ha, hb) } else { (hb, ha) };
                *out.entry(key).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> AbstractionHierarchy {
        let (el, _) = wodex_synth::netgen::planted_partition(4, 25, 0.35, 0.004, 7);
        let base = Adjacency::from_edges(el.nodes, &el.edges);
        AbstractionHierarchy::build(base, 8, 1)
    }

    #[test]
    fn hierarchy_shrinks_levels() {
        let h = hierarchy();
        assert!(h.levels() >= 2);
        for l in 1..h.levels() {
            assert!(h.level_size(l) < h.level_size(l - 1));
        }
        assert!(h.level_size(h.levels() - 1) <= 100);
    }

    #[test]
    fn weights_sum_to_base_nodes() {
        let h = hierarchy();
        let total: usize = h.roots().into_iter().map(|r| h.weight(r)).sum();
        assert_eq!(total, h.base().node_count());
    }

    #[test]
    fn children_and_parent_are_inverse() {
        let h = hierarchy();
        for r in h.roots() {
            for c in h.children_of(r) {
                assert_eq!(h.parent_of(c), Some(r));
            }
        }
    }

    #[test]
    fn ancestor_at_composes_parent_maps() {
        let h = hierarchy();
        let top = h.levels() - 1;
        for v in 0..h.base().node_count() as u32 {
            let a = h.ancestor_at(v, top);
            assert!((a as usize) < h.level_size(top));
            // Walking via parent_of agrees.
            let mut cur = (0usize, v);
            while let Some(p) = h.parent_of(cur) {
                cur = p;
            }
            assert_eq!(cur, (top, a));
        }
    }

    #[test]
    fn initial_view_is_top_level() {
        let h = hierarchy();
        let view = HierarchyView::new(&h);
        assert_eq!(view.visible().len(), h.level_size(h.levels() - 1));
    }

    #[test]
    fn expand_replaces_supernode_with_children() {
        let h = hierarchy();
        let mut view = HierarchyView::new(&h);
        let before = view.visible().len();
        let target = h.roots()[0];
        let kids = h.children_of(target).len();
        view.expand(target);
        let after = view.visible().len();
        assert_eq!(after, before - 1 + kids);
        assert!(!view.visible().contains(&target));
    }

    #[test]
    fn collapse_restores_previous_view() {
        let h = hierarchy();
        let mut view = HierarchyView::new(&h);
        let initial = view.visible();
        let target = h.roots()[0];
        view.expand(target);
        // Expand a child too, then collapse the root supernode.
        if let Some(&child) = h.children_of(target).first() {
            view.expand(child);
        }
        view.collapse(target);
        assert_eq!(view.visible(), initial);
    }

    #[test]
    fn visible_ancestor_matches_visible_set() {
        let h = hierarchy();
        let mut view = HierarchyView::new(&h);
        view.expand(h.roots()[0]);
        let visible: HashSet<Handle> = view.visible().into_iter().collect();
        for v in 0..h.base().node_count() as u32 {
            assert!(visible.contains(&view.visible_ancestor(v)));
        }
    }

    #[test]
    fn visible_edges_conserve_cross_cluster_edges() {
        let h = hierarchy();
        let view = HierarchyView::new(&h);
        let top = h.levels() - 1;
        let (_, weights) = h.abstract_graph(top);
        let visible_total: usize = view.visible_edges().values().sum();
        let abstract_total: usize = weights.values().sum();
        assert_eq!(visible_total, abstract_total);
    }

    #[test]
    fn fully_expanded_view_shows_base_graph() {
        let h = hierarchy();
        let mut view = HierarchyView::new(&h);
        // Expand everything.
        let mut stack = h.roots();
        while let Some(x) = stack.pop() {
            if x.0 > 0 {
                view.expand(x);
                stack.extend(h.children_of(x));
            }
        }
        assert_eq!(view.visible().len(), h.base().node_count());
        let total: usize = view.visible_edges().values().sum();
        assert_eq!(total, h.base().edge_count());
    }

    #[test]
    fn abstract_graph_weights_count_base_edges() {
        let h = hierarchy();
        let (sg, weights) = h.abstract_graph(1);
        assert_eq!(sg.node_count(), h.level_size(1));
        let cross: usize = weights.values().sum();
        // Cross + intra must equal base edges.
        let intra = h.base().edge_count() - cross;
        assert!(intra > cross, "planted partition is mostly intra-community");
    }
}
