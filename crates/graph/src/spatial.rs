//! Spatial indexing and viewport windowing.
//!
//! graphVizdb \[22, 23\] — by the survey's own authors — is "*built on top
//! of spatial and database techniques offering interactive visualization
//! over very large (RDF) graphs*": lay the graph out **once**, store node
//! positions in a spatial index, and serve every pan/zoom by a *window
//! query* that touches O(result) data instead of O(n). [`QuadTree`] is
//! that index; together with `wodex_store::paged` it reproduces the
//! disk-backed windowed rendering architecture (experiment E10).

use crate::layout::{Layout, Point};

/// An axis-aligned rectangle (min/max corners).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum x.
    pub x0: f32,
    /// Minimum y.
    pub y0: f32,
    /// Maximum x.
    pub x1: f32,
    /// Maximum y.
    pub y1: f32,
}

impl Rect {
    /// Creates a rect, normalizing the corner order.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Rect {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// True if the point is inside (inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// True if the rects overlap (inclusive).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && self.x1 >= other.x0 && self.y0 <= other.y1 && self.y1 >= other.y0
    }

    /// Width of the rect.
    pub fn width(&self) -> f32 {
        self.x1 - self.x0
    }

    /// Height of the rect.
    pub fn height(&self) -> f32 {
        self.y1 - self.y0
    }

    /// Translates the rect by (dx, dy) — a pan.
    pub fn translated(&self, dx: f32, dy: f32) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Scales the rect around its center by `factor` — a zoom
    /// (`factor < 1` zooms in).
    pub fn zoomed(&self, factor: f32) -> Rect {
        let cx = (self.x0 + self.x1) / 2.0;
        let cy = (self.y0 + self.y1) / 2.0;
        let w = self.width() * factor / 2.0;
        let h = self.height() * factor / 2.0;
        Rect::new(cx - w, cy - h, cx + w, cy + h)
    }
}

const MAX_ITEMS: usize = 16;
const MAX_DEPTH: usize = 12;

/// A point quadtree storing `(position, node_id)` entries.
#[derive(Debug)]
pub struct QuadTree {
    bounds: Rect,
    items: Vec<(Point, u32)>,
    children: Option<Box<[QuadTree; 4]>>,
    depth: usize,
    len: usize,
}

impl QuadTree {
    /// Creates an empty tree over the given bounds.
    pub fn new(bounds: Rect) -> QuadTree {
        QuadTree {
            bounds,
            items: Vec::new(),
            children: None,
            depth: 0,
            len: 0,
        }
    }

    /// Builds a tree over a layout (node ids = positions indexes).
    pub fn from_layout(layout: &Layout) -> QuadTree {
        let (min, max) = layout
            .bounds()
            .unwrap_or((Point::default(), Point::new(1.0, 1.0)));
        let mut qt = QuadTree::new(Rect::new(
            min.x,
            min.y,
            max.x.max(min.x + 1e-3),
            max.y.max(min.y + 1e-3),
        ));
        for (i, p) in layout.positions.iter().enumerate() {
            qt.insert(*p, i as u32);
        }
        qt
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point (clamped into bounds if outside).
    pub fn insert(&mut self, p: Point, id: u32) {
        let p = Point::new(
            p.x.clamp(self.bounds.x0, self.bounds.x1),
            p.y.clamp(self.bounds.y0, self.bounds.y1),
        );
        self.insert_inner(p, id);
    }

    fn insert_inner(&mut self, p: Point, id: u32) {
        self.len += 1;
        if self.children.is_none() {
            if self.items.len() < MAX_ITEMS || self.depth >= MAX_DEPTH {
                self.items.push((p, id));
                return;
            }
            self.split();
        }
        let q = self.quadrant(&p);
        self.children.as_mut().expect("split above")[q].insert_inner(p, id);
    }

    fn split(&mut self) {
        let b = self.bounds;
        let cx = (b.x0 + b.x1) / 2.0;
        let cy = (b.y0 + b.y1) / 2.0;
        let mk = |r: Rect, depth: usize| QuadTree {
            bounds: r,
            items: Vec::new(),
            children: None,
            depth,
            len: 0,
        };
        let d = self.depth + 1;
        self.children = Some(Box::new([
            mk(Rect::new(b.x0, b.y0, cx, cy), d),
            mk(Rect::new(cx, b.y0, b.x1, cy), d),
            mk(Rect::new(b.x0, cy, cx, b.y1), d),
            mk(Rect::new(cx, cy, b.x1, b.y1), d),
        ]));
        let items = std::mem::take(&mut self.items);
        for (p, id) in items {
            let q = self.quadrant(&p);
            let child = &mut self.children.as_mut().expect("just set")[q];
            child.len += 1;
            child.items.push((p, id));
        }
    }

    fn quadrant(&self, p: &Point) -> usize {
        let cx = (self.bounds.x0 + self.bounds.x1) / 2.0;
        let cy = (self.bounds.y0 + self.bounds.y1) / 2.0;
        (usize::from(p.x >= cx)) | (usize::from(p.y >= cy) << 1)
    }

    /// All `(position, id)` entries inside the window. Also reports how
    /// many tree nodes were visited (the work accounting of E10).
    pub fn query(&self, window: &Rect) -> (Vec<(Point, u32)>, usize) {
        let mut out = Vec::new();
        let mut visited = 0usize;
        self.query_into(window, &mut out, &mut visited);
        (out, visited)
    }

    fn query_into(&self, window: &Rect, out: &mut Vec<(Point, u32)>, visited: &mut usize) {
        *visited += 1;
        if !self.bounds.intersects(window) {
            return;
        }
        for (p, id) in &self.items {
            if window.contains(p) {
                out.push((*p, *id));
            }
        }
        if let Some(children) = &self.children {
            for c in children.iter() {
                c.query_into(window, out, visited);
            }
        }
    }

    /// The nearest stored point to `p` (None when empty) — the "click on
    /// a node" hit test.
    pub fn nearest(&self, p: &Point) -> Option<(Point, u32)> {
        let mut best: Option<((Point, u32), f32)> = None;
        self.nearest_inner(p, &mut best);
        best.map(|(e, _)| e)
    }

    fn nearest_inner(&self, p: &Point, best: &mut Option<((Point, u32), f32)>) {
        // Prune: skip boxes farther than the current best.
        if let Some((_, bd)) = best {
            let dx = (self.bounds.x0 - p.x).max(0.0).max(p.x - self.bounds.x1);
            let dy = (self.bounds.y0 - p.y).max(0.0).max(p.y - self.bounds.y1);
            if dx * dx + dy * dy > *bd {
                return;
            }
        }
        for (q, id) in &self.items {
            let d = (q.x - p.x).powi(2) + (q.y - p.y).powi(2);
            if best.is_none() || d < best.expect("checked").1 {
                *best = Some(((*q, *id), d));
            }
        }
        if let Some(children) = &self.children {
            // Visit the quadrant containing p first for better pruning.
            let first = self.quadrant(p);
            children[first].nearest_inner(p, best);
            for (i, c) in children.iter().enumerate() {
                if i != first {
                    c.nearest_inner(p, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Layout {
        let cols = (n as f32).sqrt().ceil() as usize;
        Layout {
            positions: (0..n)
                .map(|i| Point::new((i % cols) as f32, (i / cols) as f32))
                .collect(),
        }
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::new(10.0, 10.0, 0.0, 0.0); // normalized
        assert_eq!((r.x0, r.y1), (0.0, 10.0));
        assert!(r.contains(&Point::new(5.0, 5.0)));
        assert!(!r.contains(&Point::new(11.0, 5.0)));
        assert!(r.intersects(&Rect::new(9.0, 9.0, 20.0, 20.0)));
        assert!(!r.intersects(&Rect::new(11.0, 11.0, 20.0, 20.0)));
        let panned = r.translated(5.0, 0.0);
        assert_eq!(panned.x0, 5.0);
        let zoomed = r.zoomed(0.5);
        assert_eq!(zoomed.width(), 5.0);
        assert_eq!((zoomed.x0 + zoomed.x1) / 2.0, 5.0);
    }

    #[test]
    fn query_matches_brute_force() {
        let layout = grid_points(900);
        let qt = QuadTree::from_layout(&layout);
        assert_eq!(qt.len(), 900);
        for window in [
            Rect::new(0.0, 0.0, 5.0, 5.0),
            Rect::new(10.5, 10.5, 20.0, 15.0),
            Rect::new(-5.0, -5.0, 100.0, 100.0),
            Rect::new(3.2, 3.2, 3.8, 3.8), // no points
        ] {
            let (mut got, _) = qt.query(&window);
            got.sort_by_key(|&(_, id)| id);
            let want: Vec<u32> = layout
                .positions
                .iter()
                .enumerate()
                .filter(|(_, p)| window.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(
                got.iter().map(|&(_, id)| id).collect::<Vec<_>>(),
                want,
                "window {window:?}"
            );
        }
    }

    #[test]
    fn small_window_visits_few_nodes() {
        let layout = grid_points(10_000);
        let qt = QuadTree::from_layout(&layout);
        let (_, visited_small) = qt.query(&Rect::new(0.0, 0.0, 3.0, 3.0));
        let (_, visited_all) = qt.query(&Rect::new(-1.0, -1.0, 101.0, 101.0));
        assert!(
            visited_small * 5 < visited_all,
            "small window visited {visited_small}, full {visited_all}"
        );
    }

    #[test]
    fn nearest_finds_the_closest_point() {
        let layout = grid_points(100);
        let qt = QuadTree::from_layout(&layout);
        let (p, id) = qt.nearest(&Point::new(5.4, 5.4)).unwrap();
        assert_eq!((p.x, p.y), (5.0, 5.0));
        assert_eq!(id, 55);
        assert!(QuadTree::new(Rect::new(0.0, 0.0, 1.0, 1.0))
            .nearest(&Point::new(0.5, 0.5))
            .is_none());
    }

    #[test]
    fn nearest_matches_brute_force_on_random_queries() {
        let layout = grid_points(400);
        let qt = QuadTree::from_layout(&layout);
        for i in 0..50 {
            let p = Point::new((i as f32 * 0.37) % 20.0, (i as f32 * 0.73) % 20.0);
            let (_, got) = qt.nearest(&p).unwrap();
            let want = layout
                .positions
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.dist(&p).partial_cmp(&b.dist(&p)).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap();
            assert_eq!(
                layout.positions[got as usize].dist(&p),
                layout.positions[want as usize].dist(&p),
                "query {p:?}"
            );
        }
    }

    #[test]
    fn duplicate_positions_are_kept() {
        let mut qt = QuadTree::new(Rect::new(0.0, 0.0, 10.0, 10.0));
        for i in 0..100 {
            qt.insert(Point::new(5.0, 5.0), i);
        }
        assert_eq!(qt.len(), 100);
        let (hits, _) = qt.query(&Rect::new(4.0, 4.0, 6.0, 6.0));
        assert_eq!(hits.len(), 100);
    }

    #[test]
    fn out_of_bounds_inserts_are_clamped() {
        let mut qt = QuadTree::new(Rect::new(0.0, 0.0, 10.0, 10.0));
        qt.insert(Point::new(-5.0, 20.0), 1);
        let (hits, _) = qt.query(&Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn pan_zoom_session_over_index() {
        // Simulated exploration: pan right, zoom in — every step a window
        // query that returns the right result set.
        let layout = grid_points(2500);
        let qt = QuadTree::from_layout(&layout);
        let mut view = Rect::new(0.0, 0.0, 10.0, 10.0);
        let mut sizes = Vec::new();
        for _ in 0..5 {
            view = view.translated(5.0, 0.0);
            sizes.push(qt.query(&view).0.len());
        }
        view = view.zoomed(0.5);
        let zoomed_size = qt.query(&view).0.len();
        assert!(zoomed_size < *sizes.last().unwrap());
    }
}
