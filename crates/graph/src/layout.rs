//! Graph layout algorithms.
//!
//! The force-directed layout here is the *baseline* whose cost motivates
//! everything else in this crate: §4 observes that "the large memory
//! requirements of graph layout algorithms" confine naive systems to small
//! graphs. [`fruchterman_reingold`] is the classic spring-embedder with a
//! uniform-grid neighborhood optimization (repulsion only against nearby
//! nodes), [`circular`] and [`grid`] are the O(n) deterministic layouts
//! browsers fall back to, and [`Layout`] carries positions into the
//! spatial index and renderers.

use crate::adjacency::Adjacency;
use wodex_synth::rng::{Rng, SeedableRng};

/// A 2-D position.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f32, y: f32) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f32 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Node positions, indexed by node id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Layout {
    /// Position per node.
    pub positions: Vec<Point>,
}

impl Layout {
    /// Number of positioned nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if no nodes are positioned.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Bounding box `(min, max)`; `None` when empty.
    pub fn bounds(&self) -> Option<(Point, Point)> {
        if self.positions.is_empty() {
            return None;
        }
        let mut min = Point::new(f32::INFINITY, f32::INFINITY);
        let mut max = Point::new(f32::NEG_INFINITY, f32::NEG_INFINITY);
        for p in &self.positions {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some((min, max))
    }

    /// Total edge length under this layout — the simplest layout-quality
    /// proxy (shorter is better for equal-area layouts).
    pub fn total_edge_length(&self, graph: &Adjacency) -> f64 {
        graph
            .edges()
            .map(|(a, b)| self.positions[a as usize].dist(&self.positions[b as usize]) as f64)
            .sum()
    }

    /// Rescales positions into `[0, w] × [0, h]`.
    pub fn normalize(&mut self, w: f32, h: f32) {
        let Some((min, max)) = self.bounds() else {
            return;
        };
        let sx = if max.x > min.x {
            w / (max.x - min.x)
        } else {
            1.0
        };
        let sy = if max.y > min.y {
            h / (max.y - min.y)
        } else {
            1.0
        };
        for p in &mut self.positions {
            p.x = (p.x - min.x) * sx;
            p.y = (p.y - min.y) * sy;
        }
    }
}

/// Uniformly random positions in `[0, size]²` — the usual FR seed.
pub fn random(n: usize, size: f32, seed: u64) -> Layout {
    let mut rng = wodex_synth::rng::StdRng::seed_from_u64(seed);
    Layout {
        positions: (0..n)
            .map(|_| Point::new(rng.random_range(0.0..=size), rng.random_range(0.0..=size)))
            .collect(),
    }
}

/// Nodes evenly spaced on a circle (deterministic O(n)).
pub fn circular(n: usize, radius: f32) -> Layout {
    Layout {
        positions: (0..n)
            .map(|i| {
                let a = std::f32::consts::TAU * i as f32 / n.max(1) as f32;
                Point::new(radius * a.cos(), radius * a.sin())
            })
            .collect(),
    }
}

/// Nodes on a square grid (deterministic O(n)).
pub fn grid(n: usize, spacing: f32) -> Layout {
    let cols = (n as f32).sqrt().ceil() as usize;
    Layout {
        positions: (0..n)
            .map(|i| {
                Point::new(
                    (i % cols.max(1)) as f32 * spacing,
                    (i / cols.max(1)) as f32 * spacing,
                )
            })
            .collect(),
    }
}

/// Parameters for [`fruchterman_reingold`].
#[derive(Debug, Clone, Copy)]
pub struct FrParams {
    /// Iterations to run.
    pub iterations: usize,
    /// Side length of the layout square.
    pub size: f32,
    /// Initial temperature as a fraction of `size` (default 0.1).
    pub initial_temperature: f32,
    /// RNG seed for the initial placement.
    pub seed: u64,
}

impl Default for FrParams {
    fn default() -> Self {
        FrParams {
            iterations: 50,
            size: 1000.0,
            initial_temperature: 0.1,
            seed: 42,
        }
    }
}

/// Fruchterman–Reingold force-directed layout with grid-bucketed
/// repulsion (each node only repels nodes within its 3×3 cell
/// neighborhood at distance < 2k), cooling linearly to zero.
pub fn fruchterman_reingold(graph: &Adjacency, params: FrParams) -> Layout {
    fruchterman_reingold_from(
        graph,
        random(graph.node_count(), params.size, params.seed),
        params,
    )
}

/// FR starting from a given initial layout (used by the multilevel
/// scheme's refinement passes).
pub fn fruchterman_reingold_from(
    graph: &Adjacency,
    mut layout: Layout,
    params: FrParams,
) -> Layout {
    let n = graph.node_count();
    if n == 0 {
        return layout;
    }
    assert_eq!(layout.len(), n, "layout/graph size mismatch");
    let size = params.size;
    let k = size / (n as f32).sqrt().max(1.0); // ideal edge length
    let mut temp = size * params.initial_temperature;
    let cool = temp / params.iterations.max(1) as f32;
    let cell = (2.0 * k).max(1e-3);
    let ids: Vec<u32> = (0..n as u32).collect();

    for _ in 0..params.iterations {
        // Repulsion via uniform grid: only nearby pairs interact, which is
        // the standard O(n) approximation for FR. Buckets are built once
        // per iteration (cheap, serial); their contents are in node-id
        // order, so every node's force sum has a fixed association order.
        let cols = (size / cell).ceil().max(1.0) as i64;
        let mut buckets: std::collections::HashMap<(i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        let key = |p: &Point| {
            (
                ((p.x / cell).floor() as i64).clamp(-cols, 2 * cols),
                ((p.y / cell).floor() as i64).clamp(-cols, 2 * cols),
            )
        };
        for v in 0..n as u32 {
            buckets
                .entry(key(&layout.positions[v as usize]))
                .or_default()
                .push(v);
        }
        // Per-node force accumulation is independent of every other
        // node's, so it parallelizes over nodes; partitions merge in node
        // order, keeping iterations identical at every thread count.
        let positions = &layout.positions;
        let disp: Vec<Point> = wodex_exec::par_map(&ids, |&v| {
            let pv = positions[v as usize];
            let (cx, cy) = key(&pv);
            let mut d_acc = Point::default();
            // Repulsion from the 3×3 cell neighborhood, in (dx, dy) then
            // bucket order.
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(other) = buckets.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &w in other {
                        if v == w {
                            continue;
                        }
                        let pw = positions[w as usize];
                        let mut ddx = pv.x - pw.x;
                        let mut ddy = pv.y - pw.y;
                        let mut d = (ddx * ddx + ddy * ddy).sqrt();
                        if d < 1e-6 {
                            // Coincident nodes: deterministic nudge.
                            ddx = 0.01 * ((v as f32) - (w as f32)).signum();
                            ddy = 0.013;
                            d = 0.016;
                        }
                        let f = k * k / d;
                        d_acc.x += ddx / d * f;
                        d_acc.y += ddy / d * f;
                    }
                }
            }
            // Attraction along incident edges (the force is symmetric, so
            // summing over each endpoint's neighbor list applies exactly
            // the per-edge pulls of the classic formulation).
            for &w in graph.neighbors(v) {
                let pw = positions[w as usize];
                let ddx = pv.x - pw.x;
                let ddy = pv.y - pw.y;
                let d = (ddx * ddx + ddy * ddy).sqrt().max(1e-6);
                let f = d * d / k;
                d_acc.x -= ddx / d * f;
                d_acc.y -= ddy / d * f;
            }
            d_acc
        });
        // Apply displacements, capped by temperature, clamped to frame.
        for (v, d) in disp.iter().enumerate().take(n) {
            let len = (d.x * d.x + d.y * d.y).sqrt().max(1e-9);
            let step = len.min(temp);
            let p = &mut layout.positions[v];
            p.x = (p.x + d.x / len * step).clamp(0.0, size);
            p.y = (p.y + d.y / len * step).clamp(0.0, size);
        }
        temp = (temp - cool).max(0.0);
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Adjacency {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Adjacency::from_edges(n, &edges)
    }

    #[test]
    fn circular_layout_is_on_circle() {
        let l = circular(8, 10.0);
        assert_eq!(l.len(), 8);
        for p in &l.positions {
            assert!((p.dist(&Point::new(0.0, 0.0)) - 10.0).abs() < 1e-4);
        }
    }

    #[test]
    fn grid_layout_is_regular() {
        let l = grid(9, 5.0);
        assert_eq!(l.positions[0], Point::new(0.0, 0.0));
        assert_eq!(l.positions[4], Point::new(5.0, 5.0));
        assert_eq!(l.positions[8], Point::new(10.0, 10.0));
    }

    #[test]
    fn random_layout_respects_bounds_and_seed() {
        let a = random(100, 50.0, 7);
        let b = random(100, 50.0, 7);
        assert_eq!(a, b);
        assert!(a
            .positions
            .iter()
            .all(|p| (0.0..=50.0).contains(&p.x) && (0.0..=50.0).contains(&p.y)));
    }

    #[test]
    fn bounds_and_normalize() {
        let mut l = Layout {
            positions: vec![Point::new(-5.0, 0.0), Point::new(5.0, 20.0)],
        };
        let (min, max) = l.bounds().unwrap();
        assert_eq!((min.x, max.y), (-5.0, 20.0));
        l.normalize(100.0, 100.0);
        let (min, max) = l.bounds().unwrap();
        assert_eq!((min.x, min.y), (0.0, 0.0));
        assert_eq!((max.x, max.y), (100.0, 100.0));
        assert!(Layout::default().bounds().is_none());
    }

    #[test]
    fn fr_improves_over_random_seed_layout() {
        let g = path(30);
        let seed_layout = random(30, 1000.0, 1);
        let before = seed_layout.total_edge_length(&g);
        let after_layout = fruchterman_reingold(&g, FrParams::default());
        let after = after_layout.total_edge_length(&g);
        assert!(
            after < before,
            "FR should shorten edges: {after} >= {before}"
        );
    }

    #[test]
    fn fr_keeps_positions_in_frame() {
        let g = path(50);
        let l = fruchterman_reingold(&g, FrParams::default());
        assert!(l
            .positions
            .iter()
            .all(|p| (0.0..=1000.0).contains(&p.x) && (0.0..=1000.0).contains(&p.y)));
    }

    #[test]
    fn fr_is_deterministic() {
        let g = path(20);
        let a = fruchterman_reingold(&g, FrParams::default());
        let b = fruchterman_reingold(&g, FrParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn fr_separates_disconnected_cliques() {
        // Two triangles, no inter-edges: FR should keep them apart.
        let g = Adjacency::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let l = fruchterman_reingold(
            &g,
            FrParams {
                iterations: 120,
                ..Default::default()
            },
        );
        let centroid = |ids: &[usize]| {
            let n = ids.len() as f32;
            Point::new(
                ids.iter().map(|&i| l.positions[i].x).sum::<f32>() / n,
                ids.iter().map(|&i| l.positions[i].y).sum::<f32>() / n,
            )
        };
        let c1 = centroid(&[0, 1, 2]);
        let c2 = centroid(&[3, 4, 5]);
        // Intra-cluster spread should be smaller than the inter-centroid
        // distance.
        let spread: f32 = (0..3).map(|i| l.positions[i].dist(&c1)).sum::<f32>() / 3.0;
        assert!(c1.dist(&c2) > spread, "clusters should separate");
    }

    #[test]
    fn fr_empty_graph_is_noop() {
        let g = Adjacency::from_edges(0, &[]);
        let l = fruchterman_reingold(&g, FrParams::default());
        assert!(l.is_empty());
    }

    #[test]
    fn total_edge_length_is_zero_for_coincident_points() {
        let g = path(3);
        let l = Layout {
            positions: vec![Point::default(); 3],
        };
        assert_eq!(l.total_edge_length(&g), 0.0);
    }
}
