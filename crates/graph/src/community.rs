//! Community detection and modularity.
//!
//! Abstraction hierarchies (§4: "the graph is recursively decomposed into
//! smaller sub-graphs, in most cases using clustering and partitioning")
//! need a partitioner. Label propagation is the standard near-linear-time
//! choice; [`modularity`] scores how community-like a partition is, and
//! the hierarchy module uses both.

use crate::adjacency::Adjacency;
use std::collections::HashMap;
use wodex_synth::rng::{SeedableRng, SliceRandom};

/// Asynchronous label propagation. Each node repeatedly adopts the most
/// frequent label among its neighbors (ties broken toward the smallest
/// label for determinism) until a fixed point or `max_rounds`.
///
/// Returns dense community labels (`0..k`).
pub fn label_propagation(graph: &Adjacency, max_rounds: usize, seed: u64) -> Vec<u32> {
    let n = graph.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = wodex_synth::rng::StdRng::seed_from_u64(seed);
    for _ in 0..max_rounds {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            let nbrs = graph.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let mut freq: HashMap<u32, usize> = HashMap::new();
            for &w in nbrs {
                *freq.entry(labels[w as usize]).or_insert(0) += 1;
            }
            let best = freq
                .iter()
                .max_by_key(|&(&label, &count)| (count, std::cmp::Reverse(label)))
                .map(|(&label, _)| label)
                .expect("non-empty freq");
            if labels[v as usize] != best {
                labels[v as usize] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    densify(&labels)
}

/// Renames labels to dense `0..k` (stable: first occurrence order).
pub fn densify(labels: &[u32]) -> Vec<u32> {
    let mut map: HashMap<u32, u32> = HashMap::new();
    let mut next = 0u32;
    labels
        .iter()
        .map(|&l| {
            *map.entry(l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

/// Number of distinct communities in a dense labeling.
pub fn community_count(labels: &[u32]) -> usize {
    labels.iter().copied().max().map_or(0, |m| m as usize + 1)
}

/// Newman modularity Q of a partition:
/// `Q = Σ_c (e_c/m − (d_c/2m)²)` where `e_c` is the number of intra-
/// community edges and `d_c` the total degree of community `c`.
pub fn modularity(graph: &Adjacency, labels: &[u32]) -> f64 {
    let m = graph.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = community_count(labels);
    let mut intra = vec![0f64; k];
    let mut degree = vec![0f64; k];
    for (a, b) in graph.edges() {
        let (ca, cb) = (labels[a as usize] as usize, labels[b as usize] as usize);
        if ca == cb {
            intra[ca] += 1.0;
        }
    }
    for v in 0..graph.node_count() as u32 {
        degree[labels[v as usize] as usize] += graph.degree(v) as f64;
    }
    (0..k)
        .map(|c| intra[c] / m - (degree[c] / (2.0 * m)).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 10-cliques joined by a single edge.
    fn two_cliques() -> Adjacency {
        let mut edges = Vec::new();
        for base in [0u32, 10] {
            for i in 0..10 {
                for j in (i + 1)..10 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 10));
        Adjacency::from_edges(20, &edges)
    }

    #[test]
    fn label_propagation_splits_cliques() {
        let g = two_cliques();
        // Async label propagation on bridged cliques is order-sensitive;
        // this seed's visit order recovers the planted two-community split.
        let labels = label_propagation(&g, 20, 2);
        assert_eq!(community_count(&labels), 2);
        // Everyone in the first clique shares a label.
        assert!(labels[..10].iter().all(|&l| l == labels[0]));
        assert!(labels[10..].iter().all(|&l| l == labels[10]));
        assert_ne!(labels[0], labels[10]);
    }

    #[test]
    fn modularity_prefers_true_partition() {
        let g = two_cliques();
        let truth: Vec<u32> = (0..20).map(|i| (i / 10) as u32).collect();
        let all_one = vec![0u32; 20];
        let singleton: Vec<u32> = (0..20).collect();
        let q_truth = modularity(&g, &truth);
        assert!(q_truth > modularity(&g, &all_one));
        assert!(q_truth > modularity(&g, &singleton));
        assert!(q_truth > 0.3, "q={q_truth}");
    }

    #[test]
    fn modularity_of_whole_graph_partition_is_zero() {
        let g = two_cliques();
        let all_one = vec![0u32; 20];
        assert!(modularity(&g, &all_one).abs() < 1e-12);
    }

    #[test]
    fn densify_is_stable_and_dense() {
        let labels = vec![42, 7, 42, 9, 7];
        let d = densify(&labels);
        assert_eq!(d, vec![0, 1, 0, 2, 1]);
        assert_eq!(community_count(&d), 3);
    }

    #[test]
    fn isolated_nodes_keep_their_own_community() {
        let g = Adjacency::from_edges(4, &[(0, 1)]);
        let labels = label_propagation(&g, 10, 1);
        // Nodes 2 and 3 are isolated: distinct communities.
        assert_ne!(labels[2], labels[3]);
        assert_eq!(labels[0], labels[1]);
    }

    #[test]
    fn planted_partition_is_recovered() {
        let (el, truth) = wodex_synth::netgen::planted_partition(4, 20, 0.4, 0.005, 3);
        let g = Adjacency::from_edges(el.nodes, &el.edges);
        let labels = label_propagation(&g, 30, 2);
        // Compare partitions by checking pairs within the same true
        // community mostly share labels.
        let mut agree = 0;
        let mut total = 0;
        for i in 0..truth.len() {
            for j in (i + 1)..truth.len() {
                if truth[i] == truth[j] {
                    total += 1;
                    if labels[i] == labels[j] {
                        agree += 1;
                    }
                }
            }
        }
        let frac = agree as f64 / total as f64;
        assert!(frac > 0.85, "recovered only {frac} of intra pairs");
    }

    #[test]
    fn empty_graph_modularity_zero() {
        let g = Adjacency::from_edges(0, &[]);
        assert_eq!(modularity(&g, &[]), 0.0);
    }
}
