//! # wodex-graph — the graph visualization substrate
//!
//! RDF *is* a graph, which is why §3.4 of the survey is its longest system
//! table and §4 its sharpest criticism: "*given the large memory
//! requirements of graph layout algorithms ... the current WoD systems are
//! restricted to handle small sized graphs*". The remedies §4 prescribes
//! are all implemented here:
//!
//! * [`adjacency`] — compact CSR adjacency built from edge lists or RDF
//!   graphs, with degrees, components and clustering metrics.
//! * [`layout`] — force-directed (Fruchterman–Reingold), circular, and
//!   grid layouts; the FR baseline is the O(n²)-ish algorithm whose cost
//!   E8 measures.
//! * [`coarsen`] — heavy-edge matching graph coarsening and the
//!   **multilevel layout** built on it (lay out the coarse graph, project,
//!   refine) — the standard scalable-layout recipe.
//! * [`community`] — label-propagation community detection + modularity,
//!   the clustering that drives abstraction layers.
//! * [`hierarchy`] — **abstraction hierarchies**: the graph recursively
//!   decomposed into supernodes "*that form a hierarchy of abstraction
//!   layers*" (ASK-GraphView \[1\], GrouseFlocks \[9\], GMine \[71\]), with
//!   expand/collapse navigation.
//! * [`bundling`] — force-directed edge bundling \[63, 48, 44\]: aggregates
//!   edges into bundles, the §4 edge-aggregation family.
//! * [`sample`] — node / edge / forest-fire graph sampling (the Oracle
//!   approach \[127\]).
//! * [`fisheye`] — ZoomRDF's \[142\] semantic fisheye zooming: graphical
//!   distortion around a focus plus Furnas degree-of-interest filtering.
//! * [`spatial`] — a quadtree over laid-out nodes enabling viewport
//!   windowing — the graphVizdb \[22, 23\] architecture where only the
//!   visible window is fetched (E10).

pub mod adjacency;
pub mod bundling;
pub mod coarsen;
pub mod community;
pub mod fisheye;
pub mod hierarchy;
pub mod layout;
pub mod sample;
pub mod spatial;

pub use adjacency::Adjacency;
pub use hierarchy::AbstractionHierarchy;
pub use layout::{Layout, Point};
pub use spatial::{QuadTree, Rect};
