//! Semantic fisheye zooming (ZoomRDF \[142\]).
//!
//! ZoomRDF "employs a space-optimized visualization algorithm in order to
//! increase the number of resources which are displayed": a fisheye
//! distortion magnifies the focus region while keeping the whole graph on
//! screen — more context per pixel than a rectangular zoom.
//!
//! [`fisheye`] applies Furnas/Sarkar–Brown graphical fisheye distortion
//! to a [`Layout`]: each point moves away from the focus along its radius
//! by `r' = r·(d+1)/(d·r/R + 1)` (normalized), where `d` is the
//! distortion factor. [`degree_of_interest`] adds the *semantic* half:
//! API-visible DOI = a priori importance (degree) minus distance from the
//! focus, the classic Furnas formula ZoomRDF instantiates for RDF.

use crate::adjacency::Adjacency;
use crate::layout::{Layout, Point};

/// Applies graphical fisheye distortion around `focus` with distortion
/// `d ≥ 0` (0 = identity), bounded by radius `radius` (points beyond it
/// stay put).
pub fn fisheye(layout: &Layout, focus: Point, d: f32, radius: f32) -> Layout {
    assert!(d >= 0.0, "distortion must be non-negative");
    assert!(radius > 0.0, "radius must be positive");
    let positions = layout
        .positions
        .iter()
        .map(|p| {
            let dx = p.x - focus.x;
            let dy = p.y - focus.y;
            let r = (dx * dx + dy * dy).sqrt();
            if r >= radius || r < 1e-9 {
                return *p;
            }
            let norm = r / radius;
            let magnified = (d + 1.0) * norm / (d * norm + 1.0);
            let scale = magnified * radius / r;
            Point::new(focus.x + dx * scale, focus.y + dy * scale)
        })
        .collect();
    Layout { positions }
}

/// Furnas degree-of-interest: `doi(v) = api(v) − dist(v, focus)` where
/// `api` is log-degree importance and `dist` is the BFS hop distance from
/// the focus node (unreachable = max hops + 1). Higher is more
/// interesting; ZoomRDF keeps the top-k visible at full size.
pub fn degree_of_interest(graph: &Adjacency, focus: u32, api_weight: f32) -> Vec<f32> {
    let n = graph.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[focus as usize] = 0;
    queue.push_back(focus);
    let mut max_seen = 0u32;
    while let Some(v) = queue.pop_front() {
        for &w in graph.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                max_seen = max_seen.max(dist[w as usize]);
                queue.push_back(w);
            }
        }
    }
    (0..n)
        .map(|v| {
            let api = ((graph.degree(v as u32) + 1) as f32).ln() * api_weight;
            let d = if dist[v] == u32::MAX {
                max_seen + 1
            } else {
                dist[v]
            };
            api - d as f32
        })
        .collect()
}

/// Selects the `k` most interesting nodes under the DOI (always includes
/// the focus).
pub fn doi_top_k(graph: &Adjacency, focus: u32, api_weight: f32, k: usize) -> Vec<u32> {
    let doi = degree_of_interest(graph, focus, api_weight);
    let mut order: Vec<u32> = (0..graph.node_count() as u32).collect();
    order.sort_by(|&a, &b| doi[b as usize].total_cmp(&doi[a as usize]));
    let mut out: Vec<u32> = order.into_iter().take(k.max(1)).collect();
    if !out.contains(&focus) {
        out.pop();
        out.push(focus);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_layout() -> Layout {
        Layout {
            positions: (0..100)
                .map(|i| Point::new((i % 10) as f32 * 10.0, (i / 10) as f32 * 10.0))
                .collect(),
        }
    }

    #[test]
    fn zero_distortion_is_identity() {
        let l = grid_layout();
        let f = fisheye(&l, Point::new(45.0, 45.0), 0.0, 100.0);
        for (a, b) in l.positions.iter().zip(&f.positions) {
            assert!(a.dist(b) < 1e-4);
        }
    }

    #[test]
    fn focus_neighborhood_is_magnified() {
        let l = grid_layout();
        let focus = Point::new(45.0, 45.0);
        let f = fisheye(&l, focus, 3.0, 100.0);
        // A point near the focus moves outward (more separation).
        let near = 44; // grid point (40,40)
        let before = l.positions[near].dist(&focus);
        let after = f.positions[near].dist(&focus);
        assert!(
            after > before,
            "near point must be pushed out: {before} → {after}"
        );
    }

    #[test]
    fn distortion_preserves_radial_order() {
        let l = grid_layout();
        let focus = Point::new(45.0, 45.0);
        let f = fisheye(&l, focus, 4.0, 200.0);
        // The fisheye function is monotone in r: order by distance from
        // focus must be preserved.
        let mut idx: Vec<usize> = (0..l.positions.len()).collect();
        idx.sort_by(|&a, &b| {
            l.positions[a]
                .dist(&focus)
                .total_cmp(&l.positions[b].dist(&focus))
        });
        for w in idx.windows(2) {
            let ra = f.positions[w[0]].dist(&focus);
            let rb = f.positions[w[1]].dist(&focus);
            assert!(ra <= rb + 1e-3, "radial order violated");
        }
    }

    #[test]
    fn points_outside_radius_stay_fixed() {
        let l = grid_layout();
        let f = fisheye(&l, Point::new(0.0, 0.0), 5.0, 30.0);
        // (90, 90) is far outside the radius.
        assert_eq!(l.positions[99], f.positions[99]);
    }

    #[test]
    fn distorted_points_stay_within_radius() {
        let l = grid_layout();
        let focus = Point::new(45.0, 45.0);
        let f = fisheye(&l, focus, 10.0, 60.0);
        for (orig, moved) in l.positions.iter().zip(&f.positions) {
            if orig.dist(&focus) < 60.0 {
                assert!(moved.dist(&focus) <= 60.0 + 1e-3);
            }
        }
    }

    #[test]
    fn doi_decreases_with_distance() {
        // Path graph 0-1-2-3-4: DOI from focus 0 must fall along the path.
        let g = Adjacency::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let doi = degree_of_interest(&g, 0, 1.0);
        assert!(doi[0] > doi[1]);
        assert!(doi[1] > doi[2] || (doi[1] - doi[2]).abs() < 0.7); // degree bumps
        assert!(doi[0] > doi[4]);
    }

    #[test]
    fn doi_rewards_hubs() {
        // Star with hub 0, plus a pendant chain; hub should beat an equally
        // distant non-hub.
        let g = Adjacency::from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (5, 6)]);
        let doi = degree_of_interest(&g, 5, 2.0);
        // Node 0 (degree 4) is 2 hops away; node 6 (degree 1) is 1 hop.
        assert!(doi[0] > doi[6], "hub importance must offset distance");
    }

    #[test]
    fn doi_top_k_contains_focus() {
        let g = Adjacency::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let top = doi_top_k(&g, 5, 0.1, 3);
        assert_eq!(top.len(), 3);
        assert!(top.contains(&5));
    }

    #[test]
    fn doi_handles_disconnected_nodes() {
        let g = Adjacency::from_edges(4, &[(0, 1)]);
        let doi = degree_of_interest(&g, 0, 1.0);
        assert!(doi[0] > doi[2]);
        assert!(doi[2].is_finite());
    }
}
