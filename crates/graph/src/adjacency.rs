//! Compact adjacency structure and basic graph metrics.

use std::collections::BTreeSet;
use wodex_rdf::{Graph, Term};

/// An undirected graph in CSR (compressed sparse row) form.
///
/// Node ids are dense `0..n`. Construction deduplicates edges and drops
/// self-loops; every edge appears in both endpoints' neighbor lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    edge_count: usize,
}

impl Adjacency {
    /// Builds from an undirected edge list over `0..n` ids.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Adjacency {
        let mut cleaned: Vec<(u32, u32)> = edges
            .iter()
            .filter(|&&(a, b)| a != b && (a as usize) < n && (b as usize) < n)
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        cleaned.sort_unstable();
        cleaned.dedup();
        let mut degree = vec![0usize; n];
        for &(a, b) in &cleaned {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut neighbors = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for &(a, b) in &cleaned {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Sort each neighbor list for binary-searchable membership.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Adjacency {
            offsets,
            neighbors,
            edge_count: cleaned.len(),
        }
    }

    /// Builds the *object-link* graph of an RDF graph: nodes are the
    /// resources (IRIs/bnodes), edges are triples whose object is a
    /// resource. Returns the adjacency plus the node→term table.
    pub fn from_rdf(graph: &Graph) -> (Adjacency, Vec<Term>) {
        let mut nodes: BTreeSet<&Term> = BTreeSet::new();
        for t in graph.iter() {
            if t.object.is_resource() {
                nodes.insert(&t.subject);
                nodes.insert(&t.object);
            }
        }
        let node_list: Vec<Term> = nodes.iter().map(|&t| t.clone()).collect();
        let index: std::collections::HashMap<&Term, u32> = node_list
            .iter()
            .enumerate()
            .map(|(i, t)| (t, i as u32))
            .collect();
        let mut edges = Vec::new();
        for t in graph.iter() {
            if t.object.is_resource() {
                edges.push((index[&t.subject], index[&t.object]));
            }
        }
        (Adjacency::from_edges(node_list.len(), &edges), node_list)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected, deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The sorted neighbor list of node `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// True if `a` and `b` are adjacent.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates all edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count() as u32).flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Degree histogram: `hist[d]` = number of nodes with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max = (0..self.node_count() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for v in 0..self.node_count() as u32 {
            hist[self.degree(v)] += 1;
        }
        hist
    }

    /// Connected components: returns (label per node, component count).
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.node_count();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for start in 0..n as u32 {
            if label[start as usize] != u32::MAX {
                continue;
            }
            stack.push(start);
            label[start as usize] = next;
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if label[w as usize] == u32::MAX {
                        label[w as usize] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        (label, next as usize)
    }

    /// Average local clustering coefficient (exact; O(Σ d²)).
    pub fn avg_clustering(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for v in 0..n as u32 {
            let nbrs = self.neighbors(v);
            let d = nbrs.len();
            if d < 2 {
                continue;
            }
            let mut links = 0usize;
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if self.has_edge(a, b) {
                        links += 1;
                    }
                }
            }
            total += 2.0 * links as f64 / (d * (d - 1)) as f64;
        }
        total / n as f64
    }

    /// The subgraph induced by `keep` (sorted unique node ids). Returns
    /// the new adjacency and the mapping new-id → old-id.
    pub fn induced_subgraph(&self, keep: &[u32]) -> (Adjacency, Vec<u32>) {
        let remap: std::collections::HashMap<u32, u32> = keep
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut edges = Vec::new();
        for &v in keep {
            for &w in self.neighbors(v) {
                if v < w {
                    if let Some(&nw) = remap.get(&w) {
                        edges.push((remap[&v], nw));
                    }
                }
            }
        }
        (Adjacency::from_edges(keep.len(), &edges), keep.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_rdf::vocab::foaf;
    use wodex_rdf::Triple;

    fn triangle_plus_tail() -> Adjacency {
        // 0-1-2 triangle, 2-3 tail, 4 isolated.
        Adjacency::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn csr_construction_and_neighbors() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(4), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn construction_dedups_and_drops_self_loops() {
        let g = Adjacency::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 2), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = triangle_plus_tail();
        let h = g.degree_histogram();
        // degrees: 2,2,3,1,0.
        assert_eq!(h, vec![1, 1, 2, 1]);
    }

    #[test]
    fn components_finds_islands() {
        let g = triangle_plus_tail();
        let (labels, count) = g.components();
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn clustering_coefficient_of_triangle() {
        let tri = Adjacency::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((tri.avg_clustering() - 1.0).abs() < 1e-12);
        let path = Adjacency::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(path.avg_clustering(), 0.0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle_plus_tail();
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        let (sub2, _) = g.induced_subgraph(&[2, 3, 4]);
        assert_eq!(sub2.edge_count(), 1);
    }

    #[test]
    fn from_rdf_links_resources_only() {
        let mut g = Graph::new();
        g.insert(Triple::iri(
            "http://e.org/a",
            foaf::KNOWS,
            Term::iri("http://e.org/b"),
        ));
        g.insert(Triple::iri(
            "http://e.org/a",
            foaf::NAME,
            Term::literal("Alice"), // literal: not a graph edge
        ));
        let (adj, nodes) = Adjacency::from_rdf(&g);
        assert_eq!(adj.node_count(), 2);
        assert_eq!(adj.edge_count(), 1);
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Adjacency::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.components().1, 0);
        assert_eq!(g.avg_clustering(), 0.0);
    }
}
