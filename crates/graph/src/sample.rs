//! Graph sampling.
//!
//! Table 2 marks sampling for GrOWL, Gephi, Trisolda, Cytoscape-on-Oracle
//! \[127\], ZoomRDF, KC-Viz, GLOW, OntoTrix, LODeX, graphVizdb — it is *the*
//! reduction technique of graph visualization. Three estimators with
//! different bias profiles:
//!
//! * [`node_sample`] — induced subgraph on uniformly chosen nodes; cheap,
//!   but thins out edges quadratically.
//! * [`edge_sample`] — uniform edges plus their endpoints; biases toward
//!   hubs, preserves edge density better.
//! * [`forest_fire`] — recursive burning from random seeds (Leskovec &
//!   Faloutsos); preserves degree-distribution shape and community
//!   structure best, which is what experiment E11 checks.

use crate::adjacency::Adjacency;
use wodex_synth::rng::{Rng, SeedableRng, SliceRandom};

/// A sampled subgraph: the adjacency plus the original id of each node.
#[derive(Debug, Clone)]
pub struct SampledGraph {
    /// The sampled adjacency.
    pub graph: Adjacency,
    /// For each sampled node, its id in the original graph.
    pub original_ids: Vec<u32>,
}

/// Uniform node sampling: keeps `⌈rate·n⌉` random nodes and the induced
/// edges.
pub fn node_sample(graph: &Adjacency, rate: f64, seed: u64) -> SampledGraph {
    assert!((0.0..=1.0).contains(&rate));
    let n = graph.node_count();
    let k = ((n as f64 * rate).ceil() as usize).min(n);
    let mut rng = wodex_synth::rng::StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let mut keep: Vec<u32> = ids.into_iter().take(k).collect();
    keep.sort_unstable();
    let (g, original_ids) = graph.induced_subgraph(&keep);
    SampledGraph {
        graph: g,
        original_ids,
    }
}

/// Uniform edge sampling: keeps `⌈rate·m⌉` random edges and their
/// endpoints.
pub fn edge_sample(graph: &Adjacency, rate: f64, seed: u64) -> SampledGraph {
    assert!((0.0..=1.0).contains(&rate));
    let mut rng = wodex_synth::rng::StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = graph.edges().collect();
    edges.shuffle(&mut rng);
    let k = ((edges.len() as f64 * rate).ceil() as usize).min(edges.len());
    let kept = &edges[..k];
    let mut nodes: Vec<u32> = kept.iter().flat_map(|&(a, b)| [a, b]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let remap: std::collections::HashMap<u32, u32> = nodes
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let remapped: Vec<(u32, u32)> = kept.iter().map(|&(a, b)| (remap[&a], remap[&b])).collect();
    SampledGraph {
        graph: Adjacency::from_edges(nodes.len(), &remapped),
        original_ids: nodes,
    }
}

/// Forest-fire sampling: burn from random seeds, each burn step igniting a
/// geometrically distributed number of unburned neighbors (forward burning
/// probability `p_f`), until `⌈rate·n⌉` nodes are burned.
pub fn forest_fire(graph: &Adjacency, rate: f64, p_f: f64, seed: u64) -> SampledGraph {
    assert!((0.0..=1.0).contains(&rate));
    assert!((0.0..1.0).contains(&p_f), "p_f must be in [0,1)");
    let n = graph.node_count();
    let target = ((n as f64 * rate).ceil() as usize).min(n);
    let mut rng = wodex_synth::rng::StdRng::seed_from_u64(seed);
    let mut burned = vec![false; n];
    let mut burned_count = 0usize;
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    while burned_count < target {
        // Ignite a fresh random unburned seed.
        let mut s = rng.random_range(0..n as u32);
        let mut guard = 0;
        while burned[s as usize] && guard < 4 * n {
            s = rng.random_range(0..n as u32);
            guard += 1;
        }
        if burned[s as usize] {
            // Fall back to a linear scan for the last unburned nodes.
            if let Some(u) = (0..n as u32).find(|&v| !burned[v as usize]) {
                s = u;
            } else {
                break;
            }
        }
        burned[s as usize] = true;
        burned_count += 1;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            if burned_count >= target {
                break;
            }
            // Geometric(p_f) number of neighbors to burn.
            let mut to_burn = 0usize;
            while rng.random_range(0.0..1.0) < p_f {
                to_burn += 1;
            }
            let mut nbrs: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| !burned[w as usize])
                .collect();
            nbrs.shuffle(&mut rng);
            for w in nbrs.into_iter().take(to_burn) {
                if burned_count >= target {
                    break;
                }
                burned[w as usize] = true;
                burned_count += 1;
                queue.push_back(w);
            }
        }
    }
    let keep: Vec<u32> = (0..n as u32).filter(|&v| burned[v as usize]).collect();
    let (g, original_ids) = graph.induced_subgraph(&keep);
    SampledGraph {
        graph: g,
        original_ids,
    }
}

/// The complementary-CDF of the degree distribution at the given degree
/// points, used to compare distribution *shape* between graph and sample.
pub fn degree_ccdf(graph: &Adjacency, at: &[usize]) -> Vec<f64> {
    let n = graph.node_count().max(1) as f64;
    let degrees: Vec<usize> = (0..graph.node_count() as u32)
        .map(|v| graph.degree(v))
        .collect();
    at.iter()
        .map(|&d| degrees.iter().filter(|&&x| x >= d).count() as f64 / n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ba() -> Adjacency {
        let el = wodex_synth::netgen::barabasi_albert(2000, 3, 11);
        Adjacency::from_edges(el.nodes, &el.edges)
    }

    #[test]
    fn node_sample_size_is_exact() {
        let g = ba();
        let s = node_sample(&g, 0.1, 1);
        assert_eq!(s.graph.node_count(), 200);
        assert_eq!(s.original_ids.len(), 200);
    }

    #[test]
    fn node_sample_edges_are_induced() {
        let g = ba();
        let s = node_sample(&g, 0.2, 2);
        for (a, b) in s.graph.edges() {
            assert!(g.has_edge(s.original_ids[a as usize], s.original_ids[b as usize]));
        }
    }

    #[test]
    fn edge_sample_keeps_rate_of_edges() {
        let g = ba();
        let s = edge_sample(&g, 0.1, 3);
        let want = (g.edge_count() as f64 * 0.1).ceil() as usize;
        assert_eq!(s.graph.edge_count(), want);
    }

    #[test]
    fn edge_sample_has_no_isolated_nodes() {
        let g = ba();
        let s = edge_sample(&g, 0.05, 4);
        for v in 0..s.graph.node_count() as u32 {
            assert!(s.graph.degree(v) >= 1);
        }
    }

    #[test]
    fn forest_fire_reaches_target_size() {
        let g = ba();
        let s = forest_fire(&g, 0.15, 0.5, 5);
        assert_eq!(s.graph.node_count(), 300);
    }

    #[test]
    fn forest_fire_sample_is_more_connected_than_node_sample() {
        let g = ba();
        let ff = forest_fire(&g, 0.1, 0.6, 6);
        let ns = node_sample(&g, 0.1, 6);
        // Burning follows edges, so FF keeps far more of them.
        assert!(
            ff.graph.edge_count() > ns.graph.edge_count(),
            "ff={} ns={}",
            ff.graph.edge_count(),
            ns.graph.edge_count()
        );
    }

    #[test]
    fn forest_fire_preserves_degree_ccdf_shape() {
        let g = ba();
        let s = forest_fire(&g, 0.2, 0.6, 7);
        let at = [1, 2, 4, 8, 16];
        let orig = degree_ccdf(&g, &at);
        let samp = degree_ccdf(&s.graph, &at);
        // Shape check: both heavy-tailed — positive mass at degree 8 and
        // monotone CCDF; the sample must not collapse to isolated dust.
        assert!(samp[3] > 0.0, "sample lost its tail: {samp:?} vs {orig:?}");
        assert!(samp.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn rate_one_returns_whole_graph() {
        let g = ba();
        assert_eq!(node_sample(&g, 1.0, 8).graph.node_count(), g.node_count());
        assert_eq!(edge_sample(&g, 1.0, 8).graph.edge_count(), g.edge_count());
        assert_eq!(
            forest_fire(&g, 1.0, 0.5, 8).graph.node_count(),
            g.node_count()
        );
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let g = ba();
        assert_eq!(
            node_sample(&g, 0.1, 9).original_ids,
            node_sample(&g, 0.1, 9).original_ids
        );
        assert_eq!(
            forest_fire(&g, 0.1, 0.5, 9).original_ids,
            forest_fire(&g, 0.1, 0.5, 9).original_ids
        );
    }

    #[test]
    fn degree_ccdf_basics() {
        let g = Adjacency::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let ccdf = degree_ccdf(&g, &[1, 2, 3]);
        // degrees: 3,1,1,1 → P(d≥1)=1, P(d≥2)=0.25, P(d≥3)=0.25.
        assert_eq!(ccdf, vec![1.0, 0.25, 0.25]);
    }
}
