//! # wodex-core — the unified exploration & visualization framework
//!
//! This crate assembles the substrates into the system the survey's §4
//! calls for: a Web-of-Data exploration and visualization framework that
//! treats **scalability and performance as vital requirements** —
//! approximation-first visualization, incremental computation, adaptive
//! indexing, bounded memory, and user guidance, behind one façade.
//!
//! ```
//! use wodex_core::Explorer;
//!
//! let ttl = r#"
//! @prefix ex: <http://example.org/> .
//! ex:athens a ex:City ; ex:population 664046 .
//! ex:sparta a ex:City ; ex:population 35259 .
//! "#;
//! let mut ex = Explorer::from_turtle(ttl).unwrap();
//! let view = ex.visualize("http://example.org/population");
//! assert!(view.svg.contains("<svg"));
//! let r = ex.sparql("SELECT (COUNT(*) AS ?n) WHERE { ?s a <http://example.org/City> }").unwrap();
//! assert_eq!(r.table().unwrap().len(), 1);
//! ```

mod cache;
mod error;
mod explorer;

pub use cache::ViewCache;
pub use error::WodexError;
pub use explorer::{DiskView, Explorer, GraphView};
pub use wodex_sparql::{Budget, BudgetedResult, DegradeReason, Degraded};
