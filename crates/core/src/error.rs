//! The unified error type of the façade.
//!
//! Each substrate reports failures in its own vocabulary — parse errors
//! from `wodex-rdf`, query errors from `wodex-sparql`, typed storage
//! faults from `wodex-store`. The [`Explorer`](crate::Explorer) methods
//! that can cross more than one substrate return [`WodexError`] so a
//! caller matches one enum instead of juggling three.

use wodex_rdf::RdfError;
use wodex_sparql::QueryError;
use wodex_store::StoreError;

/// Any error the [`Explorer`](crate::Explorer) façade can surface.
#[derive(Debug)]
pub enum WodexError {
    /// Parsing or modelling RDF failed.
    Rdf(RdfError),
    /// Parsing or evaluating a SPARQL query failed.
    Query(QueryError),
    /// The disk-backed storage path failed (I/O, corruption, exhausted
    /// retries). Transient faults are retried inside the store before
    /// this ever surfaces.
    Store(StoreError),
}

impl std::fmt::Display for WodexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WodexError::Rdf(e) => write!(f, "rdf: {e}"),
            WodexError::Query(e) => write!(f, "query: {e}"),
            WodexError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for WodexError {}

impl From<RdfError> for WodexError {
    fn from(e: RdfError) -> WodexError {
        WodexError::Rdf(e)
    }
}

impl From<QueryError> for WodexError {
    fn from(e: QueryError) -> WodexError {
        WodexError::Query(e)
    }
}

impl From<StoreError> for WodexError {
    fn from(e: StoreError) -> WodexError {
        WodexError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let q: WodexError = QueryError::Eval("boom".into()).into();
        assert!(matches!(q, WodexError::Query(_)));
        assert!(q.to_string().starts_with("query:"));
        let s: WodexError = StoreError::NoSuchPage { page: 3, pages: 1 }.into();
        assert!(matches!(s, WodexError::Store(_)));
        assert!(s.to_string().contains("page"));
    }
}
