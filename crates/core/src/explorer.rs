//! The [`Explorer`] façade.

use wodex_explore::session::ExplorationSession;
use wodex_explore::ResourceView;
use wodex_graph::adjacency::Adjacency;
use wodex_graph::hierarchy::{AbstractionHierarchy, HierarchyView};
use wodex_graph::layout::{self, FrParams};
use wodex_hetree::{HETree, Variant};
use wodex_rdf::stats::DatasetStats;
use wodex_rdf::{Graph, RdfError, Term, Value};
use wodex_sparql::{QueryError, QueryResult};
use wodex_store::TripleStore;
use wodex_viz::ldvm::{LdvmPipeline, View};
use wodex_viz::profile::FieldProfile;
use wodex_viz::recommend::{Recommendation, VisKind};
use wodex_viz::UserPreferences;

/// A ready-to-render abstraction view of the dataset's link graph.
pub struct GraphView {
    /// The underlying adjacency (object links between resources).
    pub adjacency: Adjacency,
    /// The node terms, indexed like the adjacency.
    pub nodes: Vec<Term>,
    /// The abstraction hierarchy over it.
    pub hierarchy: AbstractionHierarchy,
}

impl GraphView {
    /// Renders the current top-level abstraction as a node-link scene:
    /// one circle per supernode (sized by weight), one line per
    /// aggregated edge. The scene stays small regardless of base size —
    /// the §4 scalability property.
    pub fn overview_scene(&self, width: f64, height: f64) -> wodex_viz::Scene {
        let view = HierarchyView::new(&self.hierarchy);
        let visible = view.visible();
        let index: std::collections::HashMap<_, u32> = visible
            .iter()
            .enumerate()
            .map(|(i, &h)| (h, i as u32))
            .collect();
        // Lay out the abstract graph.
        let edges: Vec<(u32, u32)> = view
            .visible_edges()
            .keys()
            .map(|&(a, b)| (index[&a], index[&b]))
            .collect();
        let abstract_adj = Adjacency::from_edges(visible.len(), &edges);
        let lay = layout::fruchterman_reingold(
            &abstract_adj,
            FrParams {
                iterations: 60,
                ..Default::default()
            },
        );
        let sizes: Vec<f64> = visible
            .iter()
            .map(|&h| self.hierarchy.weight(h) as f64)
            .collect();
        wodex_viz::charts::node_link(
            "link-graph overview",
            &lay,
            &edges,
            Some(&sizes),
            width,
            height,
        )
    }
}

/// The unified framework: one value that loads a dataset and exposes
/// every capability of the workspace.
pub struct Explorer {
    graph: Graph,
    store: TripleStore,
    pipeline: LdvmPipeline,
    session: ExplorationSession,
    prefs: UserPreferences,
}

impl Explorer {
    /// Loads from an in-memory [`Graph`].
    pub fn from_graph(graph: Graph) -> Explorer {
        let store = TripleStore::from_graph(&graph);
        let prefs = UserPreferences::default();
        let pipeline = LdvmPipeline::new(graph.clone()).with_prefs(prefs.clone());
        let session = ExplorationSession::new(graph.clone());
        Explorer {
            graph,
            store,
            pipeline,
            session,
            prefs,
        }
    }

    /// Parses a Turtle document.
    pub fn from_turtle(ttl: &str) -> Result<Explorer, RdfError> {
        Ok(Explorer::from_graph(wodex_rdf::turtle::parse(ttl)?))
    }

    /// Parses an N-Triples document.
    pub fn from_ntriples(nt: &str) -> Result<Explorer, RdfError> {
        Ok(Explorer::from_graph(wodex_rdf::ntriples::parse(nt)?))
    }

    /// Replaces the preferences (re-wires the LDVM pipeline).
    pub fn with_prefs(mut self, prefs: UserPreferences) -> Explorer {
        self.prefs = prefs.clone();
        self.pipeline = LdvmPipeline::new(self.graph.clone()).with_prefs(prefs);
        self
    }

    /// The loaded graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The dictionary-encoded store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Dataset statistics (the "Statistics" facility of Table 1).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::of(&self.graph)
    }

    /// Runs a SPARQL-subset query.
    pub fn sparql(&self, query: &str) -> Result<QueryResult, QueryError> {
        wodex_sparql::query(&self.store, query)
    }

    /// Profiles every property (the recommendation wizard's first step).
    pub fn profiles(&self) -> Vec<FieldProfile> {
        wodex_viz::profile::profile_graph(&self.graph)
    }

    /// Ranked chart recommendations for one property.
    pub fn recommend(&self, predicate: &str) -> Vec<Recommendation> {
        let a = self.pipeline.analyze_property(predicate);
        self.pipeline.recommendations(&a)
    }

    /// Runs the full LDVM pipeline for a property with the top-ranked
    /// chart type.
    pub fn visualize(&self, predicate: &str) -> View {
        self.pipeline.run(predicate)
    }

    /// Like [`Explorer::visualize`] with an explicit chart type.
    pub fn visualize_as(&self, predicate: &str, kind: VisKind) -> View {
        let a = self.pipeline.analyze_property(predicate);
        self.pipeline.view(&a, Some(kind))
    }

    /// The interactive exploration session (facets, zoom, search, undo).
    pub fn session(&mut self) -> &mut ExplorationSession {
        &mut self.session
    }

    /// Keyword search (stateless preview).
    pub fn search(&self, query: &str, limit: usize) -> Vec<wodex_explore::search::Hit> {
        self.session.search_preview(query, limit)
    }

    /// The property-value view of one resource.
    pub fn details(&self, resource: &Term) -> ResourceView {
        self.session.details(resource)
    }

    /// Builds a HETree over a numeric/temporal property for multilevel
    /// exploration (SynopsViz-style). Items carry the store's term id of
    /// their subject as payload.
    pub fn hetree(&self, predicate: &str, variant: Variant) -> HETree {
        let items: Vec<(f64, u64)> = self
            .graph
            .triples_for_predicate(predicate)
            .filter_map(|t| {
                let v = t.object.as_literal().map(Value::from_literal)?;
                let x = v
                    .as_f64()
                    .or_else(|| v.as_epoch_seconds().map(|s| s as f64))?;
                let id = self.store.id_of(&t.subject).map(|i| i.0 as u64)?;
                Some((x, id))
            })
            .collect();
        HETree::new(items, variant, self.prefs.hierarchy_degree.max(2), 64)
    }

    /// Visualizes a SPARQL SELECT result directly — the Sgvizler \[120\] /
    /// Visualbox \[50\] / VISU \[6\] workflow: profile the result columns,
    /// pick the chart that fits (categorical+numeric → bar,
    /// temporal+numeric → line, numeric+numeric → scatter, single
    /// numeric → histogram), and render it.
    pub fn visualize_query(&self, query: &str) -> Result<View, QueryError> {
        use wodex_viz::profile::{DataKind, FieldProfile};
        let result = self.sparql(query)?;
        let table = result
            .table()
            .ok_or_else(|| QueryError::Eval("visualize_query needs a SELECT result".into()))?;
        if table.columns.is_empty() {
            return Err(QueryError::Eval("no columns to visualize".into()));
        }
        // Profile each column.
        let columns: Vec<(String, Vec<Value>)> = table
            .columns
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let vals: Vec<Value> = table
                    .rows
                    .iter()
                    .filter_map(|r| r[i].as_ref())
                    .map(|t| match t {
                        Term::Literal(l) => Value::from_literal(l),
                        Term::Iri(iri) => Value::Text(iri.local_name().to_string()),
                        Term::Blank(b) => Value::Text(format!("_:{}", b.label())),
                    })
                    .collect();
                (name.clone(), vals)
            })
            .collect();
        let profiles: Vec<FieldProfile> = columns
            .iter()
            .map(|(n, vals)| FieldProfile::detect(n.clone(), vals))
            .collect();
        let recommendations = self.prefs.apply(wodex_viz::recommend::recommend(&profiles));
        let (w, h) = (self.prefs.width, self.prefs.height);
        let numeric_of = |vals: &[Value]| -> Vec<f64> {
            vals.iter()
                .filter_map(|v| {
                    v.as_f64()
                        .or_else(|| v.as_epoch_seconds().map(|s| s as f64))
                })
                .collect()
        };
        let find = |k: DataKind| profiles.iter().position(|p| p.kind == k);
        let title = format!("query result ({} rows)", table.len());
        let scene = if let (Some(c), Some(n)) = (
            find(DataKind::Categorical).or_else(|| find(DataKind::Text)),
            find(DataKind::Numeric),
        ) {
            let pairs: Vec<(String, f64)> = table
                .rows
                .iter()
                .filter_map(|r| {
                    let label = r[c].as_ref().map(|t| match t {
                        Term::Literal(l) => l.lexical().to_string(),
                        Term::Iri(i) => i.local_name().to_string(),
                        Term::Blank(b) => format!("_:{}", b.label()),
                    })?;
                    let v = r[n]
                        .as_ref()?
                        .as_literal()
                        .map(Value::from_literal)?
                        .as_f64()?;
                    Some((label, v))
                })
                .take(self.prefs.bins.max(8))
                .collect();
            wodex_viz::charts::bar_chart(&title, &pairs, w, h)
        } else if let (Some(t), Some(n)) = (find(DataKind::Temporal), find(DataKind::Numeric)) {
            let pts: Vec<(f64, f64)> = numeric_of(&columns[t].1)
                .into_iter()
                .zip(numeric_of(&columns[n].1))
                .collect();
            wodex_viz::charts::line_chart(&title, &pts, w, h)
        } else {
            let numeric_cols: Vec<usize> = profiles
                .iter()
                .enumerate()
                .filter(|(_, p)| p.kind == DataKind::Numeric)
                .map(|(i, _)| i)
                .collect();
            match numeric_cols.as_slice() {
                [a, b, ..] => {
                    let pts: Vec<(f64, f64)> = numeric_of(&columns[*a].1)
                        .into_iter()
                        .zip(numeric_of(&columns[*b].1))
                        .collect();
                    wodex_viz::charts::scatter(&title, &pts, w, h, self.prefs.max_points)
                }
                [a] => {
                    let hist = wodex_approx::binning::Histogram::build(
                        &numeric_of(&columns[*a].1),
                        self.prefs.bins,
                        wodex_approx::binning::BinningStrategy::EqualWidth,
                    );
                    wodex_viz::charts::histogram(&title, &hist, w, h)
                }
                [] => {
                    // Nothing quantitative: counts of the first column.
                    let mut counts: std::collections::BTreeMap<String, f64> = Default::default();
                    for v in &columns[0].1 {
                        *counts.entry(v.to_string()).or_insert(0.0) += 1.0;
                    }
                    let mut pairs: Vec<(String, f64)> = counts.into_iter().collect();
                    pairs.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));
                    pairs.truncate(self.prefs.bins.max(8));
                    wodex_viz::charts::bar_chart(&title, &pairs, w, h)
                }
            }
        };
        let kind = recommendations
            .first()
            .map(|r| r.kind)
            .unwrap_or(wodex_viz::recommend::VisKind::Table);
        let svg = wodex_viz::render::to_svg(&scene);
        Ok(View {
            kind,
            scene,
            svg,
            recommendations,
        })
    }

    /// Builds a VizBoard-style dashboard: one top-recommended view per
    /// predicate, composed into a grid.
    pub fn dashboard(
        &self,
        predicates: &[&str],
        cols: usize,
        width: f64,
        height: f64,
    ) -> wodex_viz::Scene {
        let views: Vec<wodex_viz::Scene> =
            predicates.iter().map(|p| self.visualize(p).scene).collect();
        wodex_viz::dashboard::compose("dashboard", &views, cols.max(1), width, height)
    }

    /// Extracts the `rdfs:subClassOf` class hierarchy with instance
    /// counts (the §3.5 ontology-visualization substrate).
    pub fn class_hierarchy(&self) -> wodex_rdf::ClassHierarchy {
        wodex_rdf::ClassHierarchy::extract(&self.graph)
    }

    /// RelFinder-style relationship discovery: the shortest connecting
    /// paths between two resources.
    pub fn find_paths(
        &self,
        a: &Term,
        b: &Term,
        max_hops: usize,
        max_paths: usize,
    ) -> Vec<wodex_explore::relfind::Path> {
        wodex_explore::relfind::find_paths(&self.graph, a, b, max_hops, max_paths)
    }

    /// Builds the abstraction-hierarchy view of the dataset's link graph
    /// (graphVizdb/ASK-GraphView style).
    pub fn graph_view(&self) -> GraphView {
        let (adjacency, nodes) = Adjacency::from_rdf(&self.graph);
        let hierarchy = AbstractionHierarchy::build(adjacency.clone(), 12, 42);
        GraphView {
            adjacency,
            nodes,
            hierarchy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wodex_synth::dbpedia::{self, DbpediaConfig};

    fn explorer() -> Explorer {
        let g = dbpedia::generate(&DbpediaConfig {
            entities: 300,
            ..Default::default()
        });
        Explorer::from_graph(g)
    }

    #[test]
    fn loads_from_turtle_and_ntriples() {
        let ttl = "@prefix ex: <http://e.org/> .\nex:a ex:p 5 .\n";
        let ex = Explorer::from_turtle(ttl).unwrap();
        assert_eq!(ex.graph().len(), 1);
        let nt = "<http://e.org/a> <http://e.org/p> \"5\" .\n";
        let ex = Explorer::from_ntriples(nt).unwrap();
        assert_eq!(ex.store().len(), 1);
        assert!(Explorer::from_turtle("garbage {").is_err());
    }

    #[test]
    fn stats_and_profiles_cover_the_dataset() {
        let ex = explorer();
        let st = ex.stats();
        assert!(st.triple_count > 1000);
        let profiles = ex.profiles();
        assert!(profiles.len() >= 5);
    }

    #[test]
    fn sparql_over_the_loaded_store() {
        let ex = explorer();
        let r = ex
            .sparql(
                "PREFIX dbo: <http://dbp.example.org/ontology/>\n\
                 SELECT (COUNT(*) AS ?n) (AVG(?p) AS ?avg) WHERE { ?s dbo:population ?p }",
            )
            .unwrap();
        let t = r.table().unwrap();
        assert_eq!(t.rows[0][0], Some(Term::integer(300)));
    }

    #[test]
    fn visualize_numeric_property_end_to_end() {
        let ex = explorer();
        let v = ex.visualize("http://dbp.example.org/ontology/population");
        assert_eq!(v.kind, VisKind::HistogramChart);
        assert!(v.svg.contains("<svg"));
        assert!(v.scene.in_bounds(1.0));
    }

    #[test]
    fn visualize_as_overrides_kind() {
        let ex = explorer();
        let v = ex.visualize_as(wodex_rdf::vocab::rdf::TYPE, VisKind::Pie);
        assert_eq!(v.kind, VisKind::Pie);
    }

    #[test]
    fn recommendation_ranks_match_profile() {
        let ex = explorer();
        let recs = ex.recommend("http://dbp.example.org/ontology/foundingDate");
        assert_eq!(recs[0].kind, VisKind::Line);
    }

    #[test]
    fn session_flow_filters_and_searches() {
        let mut ex = explorer();
        let total = ex.session().matching().len();
        ex.session().filter(
            wodex_rdf::vocab::rdf::TYPE,
            "http://dbp.example.org/ontology/City",
        );
        assert!(ex.session().matching().len() < total);
        let hits = ex.search("city", 10);
        assert!(!hits.is_empty());
    }

    #[test]
    fn details_of_an_entity() {
        let ex = explorer();
        let v = ex.details(&Term::iri("http://dbp.example.org/resource/E0"));
        assert!(v.rows.iter().filter(|r| r.forward).count() >= 5);
    }

    #[test]
    fn hetree_multilevel_exploration() {
        let ex = explorer();
        let mut t = ex.hetree(
            "http://dbp.example.org/ontology/population",
            Variant::ContentBased,
        );
        assert_eq!(t.len(), 300);
        let root = t.root();
        let kids = t.expand(root).to_vec();
        assert_eq!(kids.len(), 4);
        let total: usize = kids.iter().map(|&c| t.stats(c).count).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn graph_view_abstracts_the_link_graph() {
        let ex = explorer();
        let gv = ex.graph_view();
        assert!(gv.adjacency.node_count() > 0);
        assert!(gv.hierarchy.levels() >= 1);
        let scene = gv.overview_scene(640.0, 480.0);
        let (_, circles, _, _) = scene.mark_breakdown();
        assert!(circles > 0);
        assert!(
            circles <= gv.adjacency.node_count(),
            "overview must not exceed base size"
        );
        assert!(scene.in_bounds(1.0));
    }

    #[test]
    fn visualize_query_binds_categorical_numeric_to_bars() {
        let ex = explorer();
        let v = ex
            .visualize_query(
                "PREFIX dbo: <http://dbp.example.org/ontology/>\n\
                 PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
                 SELECT ?c (AVG(?p) AS ?avg) WHERE { ?s rdf:type ?c . ?s dbo:population ?p } GROUP BY ?c",
            )
            .unwrap();
        let (rects, _, _, _) = v.scene.mark_breakdown();
        assert_eq!(rects, 5, "one bar per class");
        assert!(v.svg.contains("<rect"));
        assert!(v.scene.in_bounds(1.0));
    }

    #[test]
    fn visualize_query_binds_two_numerics_to_scatter() {
        let ex = explorer();
        let v = ex
            .visualize_query(
                "PREFIX dbo: <http://dbp.example.org/ontology/>\n\
                 SELECT ?p ?a WHERE { ?s dbo:population ?p . ?s dbo:area ?a }",
            )
            .unwrap();
        let (_, circles, _, _) = v.scene.mark_breakdown();
        assert!(circles > 100, "one dot per joined row, got {circles}");
    }

    #[test]
    fn visualize_query_single_numeric_becomes_histogram() {
        let ex = explorer();
        let v = ex
            .visualize_query(
                "PREFIX dbo: <http://dbp.example.org/ontology/>\n\
                 SELECT ?p WHERE { ?s dbo:population ?p }",
            )
            .unwrap();
        let (rects, _, _, _) = v.scene.mark_breakdown();
        assert!(rects > 0 && rects <= 32);
    }

    #[test]
    fn visualize_query_rejects_ask() {
        let ex = explorer();
        assert!(ex.visualize_query("ASK { ?s ?p ?o }").is_err());
    }

    #[test]
    fn preferences_propagate() {
        let g = dbpedia::generate(&DbpediaConfig {
            entities: 100,
            ..Default::default()
        });
        let prefs = UserPreferences {
            bins: 8,
            ..Default::default()
        };
        let ex = Explorer::from_graph(g).with_prefs(prefs);
        let v = ex.visualize("http://dbp.example.org/ontology/population");
        let (rects, _, _, _) = v.scene.mark_breakdown();
        assert!(rects <= 8);
    }
}
